"""The FrogWild! algorithm (Section 2.2 of the paper).

N frogs are born on uniformly random vertices.  Each superstep every
frog first dies with probability ``p_T`` (realizing teleportation per
Lemma 16 — death plus the uniform birth equals a restart), then hops
along a uniformly random *enabled* out-edge.  An out-edge is enabled
when the mirror hosting it was synchronized this barrier — the paper's
``ps`` patch (see :class:`~repro.engine.sync.MirrorSynchronizer`) —
with the configured erasure model repairing all-erased vertices.  After
``t`` supersteps all surviving frogs stop and are counted; the counter
vector normalized by N is the PageRank estimate (Definition 5).

The runner is the simulator's equivalent of the paper's GraphLab vertex
program plus engine patch; it shares every accounting primitive with the
baseline engine so the network/CPU/time comparisons are apples-to-apples.

Implementation notes mirrored from the paper (Section 3.3):

* frogs are anonymous, so all frogs crossing a machine boundary toward
  the same destination vertex travel as one ``(vertex, count)`` record;
* there are no teleport messages at all — deaths are local;
* in ``multinomial`` scatter mode the K surviving frogs of a vertex are
  split uniformly over enabled edges (frog-conserving, the paper's
  actual implementation); ``binomial`` mode follows the pseudocode
  literally with an independent Bin(K, 1/(d_out ps)) per enabled edge.

The superstep kernel is factored into module-level helpers
(:class:`_KernelTables`, :class:`_GroupView` and the ``_scatter_*``
functions) shared with :mod:`repro.core.batched`, which advances B
independent frog populations through a single traversal per superstep.
Edge-level work is expanded for *enabled* machine-groups only, so a run
at ``ps < 1`` never materializes the disabled part of the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..engine import (
    ClusterState,
    CostLedger,
    MirrorSynchronizer,
    RunReport,
    build_cluster,
)
from ..errors import EngineError
from ..graph import DiGraph
from .config import FrogWildConfig
from .erasures import make_erasure_model
from .estimator import PageRankEstimate

__all__ = ["FrogWildResult", "FrogWildRunner", "run_frogwild"]


@dataclass(frozen=True)
class FrogWildResult:
    """Estimate plus execution report of one FrogWild run.

    ``ledger`` carries the raw per-population cost attribution when the
    run was a lane of a batched execution (None for single runs); the
    sharded serving backend merges shard lanes through it.
    """

    estimate: PageRankEstimate
    report: RunReport
    state: ClusterState
    ledger: CostLedger | None = None


def _ranges_to_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + l)`` for every (s, l) pair, vectorized."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return (
        np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.int64)
    )


class _KernelTables:
    """Flat read-only views of the partitioned graph used per superstep.

    Built once per *ingress* (see :func:`_kernel_tables`) and shared by
    the single-query and batched runners; every array indexes the
    (vertex, machine)-sorted out-edge grouping of
    :class:`~repro.cluster.ReplicationTable`.
    """

    __slots__ = (
        "masters",
        "vertex_ptr",
        "group_machine",
        "group_start",
        "group_sizes",
        "edge_target",
        "edge_host",
        "out_degree",
    )

    def __init__(self, replication, out_degree: np.ndarray) -> None:
        og = replication.out_groups
        self.masters = replication.masters
        self.vertex_ptr = og.vertex_ptr
        self.group_machine = og.group_machine.astype(np.int64)
        self.group_start = og.group_start
        self.group_sizes = og.group_sizes()
        self.edge_target = og.sorted_other
        self.edge_host = og.edge_machine_sorted.astype(np.int64)
        self.out_degree = np.asarray(out_degree, dtype=np.int64)


def _kernel_tables(state: ClusterState) -> _KernelTables:
    """The per-ingress cached :class:`_KernelTables` of ``state``.

    The tables derive purely from the replication tables, so states
    sharing one ingress (the serving layer builds a fresh accounting
    state per dispatched batch) share one build instead of paying the
    flat-view construction on every batch.
    """
    return state.ingress_cache(
        "kernel_tables",
        lambda: _KernelTables(state.replication, state.graph.out_degree()),
    )


def prime_ingress_caches(replication, graph) -> None:
    """Pre-seed ``replication``'s per-ingress derived-structure cache.

    Fills the entries :meth:`~repro.engine.ClusterState.ingress_cache`
    would otherwise build lazily on the first batch after an ingress
    appears: the flat kernel tables and the mirror bitmap.  The live
    refresh pipeline (:class:`~repro.live.IncrementalReplication`) calls
    this off the query path after patching a table, so a freshly
    published epoch serves its first batch with warm tables — the group
    arrays the kernel tables view were spliced, not recomputed, for
    every vertex the refresh did not touch.  Idempotent: existing cache
    entries are kept.
    """
    cache = replication._ingress_cache
    if "kernel_tables" not in cache:
        cache["kernel_tables"] = _KernelTables(
            replication, graph.out_degree()
        )
    if "mirror_matrix" not in cache:
        cache["mirror_matrix"] = MirrorSynchronizer.mirror_matrix_for(
            replication
        )


class _GroupView:
    """Machine-grouped out-edges of one scatter set, in (vertex, machine)
    order.

    ``grp_idx`` are rows into the global group tables; ``grp_vertex_pos``
    maps each row to the position of its vertex within the scatter set;
    ``g_count`` is the number of groups per scattering vertex.
    """

    __slots__ = ("grp_idx", "grp_vertex_pos", "grp_machine", "grp_sizes", "g_count")

    def __init__(
        self,
        grp_idx: np.ndarray,
        grp_vertex_pos: np.ndarray,
        grp_machine: np.ndarray,
        grp_sizes: np.ndarray,
        g_count: np.ndarray,
    ) -> None:
        self.grp_idx = grp_idx
        self.grp_vertex_pos = grp_vertex_pos
        self.grp_machine = grp_machine
        self.grp_sizes = grp_sizes
        self.g_count = g_count

    def select(self, member_rows: np.ndarray, member_mask: np.ndarray) -> "_GroupView":
        """Sub-view for the subset of vertices at ``member_rows``.

        ``member_rows`` are sorted positions into this view's scatter
        set and ``member_mask`` is their boolean form; the result is
        exactly the view :func:`_gather_groups` would build for the
        subset, without re-touching the global tables.
        """
        sel = member_mask[self.grp_vertex_pos]
        g_count = self.g_count[member_rows]
        return _GroupView(
            self.grp_idx[sel],
            np.repeat(np.arange(member_rows.size, dtype=np.int64), g_count),
            self.grp_machine[sel],
            self.grp_sizes[sel],
            g_count,
        )


def _gather_groups(tables: _KernelTables, sv: np.ndarray) -> _GroupView:
    """Gather the machine-groups of the scattering vertices ``sv``."""
    g_lo = tables.vertex_ptr[sv]
    g_count = tables.vertex_ptr[sv + 1] - g_lo
    grp_idx = _ranges_to_indices(g_lo, g_count)
    grp_vertex_pos = np.repeat(np.arange(sv.size, dtype=np.int64), g_count)
    return _GroupView(
        grp_idx,
        grp_vertex_pos,
        tables.group_machine[grp_idx],
        tables.group_sizes[grp_idx],
        g_count,
    )


def _choose_repair_positions(
    rng: np.random.Generator, g_count: np.ndarray, bad: np.ndarray
) -> np.ndarray:
    """Flat group-row positions of one uniform group per ``bad`` vertex.

    Implements the choice half of the At-Least-One-Out-Edge repair
    (Example 10); the caller enables the rows and accounts the forced
    synchronizations.
    """
    pick = (rng.random(bad.size) * g_count[bad]).astype(np.int64)
    block_offsets = np.concatenate([[0], np.cumsum(g_count)[:-1]])
    return block_offsets[bad] + pick


def _scatter_multinomial(
    rng: np.random.Generator,
    tables: _KernelTables,
    view: _GroupView,
    enabled_grp: np.ndarray,
    sv: np.ndarray,
    k_sv: np.ndarray,
    next_frogs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split each vertex's K frogs uniformly over its enabled edges."""
    enabled_counts = np.bincount(
        view.grp_vertex_pos,
        weights=enabled_grp * view.grp_sizes,
        minlength=sv.size,
    ).astype(np.int64)
    sendable = enabled_counts > 0
    k_send = np.where(sendable, k_sv, 0)
    total = int(k_send.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    enabled_edges = _ranges_to_indices(
        tables.group_start[view.grp_idx[enabled_grp]],
        view.grp_sizes[enabled_grp],
    )
    enabled_offsets = np.concatenate([[0], np.cumsum(enabled_counts)[:-1]])
    frog_vertex = np.repeat(np.arange(sv.size, dtype=np.int64), k_send)
    draw = rng.random(total)
    pick = enabled_offsets[frog_vertex] + (
        draw * enabled_counts[frog_vertex]
    ).astype(np.int64)
    chosen = enabled_edges[pick]
    dest = tables.edge_target[chosen]
    host = tables.edge_host[chosen]
    # bincount beats np.add.at on the hot accumulation: one counting
    # pass instead of per-element buffered scatter (bit-identical).
    next_frogs += np.bincount(dest, minlength=next_frogs.size)
    return dest, host


def _scatter_binomial(
    rng: np.random.Generator,
    ps: float,
    tables: _KernelTables,
    view: _GroupView,
    enabled_grp: np.ndarray,
    sv: np.ndarray,
    k_sv: np.ndarray,
    next_frogs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Paper pseudocode: Bin(K, 1/(d_out ps)) per enabled edge."""
    on = np.flatnonzero(enabled_grp)
    if on.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    sizes_on = view.grp_sizes[on]
    candidate = _ranges_to_indices(tables.group_start[view.grp_idx[on]], sizes_on)
    vertex_pos = np.repeat(view.grp_vertex_pos[on], sizes_on)
    k_per_edge = k_sv[vertex_pos]
    p_eff = max(ps, 1e-12)
    prob = np.minimum(
        1.0, 1.0 / (tables.out_degree[sv[vertex_pos]] * p_eff)
    )
    sent = rng.binomial(k_per_edge, prob)
    nonzero = sent > 0
    chosen = candidate[nonzero]
    dest = tables.edge_target[chosen]
    host = tables.edge_host[chosen]
    # Weighted bincount replaces np.add.at; float64 weights are exact
    # for any frog count below 2**53, so results stay bit-identical.
    next_frogs += np.bincount(
        dest, weights=sent[nonzero], minlength=next_frogs.size
    ).astype(np.int64)
    # Replicate per-frog host attribution for CPU/message accounting.
    dest = np.repeat(dest, sent[nonzero])
    host = np.repeat(host, sent[nonzero])
    return dest, host


class FrogWildRunner:
    """Executes FrogWild on a prepared simulated cluster."""

    def __init__(
        self,
        state: ClusterState,
        config: FrogWildConfig,
        start_distribution: np.ndarray | None = None,
    ) -> None:
        """``start_distribution`` overrides the uniform frog births.

        Because deaths restart the (implicit) walk at the birth law
        (Lemma 16), a non-uniform birth distribution computes
        *Personalized* PageRank with that teleport vector — see
        :mod:`repro.core.personalized`.
        """
        if start_distribution is not None:
            start_distribution = np.asarray(start_distribution, np.float64)
            if start_distribution.shape != (state.num_vertices,):
                raise EngineError(
                    "start_distribution must have one entry per vertex"
                )
            if start_distribution.min() < 0 or not np.isclose(
                start_distribution.sum(), 1.0
            ):
                raise EngineError(
                    "start_distribution must be a probability distribution"
                )
        self.start_distribution = start_distribution
        self.state = state
        self.config = config
        # Distinct seed stream from the cluster components (partition,
        # master selection) that may have received the same seed value.
        self.rng = np.random.default_rng(
            config.seed if config.seed is None else [104, config.seed]
        )
        # The mirror bitmap and kernel tables are per-ingress caches:
        # copy-on-disable keeps fault injection (repro.faults) from
        # leaking crashed machines into later runs on the same ingress.
        self.synchronizer = MirrorSynchronizer(
            state,
            config.ps,
            self.rng,
            mirror_matrix=MirrorSynchronizer.shared_mirror_matrix(state),
            copy_on_disable=True,
        )
        self.erasure = make_erasure_model(config.erasure_model)
        self.tables = _kernel_tables(state)
        self._masters = self.tables.masters

    # ------------------------------------------------------------------
    def run(self) -> FrogWildResult:
        """Run ``iterations`` supersteps and return the estimate."""
        state = self.state
        cfg = self.config
        n = state.num_vertices
        if n == 0:
            raise EngineError("cannot run FrogWild on an empty graph")

        # init(): frogs born from the start law (uniform by default).
        if self.start_distribution is None:
            birth = self.rng.integers(0, n, size=cfg.num_frogs)
        else:
            birth = self.rng.choice(
                n, size=cfg.num_frogs, p=self.start_distribution
            )
        frogs = np.bincount(birth, minlength=n).astype(np.int64)
        counts = np.zeros(n, dtype=np.int64)

        for step in range(cfg.iterations):
            frogs = self._begin_superstep(step, frogs, counts)
            active_idx = np.flatnonzero(frogs)
            if active_idx.size == 0:
                break
            frogs = self._superstep(active_idx, frogs[active_idx], counts)
            state.end_superstep(int(active_idx.size))

        # Cut-off: survivors are counted where they stand (Process 15).
        counts += frogs
        estimate = PageRankEstimate(counts, cfg.num_frogs)
        return FrogWildResult(estimate, self._report(), state)

    # ------------------------------------------------------------------
    def _superstep(
        self, active_idx: np.ndarray, k_active: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """One death + sync + scatter round; returns next frog vector."""
        state = self.state
        cfg = self.config
        n = state.num_vertices
        rng = self.rng
        tables = self.tables

        # -------------------- apply(): teleport deaths ------------------
        dead = rng.binomial(k_active, cfg.p_teleport)
        # active_idx entries are unique, so a fancy add is exact (and
        # cheaper than np.add.at's buffered scatter).
        counts[active_idx] += dead
        survivors = k_active - dead
        state.charge_many(
            np.bincount(
                self._masters[active_idx],
                weights=k_active,
                minlength=state.num_machines,
            ).astype(np.int64),
            phase="apply",
        )

        moving = survivors > 0
        sv = active_idx[moving]
        k_sv = survivors[moving].astype(np.int64)
        next_frogs = np.zeros(n, dtype=np.int64)
        if sv.size == 0:
            return next_frogs

        # -------------------- <sync>: the ps patch ----------------------
        fresh = self.synchronizer.synchronize(sv)

        # Enabled out-edge groups of the scattering vertices.
        view = _gather_groups(tables, sv)
        enabled_grp = fresh[view.grp_vertex_pos, view.grp_machine]

        enabled_per_vertex = np.bincount(
            view.grp_vertex_pos, weights=enabled_grp, minlength=sv.size
        ).astype(np.int64)
        stranded = enabled_per_vertex == 0
        if stranded.any():
            if self.erasure.repairs_empty:
                # At-Least-One-Out-Edge repair (Example 10): enable one
                # uniform group each and force its synchronization.  A
                # dangling vertex (no out-groups at all) has nothing to
                # repair: its frogs idle in place awaiting teleportation.
                bad = np.flatnonzero(stranded)
                dangling = view.g_count[bad] == 0
                if dangling.any():
                    idle = bad[dangling]
                    next_frogs[sv[idle]] += k_sv[idle]
                    k_sv = k_sv.copy()
                    k_sv[idle] = 0
                    bad = bad[~dangling]
                if bad.size:
                    flat_pos = _choose_repair_positions(
                        rng, view.g_count, bad
                    )
                    enabled_grp = enabled_grp.copy()
                    enabled_grp[flat_pos] = True
                    self.synchronizer.force_sync(
                        sv[bad], view.grp_machine[flat_pos]
                    )
            else:
                # Independent erasures: frogs idle in place this step.
                # sv entries are unique, so the fancy add is exact.
                next_frogs[sv[stranded]] += k_sv[stranded]
                k_sv = k_sv.copy()
                k_sv[stranded] = 0

        # -------------------- scatter(): frog hops ----------------------
        if cfg.scatter_mode == "multinomial":
            dest, host = _scatter_multinomial(
                rng, tables, view, enabled_grp, sv, k_sv, next_frogs
            )
        else:
            dest, host = _scatter_binomial(
                rng, cfg.ps, tables, view, enabled_grp, sv, k_sv, next_frogs
            )

        # CPU: one op per hopped frog on the hosting machine, one per
        # enabled group for the mirror's scatter dispatch.
        if dest.size:
            ops = np.bincount(host, minlength=state.num_machines)
        else:
            ops = np.zeros(state.num_machines, dtype=np.int64)
        ops += np.bincount(
            view.grp_machine[enabled_grp], minlength=state.num_machines
        )
        state.charge_many(ops.astype(np.int64), phase="scatter")

        # Network: combined (vertex, count) records, host -> dest master.
        self._account_frog_messages(dest, host)
        self._post_scatter(dest, host, next_frogs)
        return next_frogs

    # ------------------------------------------------------------------
    # Subclass hooks (fault injection lives in repro.faults)
    # ------------------------------------------------------------------
    def _begin_superstep(
        self, step: int, frogs: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Pre-superstep hook; returns the (possibly modified) frog
        vector.  The base runner is fault-free: identity."""
        return frogs

    def _post_scatter(
        self, dest: np.ndarray, host: np.ndarray, next_frogs: np.ndarray
    ) -> None:
        """Post-scatter hook, called with the per-frog destination and
        hosting-machine arrays after ``next_frogs`` is updated.  The
        base runner delivers everything: no-op."""

    # ------------------------------------------------------------------
    def _account_frog_messages(self, dest: np.ndarray, host: np.ndarray) -> None:
        """Charge combined frog records: hosting machine -> dest master."""
        if dest.size == 0:
            return
        state = self.state
        n = state.num_vertices
        pair_keys = np.unique(host * n + dest)
        host_u = pair_keys // n
        dest_master = self._masters[pair_keys % n].astype(np.int64)
        remote = host_u != dest_master
        if not remote.any():
            return
        records = np.bincount(
            host_u[remote] * state.num_machines + dest_master[remote],
            minlength=state.num_machines**2,
        ).reshape(state.num_machines, state.num_machines)
        state.send_pair_matrix(records, kind="scatter")

    # ------------------------------------------------------------------
    def _report(self) -> RunReport:
        state = self.state
        stats = state.stats
        cfg = self.config
        return RunReport(
            algorithm=f"frogwild(ps={cfg.ps:g})",
            num_machines=state.num_machines,
            supersteps=stats.num_supersteps,
            total_time_s=stats.total_seconds(),
            time_per_iteration_s=stats.seconds_per_step(),
            network_bytes=state.fabric.total_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
            extra={
                "num_frogs": float(cfg.num_frogs),
                "iterations": float(cfg.iterations),
                "ps": float(cfg.ps),
                "replication_factor": state.replication.replication_factor(),
            },
        )


def run_frogwild(
    graph: DiGraph,
    config: FrogWildConfig | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
) -> FrogWildResult:
    """Run FrogWild end to end on a simulated cluster.

    Either pass a prebuilt ``state`` (to reuse an ingress across runs,
    as the paper does — ingress is excluded from all measurements) or
    let this build one.
    """
    config = config or FrogWildConfig()
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=config.seed,
            partition=partition,
        )
    return FrogWildRunner(state, config).run()
