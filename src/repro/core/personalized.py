"""Personalized PageRank (PPR) with FrogWild walkers.

The paper discusses PPR as related work (Section 2.4): it measures the
influence of a *seed set* on every other vertex, and top-k PPR is the
basis of recommendation and local-community queries.  FrogWild extends
to PPR for free: by Lemma 16 the walk restarts at its birth law, so
frogs born on the seed set — instead of uniformly — sample exactly the
PPR vector with teleport distribution concentrated on the seeds.

This is the repository's implementation of that extension.  The exact
counterpart lives in :func:`repro.pagerank.exact_pagerank` via its
``personalization`` argument.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cluster import CostModel, MessageSizeModel
from ..engine import ClusterState, build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from .batched import BatchedFrogWildResult, BatchQuery, run_frogwild_batch
from .config import FrogWildConfig
from .frogwild import FrogWildResult, FrogWildRunner

__all__ = [
    "seed_distribution",
    "run_personalized_frogwild",
    "run_personalized_frogwild_batch",
]


def seed_distribution(
    num_vertices: int,
    seeds: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Teleport distribution concentrated on ``seeds``.

    Uniform over the seed set by default; ``weights`` (same length as
    ``seeds``) gives a weighted restart law.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.size == 0:
        raise ConfigError("seed set must be non-empty")
    if seeds.min() < 0 or seeds.max() >= num_vertices:
        raise ConfigError("seed ids out of range")
    if np.unique(seeds).size != seeds.size:
        raise ConfigError("seed ids must be distinct")
    distribution = np.zeros(num_vertices, dtype=np.float64)
    if weights is None:
        distribution[seeds] = 1.0 / seeds.size
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != seeds.shape:
            raise ConfigError("weights must align with seeds")
        if weights.min() < 0 or weights.sum() <= 0:
            raise ConfigError("weights must be non-negative with mass")
        distribution[seeds] = weights / weights.sum()
    return distribution


def run_personalized_frogwild(
    graph: DiGraph,
    seeds: np.ndarray,
    config: FrogWildConfig | None = None,
    weights: np.ndarray | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    state: ClusterState | None = None,
) -> FrogWildResult:
    """FrogWild estimate of the Personalized PageRank of ``seeds``.

    The returned estimate approximates the PPR vector with teleport
    distribution :func:`seed_distribution`; compare against
    ``exact_pagerank(graph, personalization=...)``.
    """
    config = config or FrogWildConfig()
    distribution = seed_distribution(graph.num_vertices, seeds, weights)
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=config.seed,
        )
    runner = FrogWildRunner(state, config, start_distribution=distribution)
    return runner.run()


def run_personalized_frogwild_batch(
    graph: DiGraph,
    seed_sets: Sequence[np.ndarray],
    config: FrogWildConfig | None = None,
    weights: Sequence[np.ndarray | None] | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    state: ClusterState | None = None,
) -> BatchedFrogWildResult:
    """Answer B personalized top-k queries through one shared traversal.

    Each entry of ``seed_sets`` becomes one frog population whose birth
    law is :func:`seed_distribution` of that seed set — by Lemma 16, the
    population samples that PPR vector — and all B populations advance
    together in a :class:`~repro.core.batched.BatchedFrogWildRunner`.
    ``weights`` optionally aligns per-query restart weights with
    ``seed_sets``.  Results come back in query order with per-query cost
    attribution; a single-element batch is bit-identical to
    :func:`run_personalized_frogwild`.
    """
    if not len(seed_sets):
        raise ConfigError("seed_sets must be non-empty")
    if weights is not None and len(weights) != len(seed_sets):
        raise ConfigError("weights must align with seed_sets")
    config = config or FrogWildConfig()
    queries = [
        BatchQuery(
            start_distribution=seed_distribution(
                graph.num_vertices,
                seeds,
                None if weights is None else weights[index],
            )
        )
        for index, seeds in enumerate(seed_sets)
    ]
    return run_frogwild_batch(
        graph,
        queries,
        config,
        num_machines=num_machines,
        partitioner=partitioner,
        cost_model=cost_model,
        size_model=size_model,
        state=state,
    )
