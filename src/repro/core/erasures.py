"""Edge-erasure models (Appendix A of the paper).

Partial mirror synchronization makes edges hosted on un-synchronized
mirrors temporarily unusable — Definition 8 abstracts this as a
per-step random *erasure* of out-edges satisfying:

1. independence across vertices and time,
2. each edge preserved with probability at least ``ps``,
3. no significant negative correlation,
4. symmetric within a neighbourhood.

Two concrete models are analyzed:

* :class:`IndependentErasures` (Example 9) — every edge erased
  independently; can strand walkers when all out-edges of their vertex
  vanish for a step (the paper's footnote 1 — we keep such walkers in
  place rather than losing them).
* :class:`AtLeastOneOutEdge` (Example 10) — like the above, but if all
  out-edges of a vertex are erased one is re-enabled uniformly at
  random.  This is the model used in the paper's implementation and our
  default.

Besides the engine coupling (handled in the FrogWild runner), the module
provides a *reference serial walk* under erasures, used by tests to
verify Definition 3's claim: erasures do not change the marginal law of
a single random walk.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import DiGraph

__all__ = [
    "ErasureModel",
    "IndependentErasures",
    "AtLeastOneOutEdge",
    "make_erasure_model",
    "erased_walk_step",
]


class ErasureModel:
    """Base class; concrete models only differ in the repair rule."""

    name = "base"
    #: Whether a vertex whose enabled edge set came up empty gets one
    #: uniformly chosen edge re-enabled.
    repairs_empty: bool = False


class IndependentErasures(ErasureModel):
    """Example 9: iid erasures, no repair (stranded walkers wait)."""

    name = "independent"
    repairs_empty = False


class AtLeastOneOutEdge(ErasureModel):
    """Example 10: iid erasures, one edge forced back when all fail."""

    name = "at-least-one"
    repairs_empty = True


def make_erasure_model(name: str) -> ErasureModel:
    """Factory keyed by config string."""
    if name == "independent":
        return IndependentErasures()
    if name == "at-least-one":
        return AtLeastOneOutEdge()
    raise ConfigError(f"unknown erasure model {name!r}")


def erased_walk_step(
    graph: DiGraph,
    vertex: int,
    ps: float,
    rng: np.random.Generator,
    model: ErasureModel | None = None,
) -> int:
    """One reference step of a single walker under edge erasures.

    Draws the erasure pattern for ``vertex``'s out-edges, applies the
    model's repair rule, and moves the walker uniformly over the enabled
    edges.  Returns the next vertex (== ``vertex`` when stranded under
    :class:`IndependentErasures`).

    By symmetry (Definition 8, property 4) the marginal next-state law
    equals the un-erased walk's ``1/d_out`` law — the property tests
    assert exactly this.
    """
    model = model or AtLeastOneOutEdge()
    successors = graph.successors(vertex)
    if successors.size == 0:
        return vertex
    enabled = rng.random(successors.size) < ps
    if not enabled.any():
        if not model.repairs_empty:
            return vertex
        enabled[rng.integers(0, successors.size)] = True
    choices = successors[enabled]
    return int(choices[rng.integers(0, choices.size)])
