"""FrogWild! — the paper's primary contribution."""

from .adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    AdaptiveRound,
    run_adaptive_frogwild,
    top_k_jaccard,
)
from .batched import (
    BatchedFrogWildResult,
    BatchedFrogWildRunner,
    BatchQuery,
    merge_shard_results,
    run_frogwild_batch,
)
from .config import FrogWildConfig, RefreshPolicy
from .erasures import (
    AtLeastOneOutEdge,
    ErasureModel,
    IndependentErasures,
    erased_walk_step,
    make_erasure_model,
)
from .estimator import PageRankEstimate, top_k_indices
from .frogwild import FrogWildResult, FrogWildRunner, run_frogwild
from .gossip import GossipResult, run_gossip
from .kernels import (
    KERNEL_TIERS,
    available_kernels,
    compiled_available,
    resolve_kernel,
)
from .personalized import (
    run_personalized_frogwild,
    run_personalized_frogwild_batch,
    seed_distribution,
)

__all__ = [
    "BatchQuery",
    "BatchedFrogWildResult",
    "BatchedFrogWildRunner",
    "merge_shard_results",
    "run_frogwild_batch",
    "run_personalized_frogwild_batch",
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveRound",
    "run_adaptive_frogwild",
    "top_k_jaccard",
    "FrogWildConfig",
    "RefreshPolicy",
    "FrogWildResult",
    "FrogWildRunner",
    "run_frogwild",
    "run_personalized_frogwild",
    "GossipResult",
    "run_gossip",
    "seed_distribution",
    "PageRankEstimate",
    "top_k_indices",
    "ErasureModel",
    "IndependentErasures",
    "AtLeastOneOutEdge",
    "make_erasure_model",
    "erased_walk_step",
    "KERNEL_TIERS",
    "available_kernels",
    "compiled_available",
    "resolve_kernel",
]
