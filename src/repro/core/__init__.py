"""FrogWild! — the paper's primary contribution."""

from .adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    AdaptiveRound,
    run_adaptive_frogwild,
    top_k_jaccard,
)
from .config import FrogWildConfig
from .erasures import (
    AtLeastOneOutEdge,
    ErasureModel,
    IndependentErasures,
    erased_walk_step,
    make_erasure_model,
)
from .estimator import PageRankEstimate, top_k_indices
from .frogwild import FrogWildResult, FrogWildRunner, run_frogwild
from .gossip import GossipResult, run_gossip
from .personalized import run_personalized_frogwild, seed_distribution

__all__ = [
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveRound",
    "run_adaptive_frogwild",
    "top_k_jaccard",
    "FrogWildConfig",
    "FrogWildResult",
    "FrogWildRunner",
    "run_frogwild",
    "run_personalized_frogwild",
    "GossipResult",
    "run_gossip",
    "seed_distribution",
    "PageRankEstimate",
    "top_k_indices",
    "ErasureModel",
    "IndependentErasures",
    "AtLeastOneOutEdge",
    "make_erasure_model",
    "erased_walk_step",
]
