"""Configuration for FrogWild runs.

Mirrors the paper's input parameters (vertex program, Section 2.2):
``ps`` (mirror sync probability), ``p_T = 0.15`` (teleport/death
probability) and ``t`` (iteration cut-off), plus the number of frogs N
and the implementation choices discussed in Sections 2.2 and 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError

__all__ = ["FrogWildConfig", "RefreshPolicy"]

_SCATTER_MODES = ("multinomial", "binomial")
_ERASURE_MODELS = ("at-least-one", "independent")
_SYNC_MODES = ("per-lane", "shared")


@dataclass(frozen=True)
class FrogWildConfig:
    """Parameters of one FrogWild execution.

    Attributes
    ----------
    num_frogs:
        N — initial random walkers, placed uniformly at random.  The
        paper uses 800K on graphs of 4.8M–41.6M vertices; Remark 6 gives
        the scaling ``N = O(k / mu_k(pi)^2)``.
    iterations:
        t — supersteps before every surviving frog is stopped and
        counted.  The paper finds 3–5 sufficient (Figures 3, 6).
    ps:
        Probability that each mirror synchronizes per barrier;
        ``ps = 1`` is stock PowerGraph.
    p_teleport:
        p_T — per-step death probability realizing the teleportation
        component (0.15 throughout the paper).
    scatter_mode:
        ``"multinomial"`` (default) conserves frogs exactly, matching the
        implementation note in Section 2.2; ``"binomial"`` reproduces the
        pseudocode literally (Bin(K, 1/(d_out ps)) per enabled edge,
        conserving frogs only in expectation).
    erasure_model:
        ``"at-least-one"`` (default, Example 10 — used in the paper's
        experiments) re-enables one uniformly chosen mirror when all
        coins fail for a vertex holding frogs; ``"independent"``
        (Example 9) lets such frogs idle in place for the step.
    seed:
        Seed for all run randomness (placement, deaths, coins, hops).
    sync_mode:
        Batched-execution sync-coin sharing.  ``"per-lane"`` (default)
        flips the paper's ``ps`` coins independently per frog
        population, which keeps a B=1 batch bitwise-identical to the
        single-query runner and allows per-query ``ps``.  ``"shared"``
        flips **one** coin stream for the whole batch: each barrier
        emits exactly one sync record per (vertex, mirror) regardless
        of the batch size — the remaining sync traffic is ~1/B of
        per-lane mode on overlapping frontiers — at the price of
        cross-query estimator correlation (the erasure processes of
        the populations are no longer independent; Lemma 18's variance
        argument applies per query but errors now co-fluctuate).
        The field only affects :mod:`repro.core.batched`
        (:class:`~repro.core.FrogWildRunner` ignores it), and shared
        coins come from a dedicated batch-level stream: even a B=1
        batch samples different (equally valid) coins than per-lane
        mode under the same seed — the bitwise B=1 equivalence with
        the single-query runner holds in the default mode only.
    wire_dedupe:
        When True, frog records of different populations addressed to
        the same (hosting machine, destination vertex) in one superstep
        travel as **one** physical wire record (the shared record
        carries per-lane counts; the simulator bills one record).  The
        physical record count is attributed back to the lanes
        proportionally to the records each would have sent alone, using
        exact largest-remainder apportionment, so per-lane attributed
        records always sum to the physical count.  Only affects batched
        execution; a single population already combines its own frogs.

    Notes
    -----
    Kernel-tier selection (``"lane-loop"`` / ``"fused"`` / the Numba
    ``"compiled"`` tier) is deliberately *not* a config field: the
    tiers are bitwise-identical implementations of the same semantics,
    so the choice is an execution detail carried by the ``kernel=``
    kwarg of the runner and the serving backends (see
    :mod:`repro.core.kernels`), never something that could change a
    result between two runs of one config.
    """

    num_frogs: int = 10_000
    iterations: int = 4
    ps: float = 1.0
    p_teleport: float = 0.15
    scatter_mode: str = "multinomial"
    erasure_model: str = "at-least-one"
    seed: int | None = 0
    sync_mode: str = "per-lane"
    wire_dedupe: bool = False

    def __post_init__(self) -> None:
        if self.num_frogs < 1:
            raise ConfigError("num_frogs must be positive")
        if self.iterations < 1:
            raise ConfigError("iterations must be positive")
        if not 0.0 <= self.ps <= 1.0:
            raise ConfigError(f"ps must lie in [0, 1], got {self.ps}")
        if not 0.0 < self.p_teleport < 1.0:
            raise ConfigError(
                f"p_teleport must lie in (0, 1), got {self.p_teleport}"
            )
        if self.scatter_mode not in _SCATTER_MODES:
            raise ConfigError(
                f"scatter_mode must be one of {_SCATTER_MODES}, "
                f"got {self.scatter_mode!r}"
            )
        if self.erasure_model not in _ERASURE_MODELS:
            raise ConfigError(
                f"erasure_model must be one of {_ERASURE_MODELS}, "
                f"got {self.erasure_model!r}"
            )
        if self.sync_mode not in _SYNC_MODES:
            raise ConfigError(
                f"sync_mode must be one of {_SYNC_MODES}, "
                f"got {self.sync_mode!r}"
            )

    def with_updates(self, **changes) -> "FrogWildConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RefreshPolicy:
    """How a live service turns graph churn into published epochs.

    Consumed by :class:`~repro.live.IncrementalReplication` (table
    maintenance) and :class:`~repro.live.BackgroundRefresher` (the
    off-query-path pipeline).

    Attributes
    ----------
    full_rebuild_fraction:
        When a refresh's *projected regroup work* — the incident edges
        of every vertex the placement diff touched, the real cost
        driver of a table patch — exceeds this fraction of a
        from-scratch build's regroup work (twice the edge count: both
        grouping directions), the replication tables are rebuilt from
        scratch instead of patched.  The gate deliberately counts
        incident edges rather than changed keys: on power-law graphs a
        few churned hub edges touch hubs owning most of the edge set,
        and past this point the from-scratch build's single radix sort
        beats sorting nearly everything piecewise.  ``1.0`` always
        patches; ``0.0`` rebuilds on any change (the pre-incremental
        behavior).
    coalesce:
        Whether the background refresher may cover several queued deltas
        with one epoch build when deltas arrive faster than builds
        complete.  With ``False`` every delta gets its own epoch, at the
        price of an ever-growing build queue under sustained churn.
    max_pending:
        Bound on queued-but-unbuilt background deltas; a submit beyond
        it blocks until the worker drains (*backpressure*, not data
        loss).  ``None`` leaves the queue unbounded.
    """

    full_rebuild_fraction: float = 0.25
    coalesce: bool = True
    max_pending: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.full_rebuild_fraction <= 1.0:
            raise ConfigError(
                "full_rebuild_fraction must lie in [0, 1], got "
                f"{self.full_rebuild_fraction}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ConfigError("max_pending must be positive (or None)")
