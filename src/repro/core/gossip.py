"""Randomized rumor spreading on the partially-synchronized engine.

Section 3.3 of the paper argues the ``ps`` patch is useful beyond
PageRank: "any random walk or 'gossip' style algorithm (that sends a
single message to a random subset of its neighbors) can benefit by
exploiting ps".  This module substantiates that claim with the classic
push-gossip protocol: every informed vertex pushes the rumor along one
uniformly random *enabled* out-edge per round, where enabled means the
hosting mirror was synchronized — exactly FrogWild's coupling.

Lower ``ps`` reduces per-round synchronization traffic while the
at-least-one repair keeps every informed vertex pushing, so the rumor
still spreads in O(log n)-ish rounds — the trade-off
:func:`run_gossip` measures and ``benchmarks/bench_ablations.py``
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import CostModel, MessageSizeModel
from ..engine import ClusterState, MirrorSynchronizer, RunReport, build_cluster
from ..errors import ConfigError, EngineError
from ..graph import DiGraph

__all__ = ["GossipResult", "run_gossip"]


@dataclass(frozen=True)
class GossipResult:
    """Outcome of one rumor-spreading execution."""

    informed: np.ndarray  # boolean per vertex
    rounds: int
    report: RunReport

    @property
    def informed_fraction(self) -> float:
        return float(self.informed.mean())


def run_gossip(
    graph: DiGraph,
    source: int = 0,
    ps: float = 1.0,
    target_fraction: float = 0.99,
    max_rounds: int = 200,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    state: ClusterState | None = None,
    seed: int | None = 0,
) -> GossipResult:
    """Push-gossip a rumor from ``source`` until ``target_fraction`` of
    vertices are informed (or ``max_rounds`` elapse).

    Every round, each informed vertex synchronizes its mirrors with
    probability ``ps`` each (one sync record per fresh mirror) and
    pushes one rumor message along a uniformly random enabled out-edge
    (combined per machine pair, like frog messages).
    """
    if not 0 <= source < graph.num_vertices:
        raise ConfigError(f"source {source} out of range")
    if not 0.0 < target_fraction <= 1.0:
        raise ConfigError("target_fraction must lie in (0, 1]")
    if max_rounds < 1:
        raise ConfigError("max_rounds must be positive")
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
        )
    if state.graph is not graph:
        raise EngineError("state was built for a different graph")

    rng = np.random.default_rng(seed if seed is None else [105, seed])
    synchronizer = MirrorSynchronizer(state, ps, rng)
    repl = state.replication
    og = repl.out_groups
    masters = repl.masters
    n = graph.num_vertices

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        active = np.flatnonzero(informed)
        fresh = synchronizer.synchronize(active)

        # One push per informed vertex along a random enabled out-edge;
        # vertices with no enabled out-group this round are repaired
        # (at-least-one), mirroring the FrogWild default.
        targets = np.full(active.size, -1, dtype=np.int64)
        hosts = np.zeros(active.size, dtype=np.int64)
        for row, v in enumerate(active):
            lo, hi = og.vertex_ptr[v], og.vertex_ptr[v + 1]
            if lo == hi:
                continue
            machines = og.group_machine[lo:hi].astype(np.int64)
            enabled = fresh[row, machines]
            if not enabled.any():
                pick = rng.integers(0, hi - lo)
                synchronizer.force_sync(
                    np.array([v]), machines[pick : pick + 1]
                )
                enabled[pick] = True
            groups = np.flatnonzero(enabled) + lo
            sizes = og.group_stop[groups] - og.group_start[groups]
            edge_pick = rng.integers(0, sizes.sum())
            cumulative = np.cumsum(sizes)
            g = int(np.searchsorted(cumulative, edge_pick, side="right"))
            offset = edge_pick - (cumulative[g - 1] if g else 0)
            edge = og.group_start[groups[g]] + offset
            targets[row] = og.sorted_other[edge]
            hosts[row] = og.edge_machine_sorted[edge]

        pushed = targets >= 0
        state.charge_many(
            np.bincount(hosts[pushed], minlength=state.num_machines),
            phase="scatter",
        )
        if pushed.any():
            pair_keys = np.unique(hosts[pushed] * n + targets[pushed])
            dest_master = masters[pair_keys % n].astype(np.int64)
            host_u = pair_keys // n
            remote = host_u != dest_master
            if remote.any():
                records = np.bincount(
                    host_u[remote] * state.num_machines + dest_master[remote],
                    minlength=state.num_machines**2,
                ).reshape(state.num_machines, state.num_machines)
                state.send_pair_matrix(records, kind="scatter")
            informed[targets[pushed]] = True

        state.end_superstep(int(active.size))
        if informed.mean() >= target_fraction:
            break

    stats = state.stats
    report = RunReport(
        algorithm=f"gossip(ps={ps:g})",
        num_machines=state.num_machines,
        supersteps=stats.num_supersteps,
        total_time_s=stats.total_seconds(),
        time_per_iteration_s=stats.seconds_per_step(),
        network_bytes=state.fabric.total_bytes(),
        cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
        extra={"ps": ps, "informed_fraction": float(informed.mean())},
    )
    return GossipResult(informed=informed, rounds=rounds, report=report)
