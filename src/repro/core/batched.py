"""Batched multi-query FrogWild: B frog populations, one traversal.

Lemma 16 makes any birth law a teleport vector, so a personalized
top-k query is *just* a frog population with a different start
distribution — the partitioned-graph traversal it rides is identical
for every query.  This module exploits that: a batch of B independent
populations (each with its own teleport vector, frog budget, seed and
``ps``) advances through a **single shared superstep loop**.  Per
superstep the batch pays once for

* the machine-grouped topology gather of the union scatter frontier
  (each population's group view is a boolean slice of it),
* the BSP barrier (one :meth:`~repro.engine.ClusterState.end_superstep`),
* the physical per-machine-pair messages — all populations' sync and
  frog records ride the same wire flush, so per-message headers are
  amortized across the batch,

while deaths, sync coins, erasure repairs and hops stay per-population
(each population owns an rng seeded exactly like the single-query
runner's).  Consequently a batch of size one is **bit-identical** to
:class:`~repro.core.frogwild.FrogWildRunner` under the same seed — the
equivalence the regression tests in ``tests/test_batched_frogwild.py``
pin down.

Cost attribution stays per-population: every lane carries a
:class:`~repro.engine.CostLedger` tallying the CPU ops, records and
messages it alone caused, and its :class:`~repro.engine.RunReport`
prices them as if it had run standalone.  The gap between the summed
standalone bytes and the fabric's actual bytes is the amortization the
batch bought — the quantity ``benchmarks/bench_serving.py`` plots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..engine import (
    ClusterState,
    CostLedger,
    MirrorSynchronizer,
    RunReport,
    build_cluster,
    sync_pair_records,
)
from ..errors import ConfigError, EngineError
from ..graph import DiGraph
from .config import FrogWildConfig
from .erasures import make_erasure_model
from .estimator import PageRankEstimate
from .frogwild import (
    FrogWildResult,
    _choose_repair_positions,
    _gather_groups,
    _KernelTables,
    _scatter_binomial,
    _scatter_multinomial,
)

__all__ = [
    "BatchQuery",
    "BatchedFrogWildResult",
    "BatchedFrogWildRunner",
    "merge_shard_results",
    "run_frogwild_batch",
]


@dataclass(frozen=True, eq=False)
class BatchQuery:
    """One frog population riding a batched execution.

    Every field defaults to the batch-wide :class:`FrogWildConfig`;
    ``start_distribution`` is the per-query teleport/birth law (None
    means uniform, i.e. global PageRank) and ``ps`` may thin this
    population's mirror synchronization independently of its batchmates.
    """

    num_frogs: int | None = None
    start_distribution: np.ndarray | None = None
    seed: int | None = None
    ps: float | None = None
    label: str = ""


@dataclass(frozen=True)
class BatchedFrogWildResult:
    """Per-population results plus the shared-execution report.

    ``results[i]`` is the i-th query's estimate and *attributed* report
    (costs it alone caused, priced standalone); ``report`` is the
    physical execution — its ``network_bytes`` are what actually crossed
    the wire, which is less than the sum of the attributed bytes
    whenever the batch amortized messages.
    """

    results: tuple[FrogWildResult, ...]
    report: RunReport
    state: ClusterState

    def __len__(self) -> int:
        return len(self.results)

    @property
    def estimates(self) -> list[PageRankEstimate]:
        return [result.estimate for result in self.results]

    def top_k(self, k: int) -> list[np.ndarray]:
        """Per-query top-k vertex ids, in query order."""
        return [result.estimate.top_k(k) for result in self.results]

    def attributed_network_bytes(self) -> int:
        """Sum of standalone-priced per-query bytes (>= actual bytes)."""
        return sum(result.report.network_bytes for result in self.results)

    def amortization_ratio(self) -> float:
        """Actual shared bytes over summed standalone bytes (<= 1)."""
        attributed = self.attributed_network_bytes()
        if attributed == 0:
            return 1.0
        return self.report.network_bytes / attributed


class _Lane:
    """Mutable per-population state inside the shared superstep loop."""

    __slots__ = (
        "index",
        "label",
        "num_frogs",
        "ps",
        "seed",
        "start_distribution",
        "rng",
        "synchronizer",
        "ledger",
        "frogs",
        "counts",
        "sv",
        "k_sv",
        "finished_at",
        "sim_time_s",
    )

    def __init__(self) -> None:
        self.sv = None
        self.k_sv = None
        self.finished_at = None
        self.sim_time_s = 0.0


class BatchedFrogWildRunner:
    """Executes B FrogWild populations on one prepared cluster.

    The frog-count state is conceptually a ``(B, n)`` matrix — one row
    per population — advanced by a single traversal of the partitioned
    graph per superstep.  All populations share ``iterations``,
    ``p_teleport``, ``scatter_mode`` and ``erasure_model`` from the
    batch config (the serving layer's coalescer never mixes configs in
    one batch); frog budget, birth law, seed and ``ps`` are per-query.
    """

    def __init__(
        self,
        state: ClusterState,
        config: FrogWildConfig,
        queries: Sequence[BatchQuery],
    ) -> None:
        if not queries:
            raise ConfigError("a batch needs at least one query")
        self.state = state
        self.config = config
        self.tables = _KernelTables(state)
        self.erasure = make_erasure_model(config.erasure_model)
        size_model = state.fabric.size_model
        # One mirror bitmap shared by every population's synchronizer.
        mirror_matrix = MirrorSynchronizer.build_mirror_matrix(state)
        n = state.num_vertices
        self.lanes: list[_Lane] = []
        for index, query in enumerate(queries):
            lane = _Lane()
            lane.index = index
            lane.label = query.label
            lane.num_frogs = (
                config.num_frogs if query.num_frogs is None else query.num_frogs
            )
            if lane.num_frogs < 1:
                raise ConfigError("num_frogs must be positive")
            lane.ps = config.ps if query.ps is None else query.ps
            if not 0.0 <= lane.ps <= 1.0:
                raise ConfigError(f"ps must lie in [0, 1], got {lane.ps}")
            lane.seed = config.seed if query.seed is None else query.seed
            distribution = query.start_distribution
            if distribution is not None:
                distribution = np.asarray(distribution, np.float64)
                if distribution.shape != (n,):
                    raise EngineError(
                        "start_distribution must have one entry per vertex"
                    )
                if distribution.min() < 0 or not np.isclose(
                    distribution.sum(), 1.0
                ):
                    raise EngineError(
                        "start_distribution must be a probability distribution"
                    )
            lane.start_distribution = distribution
            # Same stream derivation as the single-query runner, so a
            # B=1 batch replays its exact coin sequence.
            lane.rng = np.random.default_rng(
                lane.seed if lane.seed is None else [104, lane.seed]
            )
            lane.synchronizer = MirrorSynchronizer(
                state, lane.ps, lane.rng, mirror_matrix=mirror_matrix
            )
            lane.ledger = CostLedger(
                record_bytes=size_model.record_bytes(),
                message_header_bytes=size_model.message_header_bytes,
            )
            self.lanes.append(lane)

    # ------------------------------------------------------------------
    def run(self) -> BatchedFrogWildResult:
        """Run the shared superstep loop and return per-query results."""
        state = self.state
        cfg = self.config
        n = state.num_vertices
        if n == 0:
            raise EngineError("cannot run FrogWild on an empty graph")
        num_machines = state.num_machines
        masters = self.tables.masters

        # init(): every population born from its own start law.
        for lane in self.lanes:
            if lane.start_distribution is None:
                birth = lane.rng.integers(0, n, size=lane.num_frogs)
            else:
                birth = lane.rng.choice(
                    n, size=lane.num_frogs, p=lane.start_distribution
                )
            lane.frogs = np.bincount(birth, minlength=n).astype(np.int64)
            lane.counts = np.zeros(n, dtype=np.int64)

        for step in range(cfg.iterations):
            live: list[tuple[_Lane, np.ndarray]] = []
            active_union = np.zeros(n, dtype=bool)
            for lane in self.lanes:
                if lane.finished_at is not None:
                    continue
                active_idx = np.flatnonzero(lane.frogs)
                if active_idx.size == 0:
                    lane.finished_at = step
                    continue
                live.append((lane, active_idx))
                active_union[active_idx] = True
            if not live:
                break

            # ---------------- apply(): per-population deaths -----------
            apply_ops = np.zeros(num_machines, dtype=np.int64)
            scatter_mask = np.zeros(n, dtype=bool)
            for lane, active_idx in live:
                k_active = lane.frogs[active_idx]
                dead = lane.rng.binomial(k_active, cfg.p_teleport)
                np.add.at(lane.counts, active_idx, dead)
                survivors = k_active - dead
                ops = np.bincount(
                    masters[active_idx], weights=k_active, minlength=num_machines
                ).astype(np.int64)
                apply_ops += ops
                lane.ledger.charge_ops(int(ops.sum()))
                moving = survivors > 0
                lane.sv = active_idx[moving]
                lane.k_sv = survivors[moving].astype(np.int64)
                scatter_mask[lane.sv] = True
            state.charge_many(apply_ops, phase="apply")

            sv_union = np.flatnonzero(scatter_mask)
            if sv_union.size:
                self._scatter_phase(live, sv_union)
            else:
                for lane, _ in live:
                    lane.frogs = np.zeros(n, dtype=np.int64)

            state.end_superstep(int(active_union.sum()))
            step_seconds = state.stats.steps[-1].sim_seconds
            for lane, _ in live:
                lane.ledger.supersteps += 1
                lane.sim_time_s += step_seconds

        # Cut-off: survivors are counted where they stand (Process 15).
        results = []
        for lane in self.lanes:
            lane.counts += lane.frogs
            estimate = PageRankEstimate(lane.counts, lane.num_frogs)
            results.append(
                FrogWildResult(
                    estimate, self._lane_report(lane), state, lane.ledger
                )
            )
        return BatchedFrogWildResult(
            tuple(results), self._batch_report(), state
        )

    # ------------------------------------------------------------------
    def _scatter_phase(
        self, live: list[tuple[_Lane, np.ndarray]], sv_union: np.ndarray
    ) -> None:
        """Sync + scatter every live population over one shared gather.

        The union frontier is gathered once; each population's group
        view is a boolean slice of it.  Physical accounting (pair
        matrices, CPU vectors) is summed across populations and flushed
        once, in the same round structure as the single-query runner
        (sync, then repair, then scatter) so a B=1 batch produces the
        identical message sequence.
        """
        state = self.state
        cfg = self.config
        tables = self.tables
        masters = tables.masters
        n = state.num_vertices
        num_machines = state.num_machines

        view_union = _gather_groups(tables, sv_union)
        position_of = np.full(n, -1, dtype=np.int64)
        position_of[sv_union] = np.arange(sv_union.size, dtype=np.int64)

        sync_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        repair_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        frog_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        scatter_ops = np.zeros(num_machines, dtype=np.int64)

        for lane, _ in live:
            next_frogs = np.zeros(n, dtype=np.int64)
            sv, k_sv = lane.sv, lane.k_sv
            lane.sv = lane.k_sv = None
            if sv.size == 0:
                lane.frogs = next_frogs
                continue
            member_rows = position_of[sv]
            if member_rows.size == sv_union.size:
                view = view_union
            else:
                member_mask = np.zeros(sv_union.size, dtype=bool)
                member_mask[member_rows] = True
                view = view_union.select(member_rows, member_mask)

            # -------- <sync>: this population's ps coins ---------------
            fresh, synced = lane.synchronizer.draw_fresh(sv)
            records = sync_pair_records(masters[sv], synced, num_machines)
            sync_records += records
            lane.ledger.charge_pair_records(records)
            lane.ledger.charge_ops(int(records.sum()))

            enabled_grp = fresh[view.grp_vertex_pos, view.grp_machine]
            enabled_per_vertex = np.bincount(
                view.grp_vertex_pos, weights=enabled_grp, minlength=sv.size
            ).astype(np.int64)
            stranded = enabled_per_vertex == 0
            if stranded.any():
                if self.erasure.repairs_empty:
                    bad = np.flatnonzero(stranded)
                    flat_pos = _choose_repair_positions(
                        lane.rng, view.g_count, bad
                    )
                    enabled_grp = enabled_grp.copy()
                    enabled_grp[flat_pos] = True
                    machines = view.grp_machine[flat_pos]
                    sources = masters[sv[bad]].astype(np.int64)
                    remote = machines != sources
                    if remote.any():
                        extra = np.bincount(
                            sources[remote] * num_machines + machines[remote],
                            minlength=num_machines**2,
                        ).reshape(num_machines, num_machines)
                        repair_records += extra
                        lane.ledger.charge_pair_records(extra)
                        lane.ledger.charge_ops(int(extra.sum()))
                else:
                    np.add.at(next_frogs, sv[stranded], k_sv[stranded])
                    k_sv = k_sv.copy()
                    k_sv[stranded] = 0

            # -------- scatter(): this population's hops ----------------
            if cfg.scatter_mode == "multinomial":
                dest, host = _scatter_multinomial(
                    lane.rng, tables, view, enabled_grp, sv, k_sv, next_frogs
                )
            else:
                dest, host = _scatter_binomial(
                    lane.rng, lane.ps, tables, view, enabled_grp, sv, k_sv,
                    next_frogs,
                )
            if dest.size:
                ops = np.bincount(host, minlength=num_machines)
            else:
                ops = np.zeros(num_machines, dtype=np.int64)
            ops += np.bincount(
                view.grp_machine[enabled_grp], minlength=num_machines
            )
            scatter_ops += ops.astype(np.int64)
            lane.ledger.charge_ops(int(ops.sum()))

            if dest.size:
                pair_keys = np.unique(host * n + dest)
                host_unique = pair_keys // n
                dest_master = masters[pair_keys % n].astype(np.int64)
                remote = host_unique != dest_master
                if remote.any():
                    records = np.bincount(
                        host_unique[remote] * num_machines
                        + dest_master[remote],
                        minlength=num_machines**2,
                    ).reshape(num_machines, num_machines)
                    frog_records += records
                    lane.ledger.charge_pair_records(records)
            lane.frogs = next_frogs

        # -------- physical flush: whole batch, once per round ----------
        if sync_records.any():
            state.send_pair_matrix(sync_records, kind="sync")
            state.charge_many(sync_records.sum(axis=0), phase="sync")
        if repair_records.any():
            state.send_pair_matrix(repair_records, kind="sync")
            state.charge_many(repair_records.sum(axis=0), phase="sync")
        state.charge_many(scatter_ops, phase="scatter")
        if frog_records.any():
            state.send_pair_matrix(frog_records, kind="scatter")

    # ------------------------------------------------------------------
    def _lane_report(self, lane: _Lane) -> RunReport:
        state = self.state
        cfg = self.config
        steps = lane.ledger.supersteps
        # Simulated time while this population was live: a lane that
        # died out early stops accumulating, so its per-iteration time
        # stays honest even inside a longer-running batch.
        total_time = lane.sim_time_s
        return RunReport(
            algorithm=f"frogwild-batched(ps={lane.ps:g})",
            num_machines=state.num_machines,
            supersteps=steps,
            total_time_s=total_time,
            time_per_iteration_s=total_time / steps if steps else 0.0,
            network_bytes=lane.ledger.standalone_network_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(lane.ledger.cpu_ops),
            extra={
                "num_frogs": float(lane.num_frogs),
                "iterations": float(cfg.iterations),
                "ps": float(lane.ps),
                "replication_factor": state.replication.replication_factor(),
                "batch_index": float(lane.index),
                "batch_size": float(len(self.lanes)),
            },
        )

    def _batch_report(self) -> RunReport:
        state = self.state
        stats = state.stats
        cfg = self.config
        attributed = sum(
            lane.ledger.standalone_network_bytes() for lane in self.lanes
        )
        return RunReport(
            algorithm=(
                f"frogwild-batched(B={len(self.lanes)},ps={cfg.ps:g})"
            ),
            num_machines=state.num_machines,
            supersteps=stats.num_supersteps,
            total_time_s=stats.total_seconds(),
            time_per_iteration_s=stats.seconds_per_step(),
            network_bytes=state.fabric.total_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
            extra={
                "batch_size": float(len(self.lanes)),
                "total_frogs": float(
                    sum(lane.num_frogs for lane in self.lanes)
                ),
                "attributed_network_bytes": float(attributed),
                "ps": float(cfg.ps),
                "replication_factor": state.replication.replication_factor(),
            },
        )


def merge_shard_results(lanes: Sequence[FrogWildResult]) -> FrogWildResult:
    """Merge per-shard results of *one* query into a single result.

    The sharded serving backend splits a query's frog budget across
    shard sub-clusters; because frogs are independent, the merged
    counter vector is exactly the counters a single run of the full
    budget would have produced in distribution.  Attribution merges the
    same way the hardware would bill it:

    * ``network_bytes`` and ``cpu_seconds`` **add** — every shard's
      traffic and work is real and owed to this query;
    * ``total_time_s`` and ``supersteps`` take the **max** — shards
      advance concurrently, so the query waits for the slowest one.
    """
    if not lanes:
        raise ConfigError("need at least one shard result to merge")
    if len(lanes) == 1:
        return lanes[0]
    estimate = PageRankEstimate.merge([lane.estimate for lane in lanes])
    reports = [lane.report for lane in lanes]
    # Merge attribution at the ledger level when the lanes carry their
    # ledgers (batched-runner lanes always do): records, messages and
    # CPU ops add, supersteps take the max.  The fallback sums the
    # already-priced reports, which is byte-identical because
    # standalone pricing is linear in records and messages.
    ledger: CostLedger | None = None
    if all(lane.ledger is not None for lane in lanes):
        ledger = replace(lanes[0].ledger)
        for lane in lanes[1:]:
            ledger.merge(lane.ledger)
        supersteps = ledger.supersteps
        network_bytes = ledger.standalone_network_bytes()
    else:
        supersteps = max(report.supersteps for report in reports)
        network_bytes = sum(report.network_bytes for report in reports)
    total_time = max(report.total_time_s for report in reports)
    # Only config-level entries survive the merge; per-layout ones
    # (replication_factor, batch_index) describe a single shard's
    # independently seeded ingress and would misdescribe the whole.
    extra = {
        key: reports[0].extra[key]
        for key in ("iterations", "ps", "batch_size")
        if key in reports[0].extra
    }
    extra.update(
        num_frogs=float(estimate.num_frogs),
        shards=float(len(lanes)),
    )
    merged = RunReport(
        algorithm=f"frogwild-sharded(S={len(lanes)})",
        num_machines=sum(report.num_machines for report in reports),
        supersteps=supersteps,
        total_time_s=total_time,
        time_per_iteration_s=total_time / supersteps if supersteps else 0.0,
        network_bytes=network_bytes,
        cpu_seconds=sum(report.cpu_seconds for report in reports),
        extra=extra,
    )
    return FrogWildResult(estimate, merged, lanes[0].state, ledger)


def run_frogwild_batch(
    graph: DiGraph,
    queries: Sequence[BatchQuery],
    config: FrogWildConfig | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
) -> BatchedFrogWildResult:
    """Run a batch of FrogWild queries through one shared traversal.

    Mirrors :func:`repro.core.run_frogwild`: pass a prebuilt ``state``
    to reuse an ingress across batches (the serving layer does), or let
    this build one.
    """
    config = config or FrogWildConfig()
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=config.seed,
            partition=partition,
        )
    return BatchedFrogWildRunner(state, config, queries).run()
