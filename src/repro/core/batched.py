"""Batched multi-query FrogWild: B frog populations, one fused traversal.

Lemma 16 makes any birth law a teleport vector, so a personalized
top-k query is *just* a frog population with a different start
distribution — the partitioned-graph traversal it rides is identical
for every query.  This module exploits that: a batch of B independent
populations (each with its own teleport vector, frog budget, seed and
``ps``) advances through a **single shared superstep loop**.

The default execution is the **lane-major fused kernel**: frog state is
one ``(B, n)`` int64 matrix advanced in place, and each superstep runs
apply/death, stranded repair and scatter over a single concatenated
``(lane, vertex)`` frontier addressed by lane-offset keys
(``lane * n + vertex``), so every ``bincount``/gather/scatter pass
touches all populations at once instead of once per lane.  Only the
random draws stay per-lane — each population owns an rng seeded exactly
like the single-query runner's and consumes it in the same order — so a
batch of size one is **bit-identical** to
:class:`~repro.core.frogwild.FrogWildRunner` under the same seed, and
every lane of a larger batch is bit-identical to its standalone run.
The pre-fusion per-lane loop survives as the ``kernel="lane-loop"``
reference implementation; ``tests/test_batch_kernel.py`` pins the two
kernels to each other bit for bit and ``benchmarks/bench_batch_kernel.py``
measures the fusion speedup.

Per superstep the batch pays once for

* the machine-grouped topology gather of the concatenated frontier,
* the BSP barrier (one :meth:`~repro.engine.ClusterState.end_superstep`),
* the physical per-machine-pair messages — all populations' sync and
  frog records ride the same wire flush, so per-message headers are
  amortized across the batch.

Two opt-in modes push the sharing onto the records themselves:

* ``config.sync_mode == "shared"`` flips **one** coin stream for the
  whole batch — each barrier emits exactly one sync record per
  (vertex, mirror) regardless of B, at the price of cross-query
  estimator correlation (the populations see the same erasure process);
* ``config.wire_dedupe`` lets lanes targeting the same (hosting
  machine, destination vertex) in one superstep share one physical
  frog record (the record carries per-lane counts).

Both keep cost attribution honest: physical records are split back to
the lanes by exact largest-remainder apportionment
(:func:`~repro.engine.apportion_records`), so per-lane attributed
records always sum to the physical record count.

Cost attribution stays per-population: every lane carries a
:class:`~repro.engine.CostLedger` tallying the CPU ops, records and
messages it alone caused, and its :class:`~repro.engine.RunReport`
prices them as if it had run standalone.  The gap between the summed
standalone bytes and the fabric's actual bytes is the amortization the
batch bought — the quantity ``benchmarks/bench_serving.py`` plots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..engine import (
    ClusterState,
    CostLedger,
    MirrorSynchronizer,
    RunReport,
    apportion_records,
    build_cluster,
    sync_pair_records,
)
from ..errors import ConfigError, EngineError
from ..graph import DiGraph
from .config import FrogWildConfig
from .erasures import make_erasure_model
from .estimator import PageRankEstimate
from .frogwild import (
    FrogWildResult,
    _choose_repair_positions,
    _gather_groups,
    _kernel_tables,
    _ranges_to_indices,
    _scatter_binomial,
    _scatter_multinomial,
)
from .kernels import KERNEL_TIERS, CompiledPasses, CompiledTables, resolve_kernel

__all__ = [
    "BatchQuery",
    "BatchedFrogWildResult",
    "BatchedFrogWildRunner",
    "merge_shard_results",
    "run_frogwild_batch",
]

_KERNELS = KERNEL_TIERS


def _charge_stack(
    live: list["_Lane"], stack: np.ndarray, with_ops: bool
) -> None:
    """Attribute a stacked (B, machines, machines) record tensor.

    One vectorized pass computes every lane's off-diagonal record and
    message counts (equivalent to per-lane
    :meth:`~repro.engine.CostLedger.charge_pair_records` calls); sync
    and repair records additionally bill one CPU op per record, like
    the single-query runner.
    """
    num_machines = stack.shape[1]
    off_diagonal = stack.copy()
    diagonal = np.arange(num_machines)
    off_diagonal[:, diagonal, diagonal] = 0
    records = off_diagonal.sum(axis=(1, 2))
    messages = np.count_nonzero(
        off_diagonal.reshape(stack.shape[0], -1), axis=1
    )
    for lane in live:
        count = int(records[lane.index])
        if count:
            lane.ledger.charge_counts(count, int(messages[lane.index]))
            if with_ops:
                lane.ledger.charge_ops(count)


@dataclass(frozen=True, eq=False)
class BatchQuery:
    """One frog population riding a batched execution.

    Every field defaults to the batch-wide :class:`FrogWildConfig`;
    ``start_distribution`` is the per-query teleport/birth law (None
    means uniform, i.e. global PageRank) and ``ps`` may thin this
    population's mirror synchronization independently of its batchmates
    (per-lane sync mode only; shared sync uses one coin stream, hence
    one ``ps``, for the whole batch).
    """

    num_frogs: int | None = None
    start_distribution: np.ndarray | None = None
    seed: int | None = None
    ps: float | None = None
    label: str = ""


@dataclass(frozen=True)
class BatchedFrogWildResult:
    """Per-population results plus the shared-execution report.

    ``results[i]`` is the i-th query's estimate and *attributed* report
    (costs it alone caused, priced standalone); ``report`` is the
    physical execution — its ``network_bytes`` are what actually crossed
    the wire, which is less than the sum of the attributed bytes
    whenever the batch amortized messages.
    """

    results: tuple[FrogWildResult, ...]
    report: RunReport
    state: ClusterState

    def __len__(self) -> int:
        return len(self.results)

    @property
    def estimates(self) -> list[PageRankEstimate]:
        return [result.estimate for result in self.results]

    def top_k(self, k: int) -> list[np.ndarray]:
        """Per-query top-k vertex ids, in query order."""
        return [result.estimate.top_k(k) for result in self.results]

    def attributed_network_bytes(self) -> int:
        """Sum of standalone-priced per-query bytes (>= actual bytes)."""
        return sum(result.report.network_bytes for result in self.results)

    def amortization_ratio(self) -> float:
        """Actual shared bytes over summed standalone bytes (<= 1)."""
        attributed = self.attributed_network_bytes()
        if attributed == 0:
            return 1.0
        return self.report.network_bytes / attributed


class _Lane:
    """Mutable per-population state inside the shared superstep loop."""

    __slots__ = (
        "index",
        "label",
        "num_frogs",
        "ps",
        "seed",
        "start_distribution",
        "rng",
        "synchronizer",
        "ledger",
        "sv",
        "k_sv",
        "finished_at",
        "sim_time_s",
    )

    def __init__(self) -> None:
        self.sv = None
        self.k_sv = None
        self.synchronizer = None
        self.finished_at = None
        self.sim_time_s = 0.0


class BatchedFrogWildRunner:
    """Executes B FrogWild populations on one prepared cluster.

    The frog-count state is a ``(B, n)`` int64 matrix — one row per
    population — advanced in place by a single traversal of the
    partitioned graph per superstep.  All populations share
    ``iterations``, ``p_teleport``, ``scatter_mode``, ``erasure_model``,
    ``sync_mode`` and ``wire_dedupe`` from the batch config (the serving
    layer's coalescer never mixes configs in one batch); frog budget,
    birth law, seed and — in per-lane sync mode — ``ps`` are per-query.

    ``kernel`` selects the superstep implementation: ``"fused"``
    (default) advances all lanes through one concatenated numpy pass,
    ``"compiled"`` runs the same superstep through the Numba-jitted
    single-pass loops of :mod:`repro.core.kernels` (falling back to
    ``"fused"`` with one warning when Numba is absent), and
    ``"lane-loop"`` is the pre-fusion per-lane reference the fused
    kernel is regression-pinned against.  All tiers produce
    bit-identical results (the compiled tier consumes the exact same
    per-lane numpy random streams and only replaces deterministic
    passes); shared sync and wire dedupe require the fused or compiled
    kernel.
    """

    def __init__(
        self,
        state: ClusterState,
        config: FrogWildConfig,
        queries: Sequence[BatchQuery],
        kernel: str = "fused",
    ) -> None:
        if not queries:
            raise ConfigError("a batch needs at least one query")
        kernel = resolve_kernel(kernel)
        self.state = state
        self.config = config
        self.kernel = kernel
        self.shared_sync_mode = config.sync_mode == "shared"
        self.wire_dedupe = config.wire_dedupe
        if kernel == "lane-loop" and (
            self.shared_sync_mode or self.wire_dedupe
        ):
            raise ConfigError(
                "shared sync and wire dedupe are fused-kernel modes; "
                "the lane-loop reference kernel supports only the "
                "default per-lane configuration"
            )
        self.tables = _kernel_tables(state)
        self.erasure = make_erasure_model(config.erasure_model)
        size_model = state.fabric.size_model
        # One mirror bitmap shared by every population's synchronizer
        # (and across batches: it is the per-ingress cached bitmap, so
        # synchronizers fork a private copy before any disable).
        mirror_matrix = MirrorSynchronizer.shared_mirror_matrix(state)
        self._mirror_matrix = mirror_matrix
        n = state.num_vertices
        self.lanes: list[_Lane] = []
        for index, query in enumerate(queries):
            lane = _Lane()
            lane.index = index
            lane.label = query.label
            lane.num_frogs = (
                config.num_frogs if query.num_frogs is None else query.num_frogs
            )
            if lane.num_frogs < 1:
                raise ConfigError("num_frogs must be positive")
            lane.ps = config.ps if query.ps is None else query.ps
            if not 0.0 <= lane.ps <= 1.0:
                raise ConfigError(f"ps must lie in [0, 1], got {lane.ps}")
            if self.shared_sync_mode and lane.ps != config.ps:
                raise ConfigError(
                    "shared sync flips one coin stream for the whole "
                    "batch, so per-query ps overrides are not allowed "
                    f"(query {index} wants ps={lane.ps:g}, batch uses "
                    f"ps={config.ps:g})"
                )
            lane.seed = config.seed if query.seed is None else query.seed
            distribution = query.start_distribution
            if distribution is not None:
                distribution = np.asarray(distribution, np.float64)
                if distribution.shape != (n,):
                    raise EngineError(
                        "start_distribution must have one entry per vertex"
                    )
                if distribution.min() < 0 or not np.isclose(
                    distribution.sum(), 1.0
                ):
                    raise EngineError(
                        "start_distribution must be a probability distribution"
                    )
            lane.start_distribution = distribution
            # Same stream derivation as the single-query runner, so a
            # B=1 batch replays its exact coin sequence.
            lane.rng = np.random.default_rng(
                lane.seed if lane.seed is None else [104, lane.seed]
            )
            if not self.shared_sync_mode:
                lane.synchronizer = MirrorSynchronizer(
                    state,
                    lane.ps,
                    lane.rng,
                    mirror_matrix=mirror_matrix,
                    copy_on_disable=True,
                )
            lane.ledger = CostLedger(
                record_bytes=size_model.record_bytes(),
                message_header_bytes=size_model.message_header_bytes,
            )
            self.lanes.append(lane)
        if self.shared_sync_mode:
            # One coin stream for the whole batch, on its own seed
            # stream (105) so it never collides with lane streams (104)
            # or cluster-component streams.
            self.shared_sync = MirrorSynchronizer(
                state,
                config.ps,
                np.random.default_rng(
                    config.seed if config.seed is None else [105, config.seed]
                ),
                mirror_matrix=mirror_matrix,
                copy_on_disable=True,
            )
        else:
            self.shared_sync = None
        # Lane-major frog state: row b is population b's frog counts.
        self.frogs = np.zeros((len(self.lanes), n), dtype=np.int64)
        self.counts = np.zeros((len(self.lanes), n), dtype=np.int64)
        self._lane_ps = np.array([lane.ps for lane in self.lanes])
        # Physical records actually flushed, by kind — the quantities
        # the shared-sync and dedupe guarantees are stated against —
        # plus the *demand* totals: what the same coin outcomes would
        # have billed under per-lane accounting (demand == physical in
        # the default modes; the gap is exactly what sharing saved).
        self.record_totals = {
            "sync": 0, "repair": 0, "frog": 0,
            "sync_demand": 0, "frog_demand": 0,
        }
        if kernel == "compiled":
            # The int32-narrowed gather tables are per-ingress (shared
            # across batches like the int64 kernel tables); the pass
            # pipeline with its buffer arena is per-runner state.
            narrowed = state.ingress_cache(
                "compiled_tables", lambda: CompiledTables(self.tables)
            )
            self._passes = CompiledPasses(
                narrowed,
                num_lanes=len(self.lanes),
                num_machines=state.num_machines,
                num_vertices=n,
            )
        else:
            self._passes = None

    # ------------------------------------------------------------------
    def run(self) -> BatchedFrogWildResult:
        """Run the shared superstep loop and return per-query results."""
        state = self.state
        cfg = self.config
        n = state.num_vertices
        if n == 0:
            raise EngineError("cannot run FrogWild on an empty graph")

        # init(): every population born from its own start law.
        for lane in self.lanes:
            if lane.start_distribution is None:
                birth = lane.rng.integers(0, n, size=lane.num_frogs)
            else:
                birth = lane.rng.choice(
                    n, size=lane.num_frogs, p=lane.start_distribution
                )
            self.frogs[lane.index] = np.bincount(birth, minlength=n)

        if self.kernel in ("fused", "compiled"):
            # Both concatenated kernels carry the frontier as
            # (lane, vertex, count) arrays between supersteps instead
            # of rescanning the (B, n) matrix; the matrix is
            # materialized once after the loop for the cut-off count.
            superstep = (
                self._superstep_fused
                if self.kernel == "fused"
                else self._superstep_compiled
            )
            lane_ids, verts = np.nonzero(self.frogs)
            frontier = (lane_ids, verts, self.frogs[lane_ids, verts])
            for step in range(cfg.iterations):
                frontier = superstep(step, frontier)
                if frontier is None:
                    frontier = (None, None, None)
                    break
            lane_ids, verts, k = frontier
            self.frogs[...] = 0
            if lane_ids is not None and lane_ids.size:
                self.frogs.reshape(-1)[lane_ids * n + verts] = k
        else:
            for step in range(cfg.iterations):
                if not self._superstep_lane_loop(step):
                    break

        # Cut-off: survivors are counted where they stand (Process 15).
        self.counts += self.frogs
        results = []
        for lane in self.lanes:
            estimate = PageRankEstimate(
                self.counts[lane.index], lane.num_frogs
            )
            results.append(
                FrogWildResult(
                    estimate, self._lane_report(lane), state, lane.ledger
                )
            )
        return BatchedFrogWildResult(
            tuple(results), self._batch_report(), state
        )

    # ------------------------------------------------------------------
    def _flush_round(
        self,
        sync_records: np.ndarray,
        repair_records: np.ndarray,
        frog_records: np.ndarray,
        scatter_ops: np.ndarray,
    ) -> None:
        """Flush one round's physical traffic (same order as pre-fusion)."""
        state = self.state
        if sync_records.any():
            state.send_pair_matrix(sync_records, kind="sync")
            state.charge_many(sync_records.sum(axis=0), phase="sync")
        if repair_records.any():
            state.send_pair_matrix(repair_records, kind="sync")
            state.charge_many(repair_records.sum(axis=0), phase="sync")
        state.charge_many(scatter_ops, phase="scatter")
        if frog_records.any():
            state.send_pair_matrix(frog_records, kind="scatter")
        self.record_totals["sync"] += int(sync_records.sum())
        self.record_totals["repair"] += int(repair_records.sum())
        self.record_totals["frog"] += int(frog_records.sum())
        # Demand starts at the physical count; the shared-sync and
        # dedupe paths add their surplus (per-lane billing of the same
        # coins/hops) on top, so demand - physical = records saved.
        self.record_totals["sync_demand"] += int(sync_records.sum())
        self.record_totals["frog_demand"] += int(frog_records.sum())

    # ------------------------------------------------------------------
    def _close_superstep(self, live: list[_Lane], active_union: int) -> None:
        """Barrier + per-lane superstep/time attribution (both kernels)."""
        state = self.state
        state.end_superstep(active_union)
        step_seconds = state.stats.steps[-1].sim_seconds
        for lane in live:
            lane.ledger.supersteps += 1
            lane.sim_time_s += step_seconds

    # ------------------------------------------------------------------
    def _pair_matrices(
        self, rows: np.ndarray, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """Per-lane (src, dst) record matrices, one bincount pass."""
        num_machines = self.state.num_machines
        num_pairs = num_machines * num_machines
        return np.bincount(
            (rows * num_machines + src) * num_machines + dst,
            minlength=len(self.lanes) * num_pairs,
        ).reshape(len(self.lanes), num_machines, num_machines)

    # ------------------------------------------------------------------
    def _draw_sync(
        self,
        live: list[_Lane],
        lane_sv: np.ndarray,
        vert_sv: np.ndarray,
        sv_bounds: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ps coin pass, shared by the fused and compiled kernels.

        Draws every sync coin (per-lane or batch-shared) in exactly the
        single-query runner's stream order and returns the ``fresh``
        mirror matrix of the concatenated frontier plus the physical
        and per-lane sync record matrices.  Living in one method keeps
        the two concatenated kernels consuming identical randomness —
        the compiled tier replaces only deterministic passes.
        """
        state = self.state
        masters = self.tables.masters
        num_machines = state.num_machines
        frontier = vert_sv.size
        if self.shared_sync is None:
            # Inlined per-lane draw_fresh over the whole frontier: the
            # mirror bitmap is gathered once, each lane's coins are
            # drawn into its contiguous slice (same rng call shape as
            # its standalone run, so streams replay exactly), and the
            # fresh/synced matrices are assembled in one pass.
            mirrors = self._mirror_matrix[vert_sv]
            synced = np.zeros((frontier, num_machines), dtype=bool)
            for lane in live:
                sl = slice(sv_bounds[lane.index], sv_bounds[lane.index + 1])
                rows = sl.stop - sl.start
                if rows == 0:
                    continue
                if lane.ps >= 1.0:
                    synced[sl] = mirrors[sl]
                elif lane.ps > 0.0:
                    coins = lane.rng.random((rows, num_machines)) < lane.ps
                    synced[sl] = mirrors[sl] & coins
            fresh = synced.copy()
            fresh[
                np.arange(frontier, dtype=np.int64), masters[vert_sv]
            ] = True
            rows_nz, cols_nz = np.nonzero(synced)
            lane_sync = self._pair_matrices(
                lane_sv[rows_nz], masters[vert_sv[rows_nz]], cols_nz
            )
            sync_records = lane_sync.sum(axis=0)
        else:
            # One coin per (vertex, mirror) in the union frontier: the
            # physical sync traffic is independent of the batch size.
            union_verts = np.unique(vert_sv)
            fresh_u, synced_u = self.shared_sync.draw_fresh(union_verts)
            position = np.searchsorted(union_verts, vert_sv)
            fresh = fresh_u[position]
            sync_records = sync_pair_records(
                masters[union_verts], synced_u, num_machines
            )
            # Attribution: what each lane would have billed had the
            # shared coins been its own, apportioned so lane shares sum
            # exactly to the physical record count.
            rows_nz, cols_nz = np.nonzero(synced_u[position])
            demand = self._pair_matrices(
                lane_sv[rows_nz], masters[vert_sv[rows_nz]], cols_nz
            )
            lane_sync = apportion_records(sync_records, demand)
            self.record_totals["sync_demand"] += int(
                demand.sum() - sync_records.sum()
            )
        return fresh, sync_records, lane_sync

    # ------------------------------------------------------------------
    # Fused lane-major kernel (default)
    # ------------------------------------------------------------------
    def _superstep_fused(
        self,
        step: int,
        frontier: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """One death + sync + scatter round over all lanes at once.

        ``frontier`` is the concatenated ``(lane, vertex, count)``
        nonzero set of the conceptual frog matrix, in lane-major order —
        every lane's segment is exactly the frontier its standalone run
        would walk, so the per-lane random draws (sliced out of the
        concatenation) consume each lane's rng in the standalone order
        while every gather, ``bincount`` and record pass runs once over
        the total work.  Returns the next frontier, or None once every
        population has died out.
        """
        state = self.state
        cfg = self.config
        masters = self.tables.masters
        n = state.num_vertices
        num_machines = state.num_machines
        num_lanes = len(self.lanes)
        empty = np.empty(0, dtype=np.int64)

        lane_ids, verts, k = frontier
        row_counts = np.bincount(lane_ids, minlength=num_lanes)
        bounds = np.concatenate([[0], np.cumsum(row_counts)])
        live: list[_Lane] = []
        for lane in self.lanes:
            if lane.finished_at is not None:
                continue
            if row_counts[lane.index] == 0:
                lane.finished_at = step
                continue
            live.append(lane)
        if not live:
            return None
        active_mask = np.zeros(n, dtype=bool)
        active_mask[verts] = True
        active_union = int(active_mask.sum())

        # ---------------- apply(): per-lane death coins ----------------
        dead = np.empty(lane_ids.size, dtype=np.int64)
        for lane in live:
            sl = slice(bounds[lane.index], bounds[lane.index + 1])
            dead[sl] = lane.rng.binomial(k[sl], cfg.p_teleport)
            lane.ledger.charge_ops(int(k[sl].sum()))
        # (lane, vertex) keys are unique, so the fancy add is exact.
        self.counts.reshape(-1)[lane_ids * n + verts] += dead
        state.charge_many(
            np.bincount(
                masters[verts], weights=k, minlength=num_machines
            ).astype(np.int64),
            phase="apply",
        )

        survivors = k - dead
        moving = survivors > 0
        lane_sv = lane_ids[moving]
        vert_sv = verts[moving]
        k_sv = survivors[moving]
        if vert_sv.size == 0:
            self._close_superstep(live, active_union)
            return (empty, empty, empty)

        next_frontier = self._scatter_fused(live, lane_sv, vert_sv, k_sv)
        self._close_superstep(live, active_union)
        return next_frontier

    def _scatter_fused(
        self,
        live: list[_Lane],
        lane_sv: np.ndarray,
        vert_sv: np.ndarray,
        k_sv: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sync + repair + scatter over the concatenated frontier.

        Returns the next frontier as sorted-unique ``(lane, vertex,
        count)`` arrays, accumulated with one compressed ``bincount``
        over the hops that actually happened — the fused kernel never
        touches an O(B·n) dense buffer.
        """
        state = self.state
        cfg = self.config
        tables = self.tables
        masters = tables.masters
        n = state.num_vertices
        num_machines = state.num_machines
        num_lanes = len(self.lanes)
        num_pairs = num_machines * num_machines
        frontier = vert_sv.size
        sv_bounds = np.concatenate(
            [[0], np.cumsum(np.bincount(lane_sv, minlength=num_lanes))]
        )

        # -------- <sync>: ps coins, per-lane or batch-shared ----------
        fresh, sync_records, lane_sync = self._draw_sync(
            live, lane_sv, vert_sv, sv_bounds
        )
        _charge_stack(live, lane_sync, with_ops=True)

        # -------- enabled groups of the concatenated frontier ----------
        g_lo = tables.vertex_ptr[vert_sv]
        g_count = tables.vertex_ptr[vert_sv + 1] - g_lo
        grp_idx = _ranges_to_indices(g_lo, g_count)
        grp_row = np.repeat(np.arange(frontier, dtype=np.int64), g_count)
        grp_machine = tables.group_machine[grp_idx]
        grp_sizes = tables.group_sizes[grp_idx]
        enabled_grp = fresh[grp_row, grp_machine]

        enabled_per_row = np.bincount(
            grp_row, weights=enabled_grp, minlength=frontier
        ).astype(np.int64)
        stranded = enabled_per_row == 0
        repair_records = np.zeros(
            (num_machines, num_machines), dtype=np.int64
        )
        lane_repair = None
        # Next-frontier accumulator: (lane * n + vertex) keys plus the
        # frog counts landing there, reduced once at the end.
        idle_keys = None
        idle_weights = None
        if stranded.any():
            bad = np.flatnonzero(stranded)
            if self.erasure.repairs_empty:
                # At-Least-One-Out-Edge repair (Example 10): enable one
                # uniform group per stranded frontier row.  In shared
                # sync mode the coin belongs to the vertex (all lanes
                # stranded there share the repaired mirror and the one
                # physical record); per-lane mode draws from each
                # lane's own rng exactly like its standalone run.
                # Dangling vertices (no out-groups) cannot be repaired:
                # their frogs idle in place awaiting teleportation.
                dangling = g_count[bad] == 0
                if dangling.any():
                    idle = bad[dangling]
                    idle_keys = lane_sv[idle] * n + vert_sv[idle]
                    idle_weights = k_sv[idle]
                    k_sv = k_sv.copy()
                    k_sv[idle] = 0
                    bad = bad[~dangling]
                block_offsets = np.concatenate([[0], np.cumsum(g_count)[:-1]])
                if bad.size == 0:
                    pass  # every stranded row was dangling: nothing to repair
                elif self.shared_sync is None:
                    pick = np.empty(bad.size, dtype=np.int64)
                    bad_lanes = lane_sv[bad]
                    for lane in live:
                        lo, hi = np.searchsorted(
                            bad_lanes, [lane.index, lane.index + 1]
                        )
                        if hi > lo:
                            pick[lo:hi] = (
                                lane.rng.random(hi - lo) * g_count[bad[lo:hi]]
                            ).astype(np.int64)
                    flat_pos = block_offsets[bad] + pick
                    machines = grp_machine[flat_pos]
                    sources = masters[vert_sv[bad]].astype(np.int64)
                    remote = machines != sources
                    lane_repair = self._pair_matrices(
                        bad_lanes[remote], sources[remote], machines[remote]
                    )
                    repair_records = lane_repair.sum(axis=0)
                else:
                    bad_verts = vert_sv[bad]
                    u_bad, u_inverse = np.unique(
                        bad_verts, return_inverse=True
                    )
                    u_count = (
                        tables.vertex_ptr[u_bad + 1] - tables.vertex_ptr[u_bad]
                    )
                    pick_u = (
                        self.shared_sync.rng.random(u_bad.size) * u_count
                    ).astype(np.int64)
                    flat_pos = block_offsets[bad] + pick_u[u_inverse]
                    machines_u = tables.group_machine[
                        tables.vertex_ptr[u_bad] + pick_u
                    ]
                    sources_u = masters[u_bad].astype(np.int64)
                    remote_u = machines_u != sources_u
                    repair_records = np.bincount(
                        sources_u[remote_u] * num_machines
                        + machines_u[remote_u],
                        minlength=num_pairs,
                    ).reshape(num_machines, num_machines)
                    machines = machines_u[u_inverse]
                    sources = sources_u[u_inverse]
                    remote = remote_u[u_inverse]
                    demand = self._pair_matrices(
                        lane_sv[bad][remote], sources[remote], machines[remote]
                    )
                    lane_repair = apportion_records(repair_records, demand)
                if bad.size:
                    enabled_grp = enabled_grp.copy()
                    enabled_grp[flat_pos] = True
                    _charge_stack(live, lane_repair, with_ops=True)
            else:
                # Independent erasures: frogs idle in place this step.
                idle_keys = lane_sv[bad] * n + vert_sv[bad]
                idle_weights = k_sv[bad]
                k_sv = k_sv.copy()
                k_sv[stranded] = 0

        # -------- scatter(): per-lane hop coins, one expansion ---------
        if cfg.scatter_mode == "multinomial":
            dest, host, frog_lane, hop_keys, hop_weights = (
                self._scatter_multinomial_fused(
                    live, lane_sv, vert_sv, k_sv, grp_row, grp_idx,
                    grp_sizes, enabled_grp,
                )
            )
        else:
            dest, host, frog_lane, hop_keys, hop_weights = (
                self._scatter_binomial_fused(
                    live, lane_sv, vert_sv, k_sv, grp_row, grp_idx,
                    grp_sizes, enabled_grp,
                )
            )

        if dest.size:
            scatter_ops = np.bincount(host, minlength=num_machines)
            hops_per_lane = np.bincount(frog_lane, minlength=num_lanes)
        else:
            scatter_ops = np.zeros(num_machines, dtype=np.int64)
            hops_per_lane = np.zeros(num_lanes, dtype=np.int64)
        scatter_ops = scatter_ops + np.bincount(
            grp_machine[enabled_grp], minlength=num_machines
        )
        lane_of_group = lane_sv[grp_row]
        groups_per_lane = np.bincount(
            lane_of_group[enabled_grp], minlength=num_lanes
        )
        for lane in live:
            lane.ledger.charge_ops(
                int(hops_per_lane[lane.index])
                + int(groups_per_lane[lane.index])
            )

        # -------- frog records: combined per (lane, host, dest) --------
        frog_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        lane_frog = None
        if dest.size:
            unique_keys = np.unique(
                (frog_lane * num_machines + host) * n + dest
            )
            lane_u = unique_keys // (num_machines * n)
            pair_u = unique_keys % (num_machines * n)
            host_u = pair_u // n
            dest_u = pair_u % n
            dest_master = masters[dest_u].astype(np.int64)
            remote = host_u != dest_master
            demand = self._pair_matrices(
                lane_u[remote], host_u[remote], dest_master[remote]
            )
            if self.wire_dedupe:
                # Lanes aiming at the same (host, destination) share one
                # physical wire record; the shares below hand it back.
                phys_keys = np.unique(pair_u[remote])
                phys_host = phys_keys // n
                phys_master = masters[phys_keys % n].astype(np.int64)
                frog_records = np.bincount(
                    phys_host * num_machines + phys_master,
                    minlength=num_machines * num_machines,
                ).reshape(num_machines, num_machines)
                lane_frog = apportion_records(frog_records, demand)
                self.record_totals["frog_demand"] += int(
                    demand.sum() - frog_records.sum()
                )
            else:
                lane_frog = demand
                frog_records = demand.sum(axis=0)
            _charge_stack(live, lane_frog, with_ops=False)

        # -------- physical flush: whole batch, once per round ----------
        self._flush_round(
            sync_records, repair_records, frog_records,
            scatter_ops.astype(np.int64),
        )

        # -------- next frontier: one compressed reduction --------------
        if idle_keys is None and hop_weights is None:
            # Hot path (multinomial, no idling): every hop lands one
            # frog, so the unique pass yields the counts directly.
            if hop_keys.size == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty, empty
            unique_next, counts = np.unique(hop_keys, return_counts=True)
            return unique_next // n, unique_next % n, counts
        if hop_weights is None:
            hop_weights = np.ones(hop_keys.size, dtype=np.int64)
        if idle_keys is None:
            keys, weights = hop_keys, hop_weights
        else:
            keys = np.concatenate([idle_keys, hop_keys])
            weights = np.concatenate([idle_weights, hop_weights])
        if keys.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        unique_next, inverse = np.unique(keys, return_inverse=True)
        counts = np.bincount(
            inverse, weights=weights, minlength=unique_next.size
        ).astype(np.int64)
        return unique_next // n, unique_next % n, counts

    def _scatter_multinomial_fused(
        self,
        live: list[_Lane],
        lane_sv: np.ndarray,
        vert_sv: np.ndarray,
        k_sv: np.ndarray,
        grp_row: np.ndarray,
        grp_idx: np.ndarray,
        grp_sizes: np.ndarray,
        enabled_grp: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, None]:
        """Split each row's K frogs uniformly over its enabled edges.

        The edge expansion runs once over the concatenated frontier;
        only the uniform hop draws are sliced per lane (lane segments
        are contiguous, so each slice replays the standalone call).
        Returns per-hop ``(dest, host, lane)`` plus the frontier
        accumulation keys (weights None: one frog per hop).
        """
        tables = self.tables
        n = self.state.num_vertices
        num_lanes = len(self.lanes)
        frontier = vert_sv.size
        empty = np.empty(0, dtype=np.int64)

        enabled_counts = np.bincount(
            grp_row, weights=enabled_grp * grp_sizes, minlength=frontier
        ).astype(np.int64)
        k_send = np.where(enabled_counts > 0, k_sv, 0)
        per_lane = np.bincount(
            lane_sv, weights=k_send, minlength=num_lanes
        ).astype(np.int64)
        total = int(k_send.sum())
        if total == 0:
            return empty, empty, empty, empty, None

        draw = np.empty(total, dtype=np.float64)
        draw_bounds = np.concatenate([[0], np.cumsum(per_lane)])
        for lane in live:
            lo, hi = draw_bounds[lane.index], draw_bounds[lane.index + 1]
            if hi > lo:
                draw[lo:hi] = lane.rng.random(hi - lo)

        enabled_edges = _ranges_to_indices(
            tables.group_start[grp_idx[enabled_grp]],
            grp_sizes[enabled_grp],
        )
        enabled_offsets = np.concatenate([[0], np.cumsum(enabled_counts)[:-1]])
        frog_row = np.repeat(np.arange(frontier, dtype=np.int64), k_send)
        pick = enabled_offsets[frog_row] + (
            draw * enabled_counts[frog_row]
        ).astype(np.int64)
        chosen = enabled_edges[pick]
        dest = tables.edge_target[chosen]
        host = tables.edge_host[chosen]
        frog_lane = lane_sv[frog_row]
        return dest, host, frog_lane, frog_lane * n + dest, None

    def _scatter_binomial_fused(
        self,
        live: list[_Lane],
        lane_sv: np.ndarray,
        vert_sv: np.ndarray,
        k_sv: np.ndarray,
        grp_row: np.ndarray,
        grp_idx: np.ndarray,
        grp_sizes: np.ndarray,
        enabled_grp: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Paper pseudocode: Bin(K, 1/(d_out ps)) per enabled edge."""
        tables = self.tables
        n = self.state.num_vertices
        empty = np.empty(0, dtype=np.int64)

        on = np.flatnonzero(enabled_grp)
        if on.size == 0:
            return empty, empty, empty, empty, empty
        sizes_on = grp_sizes[on]
        candidate = _ranges_to_indices(
            tables.group_start[grp_idx[on]], sizes_on
        )
        row_pos = np.repeat(grp_row[on], sizes_on)
        edge_lane = lane_sv[row_pos]
        k_per_edge = k_sv[row_pos]
        p_eff = np.maximum(self._lane_ps[edge_lane], 1e-12)
        prob = np.minimum(
            1.0, 1.0 / (tables.out_degree[vert_sv[row_pos]] * p_eff)
        )
        sent = np.empty(candidate.size, dtype=np.int64)
        for lane in live:
            lo, hi = np.searchsorted(edge_lane, [lane.index, lane.index + 1])
            if hi > lo:
                sent[lo:hi] = lane.rng.binomial(
                    k_per_edge[lo:hi], prob[lo:hi]
                )
        nonzero = sent > 0
        chosen = candidate[nonzero]
        dest = tables.edge_target[chosen]
        host = tables.edge_host[chosen]
        hop_lane = edge_lane[nonzero]
        hop_keys = hop_lane * n + dest
        hop_weights = sent[nonzero]
        # Replicate per-frog host attribution for CPU/message accounting.
        dest = np.repeat(dest, hop_weights)
        host = np.repeat(host, hop_weights)
        frog_lane = np.repeat(hop_lane, hop_weights)
        return dest, host, frog_lane, hop_keys, hop_weights

    # ------------------------------------------------------------------
    # Compiled kernel tier (Numba single-pass loops, kernels package)
    # ------------------------------------------------------------------
    def _superstep_compiled(
        self,
        step: int,
        frontier: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """The fused superstep with compiled deterministic passes.

        Random draws (death coins, sync coins, repair picks, hop draws)
        run through the exact numpy calls of :meth:`_superstep_fused`,
        in the same order and shapes; every deterministic gather,
        scatter, dedupe and reduction runs as a single compiled loop
        from :mod:`repro.core.kernels` over arena-allocated scratch.
        Bitwise identical to the fused kernel by construction.
        """
        state = self.state
        cfg = self.config
        n = state.num_vertices
        num_lanes = len(self.lanes)
        empty = np.empty(0, dtype=np.int64)
        passes = self._passes
        passes.begin_superstep()

        lane_ids, verts, k = frontier
        row_counts = np.bincount(lane_ids, minlength=num_lanes)
        bounds = np.concatenate([[0], np.cumsum(row_counts)])
        live: list[_Lane] = []
        for lane in self.lanes:
            if lane.finished_at is not None:
                continue
            if row_counts[lane.index] == 0:
                lane.finished_at = step
                continue
            live.append(lane)
        if not live:
            return None
        active_mask = np.zeros(n, dtype=bool)
        active_mask[verts] = True
        active_union = int(active_mask.sum())

        # ---------------- apply(): per-lane death coins ----------------
        dead = np.empty(lane_ids.size, dtype=np.int64)
        for lane in live:
            sl = slice(bounds[lane.index], bounds[lane.index + 1])
            dead[sl] = lane.rng.binomial(k[sl], cfg.p_teleport)
            lane.ledger.charge_ops(int(k[sl].sum()))
        # One compiled loop: count scatter-add + per-machine op charge.
        apply_ops = passes.apply(self.counts, lane_ids, verts, dead, k)
        state.charge_many(apply_ops, phase="apply")

        survivors = k - dead
        moving = survivors > 0
        lane_sv = lane_ids[moving]
        vert_sv = verts[moving]
        k_sv = survivors[moving]
        if vert_sv.size == 0:
            self._close_superstep(live, active_union)
            return (empty, empty, empty)

        next_frontier = self._scatter_compiled(live, lane_sv, vert_sv, k_sv)
        self._close_superstep(live, active_union)
        return next_frontier

    def _scatter_compiled(
        self,
        live: list[_Lane],
        lane_sv: np.ndarray,
        vert_sv: np.ndarray,
        k_sv: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sync + repair + scatter through the compiled pass pipeline.

        Differences from :meth:`_scatter_fused` are representational
        only: instead of materializing the per-group ``repeat``/gather
        arrays, enabled groups are re-walked from the CSR vertex
        pointers inside L2-sized tiles; repaired rows carry a *forced
        group* index instead of a mutated ``enabled_grp`` mask; the
        record dedupe and frontier reduction accumulate dense touched
        maps instead of ``np.unique`` sorts.  Repair draws consume the
        same rng values as the fused kernel (the uniform pick over a
        stranded row's ``g_count`` groups indexes the same group list).
        """
        state = self.state
        cfg = self.config
        tables = self.tables
        masters = tables.masters
        passes = self._passes
        n = state.num_vertices
        num_machines = state.num_machines
        num_lanes = len(self.lanes)
        num_pairs = num_machines * num_machines
        frontier = vert_sv.size
        empty = np.empty(0, dtype=np.int64)
        sv_bounds = np.concatenate(
            [[0], np.cumsum(np.bincount(lane_sv, minlength=num_lanes))]
        )

        # -------- <sync>: identical coin pass to the fused kernel ------
        fresh, sync_records, lane_sync = self._draw_sync(
            live, lane_sv, vert_sv, sv_bounds
        )
        _charge_stack(live, lane_sync, with_ops=True)

        # -------- enabled groups: CSR walk, no materialization ---------
        groups_per_row, g_count = passes.enabled_groups(vert_sv, fresh)
        stranded = groups_per_row == 0
        repair_records = np.zeros(
            (num_machines, num_machines), dtype=np.int64
        )
        lane_repair = None
        idle_keys = None
        idle_weights = None
        forced_g = passes.arena.take(frontier, np.int64)
        forced_g.fill(-1)
        if stranded.any():
            bad = np.flatnonzero(stranded)
            if self.erasure.repairs_empty:
                # At-Least-One-Out-Edge repair: the uniform pick over a
                # stranded row's groups is drawn exactly like the fused
                # kernel; ``vertex_ptr[v] + pick`` is the same group
                # ``block_offsets[row] + pick`` addresses there, so the
                # repaired machine choice is bitwise identical.
                dangling = g_count[bad] == 0
                if dangling.any():
                    idle = bad[dangling]
                    idle_keys = lane_sv[idle] * n + vert_sv[idle]
                    idle_weights = k_sv[idle]
                    k_sv = k_sv.copy()
                    k_sv[idle] = 0
                    bad = bad[~dangling]
                if bad.size == 0:
                    pass  # every stranded row was dangling
                elif self.shared_sync is None:
                    pick = np.empty(bad.size, dtype=np.int64)
                    bad_lanes = lane_sv[bad]
                    for lane in live:
                        lo, hi = np.searchsorted(
                            bad_lanes, [lane.index, lane.index + 1]
                        )
                        if hi > lo:
                            pick[lo:hi] = (
                                lane.rng.random(hi - lo) * g_count[bad[lo:hi]]
                            ).astype(np.int64)
                    gsel = tables.vertex_ptr[vert_sv[bad]] + pick
                    machines = tables.group_machine[gsel]
                    sources = masters[vert_sv[bad]].astype(np.int64)
                    remote = machines != sources
                    lane_repair = self._pair_matrices(
                        bad_lanes[remote], sources[remote], machines[remote]
                    )
                    repair_records = lane_repair.sum(axis=0)
                else:
                    bad_verts = vert_sv[bad]
                    u_bad, u_inverse = np.unique(
                        bad_verts, return_inverse=True
                    )
                    u_count = (
                        tables.vertex_ptr[u_bad + 1] - tables.vertex_ptr[u_bad]
                    )
                    pick_u = (
                        self.shared_sync.rng.random(u_bad.size) * u_count
                    ).astype(np.int64)
                    gsel_u = tables.vertex_ptr[u_bad] + pick_u
                    machines_u = tables.group_machine[gsel_u]
                    sources_u = masters[u_bad].astype(np.int64)
                    remote_u = machines_u != sources_u
                    repair_records = np.bincount(
                        sources_u[remote_u] * num_machines
                        + machines_u[remote_u],
                        minlength=num_pairs,
                    ).reshape(num_machines, num_machines)
                    gsel = gsel_u[u_inverse]
                    machines = machines_u[u_inverse]
                    sources = sources_u[u_inverse]
                    remote = remote_u[u_inverse]
                    demand = self._pair_matrices(
                        lane_sv[bad][remote], sources[remote], machines[remote]
                    )
                    lane_repair = apportion_records(repair_records, demand)
                if bad.size:
                    forced_g[bad] = gsel
                    _charge_stack(live, lane_repair, with_ops=True)
            else:
                # Independent erasures: frogs idle in place this step.
                idle_keys = lane_sv[bad] * n + vert_sv[bad]
                idle_weights = k_sv[bad]
                k_sv = k_sv.copy()
                k_sv[stranded] = 0

        # -------- enabled totals (post-repair), one compiled pass ------
        edge_counts, machine_groups, lane_groups = passes.enabled_totals(
            vert_sv, lane_sv, fresh, forced_g
        )

        # -------- scatter(): per-lane hop coins, compiled expansion ----
        hop_keys = empty
        hop_weights = None
        rec_lane = rec_host = rec_dest = empty
        scatter_ops = np.zeros(num_machines, dtype=np.int64)
        hops_per_lane = np.zeros(num_lanes, dtype=np.int64)
        if cfg.scatter_mode == "multinomial":
            k_send = np.where(edge_counts > 0, k_sv, 0)
            per_lane = np.bincount(
                lane_sv, weights=k_send, minlength=num_lanes
            ).astype(np.int64)
            total = int(k_send.sum())
            if total:
                draw = passes.arena.take(total, np.float64)
                draw_bounds = np.concatenate([[0], np.cumsum(per_lane)])
                for lane in live:
                    lo = draw_bounds[lane.index]
                    hi = draw_bounds[lane.index + 1]
                    if hi > lo:
                        draw[lo:hi] = lane.rng.random(hi - lo)
                rec_dest, rec_host, rec_lane, hop_keys, scatter_ops = (
                    passes.expand_multinomial(
                        vert_sv, lane_sv, k_send, edge_counts, forced_g,
                        fresh, draw,
                    )
                )
                hops_per_lane = per_lane
        else:
            total_edges = int(edge_counts.sum())
            if total_edges:
                chosen, k_per_edge, prob, edge_lane = passes.expand_binomial(
                    vert_sv, lane_sv, k_sv, forced_g, fresh, edge_counts,
                    self._lane_ps,
                )
                sent = passes.arena.take(total_edges, np.int64)
                for lane in live:
                    lo, hi = np.searchsorted(
                        edge_lane, [lane.index, lane.index + 1]
                    )
                    if hi > lo:
                        sent[lo:hi] = lane.rng.binomial(
                            k_per_edge[lo:hi], prob[lo:hi]
                        )
                (
                    hop_keys, hop_weights, rec_lane, rec_host, rec_dest,
                    scatter_ops, hops_per_lane,
                ) = passes.binomial_post(chosen, edge_lane, sent)

        scatter_ops = scatter_ops + machine_groups
        for lane in live:
            lane.ledger.charge_ops(
                int(hops_per_lane[lane.index])
                + int(lane_groups[lane.index])
            )

        # -------- frog records: dense dedupe, no unique sorts ----------
        frog_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        lane_frog = None
        if rec_dest.size:
            demand, phys = passes.frog_records(
                rec_lane, rec_host, rec_dest, dedupe=self.wire_dedupe
            )
            if self.wire_dedupe:
                frog_records = phys
                lane_frog = apportion_records(frog_records, demand)
                self.record_totals["frog_demand"] += int(
                    demand.sum() - frog_records.sum()
                )
            else:
                lane_frog = demand
                frog_records = demand.sum(axis=0)
            _charge_stack(live, lane_frog, with_ops=False)

        # -------- physical flush: whole batch, once per round ----------
        self._flush_round(
            sync_records, repair_records, frog_records,
            scatter_ops.astype(np.int64),
        )

        # -------- next frontier: dense touched-key reduction -----------
        return passes.reduce_frontier(
            hop_keys, hop_weights, idle_keys, idle_weights
        )

    # ------------------------------------------------------------------
    # Lane-loop reference kernel (pre-fusion implementation)
    # ------------------------------------------------------------------
    def _superstep_lane_loop(self, step: int) -> bool:
        """One superstep of the per-lane reference implementation."""
        state = self.state
        cfg = self.config
        masters = self.tables.masters
        n = state.num_vertices
        num_machines = state.num_machines

        live: list[tuple[_Lane, np.ndarray]] = []
        active_union = np.zeros(n, dtype=bool)
        for lane in self.lanes:
            if lane.finished_at is not None:
                continue
            active_idx = np.flatnonzero(self.frogs[lane.index])
            if active_idx.size == 0:
                lane.finished_at = step
                continue
            live.append((lane, active_idx))
            active_union[active_idx] = True
        if not live:
            return False

        # ---------------- apply(): per-population deaths -----------
        apply_ops = np.zeros(num_machines, dtype=np.int64)
        scatter_mask = np.zeros(n, dtype=bool)
        for lane, active_idx in live:
            k_active = self.frogs[lane.index, active_idx]
            dead = lane.rng.binomial(k_active, cfg.p_teleport)
            self.counts[lane.index, active_idx] += dead
            survivors = k_active - dead
            ops = np.bincount(
                masters[active_idx], weights=k_active, minlength=num_machines
            ).astype(np.int64)
            apply_ops += ops
            lane.ledger.charge_ops(int(ops.sum()))
            moving = survivors > 0
            lane.sv = active_idx[moving]
            lane.k_sv = survivors[moving].astype(np.int64)
            scatter_mask[lane.sv] = True
        state.charge_many(apply_ops, phase="apply")

        sv_union = np.flatnonzero(scatter_mask)
        if sv_union.size:
            self._scatter_phase(live, sv_union)
        else:
            for lane, _ in live:
                self.frogs[lane.index] = 0

        self._close_superstep(
            [lane for lane, _ in live], int(active_union.sum())
        )
        return True

    def _scatter_phase(
        self, live: list[tuple[_Lane, np.ndarray]], sv_union: np.ndarray
    ) -> None:
        """Sync + scatter every live population over one shared gather.

        The union frontier is gathered once; each population's group
        view is a boolean slice of it.  Physical accounting (pair
        matrices, CPU vectors) is summed across populations and flushed
        once, in the same round structure as the single-query runner
        (sync, then repair, then scatter) so a B=1 batch produces the
        identical message sequence.
        """
        state = self.state
        cfg = self.config
        tables = self.tables
        masters = tables.masters
        n = state.num_vertices
        num_machines = state.num_machines

        view_union = _gather_groups(tables, sv_union)
        position_of = np.full(n, -1, dtype=np.int64)
        position_of[sv_union] = np.arange(sv_union.size, dtype=np.int64)

        sync_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        repair_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        frog_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        scatter_ops = np.zeros(num_machines, dtype=np.int64)

        for lane, _ in live:
            next_frogs = np.zeros(n, dtype=np.int64)
            sv, k_sv = lane.sv, lane.k_sv
            lane.sv = lane.k_sv = None
            if sv.size == 0:
                self.frogs[lane.index] = next_frogs
                continue
            member_rows = position_of[sv]
            if member_rows.size == sv_union.size:
                view = view_union
            else:
                member_mask = np.zeros(sv_union.size, dtype=bool)
                member_mask[member_rows] = True
                view = view_union.select(member_rows, member_mask)

            # -------- <sync>: this population's ps coins ---------------
            fresh, synced = lane.synchronizer.draw_fresh(sv)
            records = sync_pair_records(masters[sv], synced, num_machines)
            sync_records += records
            lane.ledger.charge_pair_records(records)
            lane.ledger.charge_ops(int(records.sum()))

            enabled_grp = fresh[view.grp_vertex_pos, view.grp_machine]
            enabled_per_vertex = np.bincount(
                view.grp_vertex_pos, weights=enabled_grp, minlength=sv.size
            ).astype(np.int64)
            stranded = enabled_per_vertex == 0
            if stranded.any():
                if self.erasure.repairs_empty:
                    bad = np.flatnonzero(stranded)
                    # Dangling vertices (no out-groups) cannot be
                    # repaired: their frogs idle in place this step.
                    dangling = view.g_count[bad] == 0
                    if dangling.any():
                        idle = bad[dangling]
                        next_frogs[sv[idle]] += k_sv[idle]
                        k_sv = k_sv.copy()
                        k_sv[idle] = 0
                        bad = bad[~dangling]
                    if bad.size:
                        flat_pos = _choose_repair_positions(
                            lane.rng, view.g_count, bad
                        )
                        enabled_grp = enabled_grp.copy()
                        enabled_grp[flat_pos] = True
                        machines = view.grp_machine[flat_pos]
                        sources = masters[sv[bad]].astype(np.int64)
                        remote = machines != sources
                        if remote.any():
                            extra = np.bincount(
                                sources[remote] * num_machines
                                + machines[remote],
                                minlength=num_machines**2,
                            ).reshape(num_machines, num_machines)
                            repair_records += extra
                            lane.ledger.charge_pair_records(extra)
                            lane.ledger.charge_ops(int(extra.sum()))
                else:
                    next_frogs[sv[stranded]] += k_sv[stranded]
                    k_sv = k_sv.copy()
                    k_sv[stranded] = 0

            # -------- scatter(): this population's hops ----------------
            if cfg.scatter_mode == "multinomial":
                dest, host = _scatter_multinomial(
                    lane.rng, tables, view, enabled_grp, sv, k_sv, next_frogs
                )
            else:
                dest, host = _scatter_binomial(
                    lane.rng, lane.ps, tables, view, enabled_grp, sv, k_sv,
                    next_frogs,
                )
            if dest.size:
                ops = np.bincount(host, minlength=num_machines)
            else:
                ops = np.zeros(num_machines, dtype=np.int64)
            ops += np.bincount(
                view.grp_machine[enabled_grp], minlength=num_machines
            )
            scatter_ops += ops.astype(np.int64)
            lane.ledger.charge_ops(int(ops.sum()))

            if dest.size:
                pair_keys = np.unique(host * n + dest)
                host_unique = pair_keys // n
                dest_master = masters[pair_keys % n].astype(np.int64)
                remote = host_unique != dest_master
                if remote.any():
                    records = np.bincount(
                        host_unique[remote] * num_machines
                        + dest_master[remote],
                        minlength=num_machines**2,
                    ).reshape(num_machines, num_machines)
                    frog_records += records
                    lane.ledger.charge_pair_records(records)
            self.frogs[lane.index] = next_frogs

        # -------- physical flush: whole batch, once per round ----------
        self._flush_round(
            sync_records, repair_records, frog_records, scatter_ops
        )

    # ------------------------------------------------------------------
    def _lane_report(self, lane: _Lane) -> RunReport:
        state = self.state
        cfg = self.config
        steps = lane.ledger.supersteps
        # Simulated time while this population was live: a lane that
        # died out early stops accumulating, so its per-iteration time
        # stays honest even inside a longer-running batch.
        total_time = lane.sim_time_s
        return RunReport(
            algorithm=f"frogwild-batched(ps={lane.ps:g})",
            num_machines=state.num_machines,
            supersteps=steps,
            total_time_s=total_time,
            time_per_iteration_s=total_time / steps if steps else 0.0,
            network_bytes=lane.ledger.standalone_network_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(lane.ledger.cpu_ops),
            extra={
                "num_frogs": float(lane.num_frogs),
                "iterations": float(cfg.iterations),
                "ps": float(lane.ps),
                "replication_factor": state.replication.replication_factor(),
                "batch_index": float(lane.index),
                "batch_size": float(len(self.lanes)),
            },
        )

    def _batch_report(self) -> RunReport:
        state = self.state
        stats = state.stats
        cfg = self.config
        attributed = sum(
            lane.ledger.standalone_network_bytes() for lane in self.lanes
        )
        return RunReport(
            algorithm=(
                f"frogwild-batched(B={len(self.lanes)},ps={cfg.ps:g})"
            ),
            num_machines=state.num_machines,
            supersteps=stats.num_supersteps,
            total_time_s=stats.total_seconds(),
            time_per_iteration_s=stats.seconds_per_step(),
            network_bytes=state.fabric.total_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
            extra={
                "batch_size": float(len(self.lanes)),
                "total_frogs": float(
                    sum(lane.num_frogs for lane in self.lanes)
                ),
                "attributed_network_bytes": float(attributed),
                "ps": float(cfg.ps),
                "replication_factor": state.replication.replication_factor(),
                "shared_sync": float(self.shared_sync_mode),
                "wire_dedupe": float(self.wire_dedupe),
                "sync_records": float(self.record_totals["sync"]),
                "repair_records": float(self.record_totals["repair"]),
                "frog_records": float(self.record_totals["frog"]),
                "sync_demand_records": float(
                    self.record_totals["sync_demand"]
                ),
                "frog_demand_records": float(
                    self.record_totals["frog_demand"]
                ),
            },
        )


def merge_shard_results(lanes: Sequence[FrogWildResult]) -> FrogWildResult:
    """Merge per-shard results of *one* query into a single result.

    The sharded serving backend splits a query's frog budget across
    shard sub-clusters; because frogs are independent, the merged
    counter vector is exactly the counters a single run of the full
    budget would have produced in distribution.  Attribution merges the
    same way the hardware would bill it:

    * ``network_bytes`` and ``cpu_seconds`` **add** — every shard's
      traffic and work is real and owed to this query;
    * ``total_time_s`` and ``supersteps`` take the **max** — shards
      advance concurrently, so the query waits for the slowest one.
    """
    if not lanes:
        raise ConfigError("need at least one shard result to merge")
    if len(lanes) == 1:
        return lanes[0]
    estimate = PageRankEstimate.merge([lane.estimate for lane in lanes])
    reports = [lane.report for lane in lanes]
    # Merge attribution at the ledger level when the lanes carry their
    # ledgers (batched-runner lanes always do): records, messages and
    # CPU ops add, supersteps take the max.  The fallback sums the
    # already-priced reports, which is byte-identical because
    # standalone pricing is linear in records and messages.
    ledger: CostLedger | None = None
    if all(lane.ledger is not None for lane in lanes):
        ledger = replace(lanes[0].ledger)
        for lane in lanes[1:]:
            ledger.merge(lane.ledger)
        supersteps = ledger.supersteps
        network_bytes = ledger.standalone_network_bytes()
    else:
        supersteps = max(report.supersteps for report in reports)
        network_bytes = sum(report.network_bytes for report in reports)
    total_time = max(report.total_time_s for report in reports)
    # Only config-level entries survive the merge; per-layout ones
    # (replication_factor, batch_index) describe a single shard's
    # independently seeded ingress and would misdescribe the whole.
    extra = {
        key: reports[0].extra[key]
        for key in ("iterations", "ps", "batch_size")
        if key in reports[0].extra
    }
    extra.update(
        num_frogs=float(estimate.num_frogs),
        shards=float(len(lanes)),
    )
    merged = RunReport(
        algorithm=f"frogwild-sharded(S={len(lanes)})",
        num_machines=sum(report.num_machines for report in reports),
        supersteps=supersteps,
        total_time_s=total_time,
        time_per_iteration_s=total_time / supersteps if supersteps else 0.0,
        network_bytes=network_bytes,
        cpu_seconds=sum(report.cpu_seconds for report in reports),
        extra=extra,
    )
    return FrogWildResult(estimate, merged, lanes[0].state, ledger)


def run_frogwild_batch(
    graph: DiGraph,
    queries: Sequence[BatchQuery],
    config: FrogWildConfig | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
    kernel: str = "fused",
) -> BatchedFrogWildResult:
    """Run a batch of FrogWild queries through one shared traversal.

    Mirrors :func:`repro.core.run_frogwild`: pass a prebuilt ``state``
    to reuse an ingress across batches (the serving layer does), or let
    this build one.  ``kernel`` selects the fused lane-major kernel
    (default), the per-lane ``"lane-loop"`` reference implementation,
    or the Numba ``"compiled"`` tier (see :mod:`repro.core.kernels`;
    falls back to fused with a warning when numba is absent).
    """
    config = config or FrogWildConfig()
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=config.seed,
            partition=partition,
        )
    return BatchedFrogWildRunner(state, config, queries, kernel=kernel).run()
