"""Adaptive frog budgeting: Remark 6 turned into a stopping rule.

The paper observes (Remark 6) that the error of Theorem 1 is driven to
the order of the captured mass itself with

* ``t = O(log 1/mu_k)`` iterations and
* ``N = O(k / mu_k^2)`` frogs,

but ``mu_k(pi)`` — the PageRank mass of the true top-k — is unknown
before running.  This module closes the loop: a cheap *pilot* run
estimates ``mu_k`` from its own counter histogram, the theory bounds
convert that estimate into a target budget, and the runner grows the
frog count geometrically until the reported top-k set is *stable*
(high Jaccard overlap between consecutive rounds) and *statistically
separated* (the rank-k/rank-k+1 z-score of
:meth:`~repro.core.estimator.PageRankEstimate.separation_z`).

Every round is a fresh FrogWild execution on the same ingress (the
partition is reused, as the paper reuses the loaded graph), so round
costs are comparable and the total spend is the honest sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel, make_partitioner
from ..engine import build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from ..theory import recommended_frogs, recommended_iterations
from .config import FrogWildConfig
from .estimator import PageRankEstimate
from .frogwild import FrogWildResult, FrogWildRunner

__all__ = [
    "AdaptiveConfig",
    "AdaptiveRound",
    "AdaptiveResult",
    "run_adaptive_frogwild",
    "top_k_jaccard",
]


def top_k_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard overlap of two vertex-id sets (order ignored)."""
    set_a, set_b = set(map(int, a)), set(map(int, b))
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Stopping-rule parameters for the adaptive runner.

    Attributes
    ----------
    k:
        Size of the wanted top-k set.
    pilot_frogs:
        Frog count of the first (pilot) round.
    growth_factor:
        Multiplier on the frog count between rounds (Remark 6 only
        fixes the order, so geometric growth finds the constant).
    max_frogs:
        Hard budget cap; the runner never launches more than this many
        frogs in one round.
    stability_threshold:
        Minimum Jaccard overlap between consecutive rounds' top-k sets
        to accept convergence.
    min_separation_z:
        Minimum rank-k boundary z-score to accept convergence.
    max_rounds:
        Cap on rounds (pilot included).
    delta, slack:
        Failure probability and error-fraction targets fed to the
        Remark 6 budget recommendation.
    """

    k: int = 100
    pilot_frogs: int = 2_000
    growth_factor: float = 2.0
    max_frogs: int = 500_000
    stability_threshold: float = 0.9
    min_separation_z: float = 1.0
    max_rounds: int = 8
    delta: float = 0.1
    slack: float = 0.5

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError("k must be positive")
        if self.pilot_frogs < 1:
            raise ConfigError("pilot_frogs must be positive")
        if self.growth_factor <= 1.0:
            raise ConfigError("growth_factor must exceed 1")
        if self.max_frogs < self.pilot_frogs:
            raise ConfigError("max_frogs must be >= pilot_frogs")
        if not 0.0 < self.stability_threshold <= 1.0:
            raise ConfigError("stability_threshold must lie in (0, 1]")
        if self.min_separation_z < 0:
            raise ConfigError("min_separation_z must be non-negative")
        if self.max_rounds < 1:
            raise ConfigError("max_rounds must be positive")
        if not 0.0 < self.delta < 1.0:
            raise ConfigError("delta must lie in (0, 1)")
        if not 0.0 < self.slack < 1.0:
            raise ConfigError("slack must lie in (0, 1)")


@dataclass(frozen=True)
class AdaptiveRound:
    """Diagnostics of one adaptive round."""

    round_index: int
    num_frogs: int
    iterations: int
    mu_k_self_estimate: float
    separation_z: float
    jaccard_with_previous: float
    network_bytes: int
    total_time_s: float


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive run.

    ``result`` is the last round's full FrogWild result; ``rounds``
    records the trajectory; ``recommended_frogs`` /
    ``recommended_iterations`` are the Remark 6 targets computed from
    the pilot's mass estimate (useful to compare against where the
    stopping rule actually landed).
    """

    result: FrogWildResult
    converged: bool
    recommended_frogs: int
    recommended_iterations: int
    rounds: list[AdaptiveRound] = field(default_factory=list)

    @property
    def estimate(self) -> PageRankEstimate:
        return self.result.estimate

    def total_network_bytes(self) -> int:
        """Honest total spend across all rounds, pilot included."""
        return sum(r.network_bytes for r in self.rounds)

    def total_time_s(self) -> float:
        return sum(r.total_time_s for r in self.rounds)

    def total_frogs(self) -> int:
        return sum(r.num_frogs for r in self.rounds)


def _self_estimated_mass(estimate: PageRankEstimate, k: int) -> float:
    """mu_k under the estimate's own law — the pilot's view of mu_k.

    Upward-biased at tiny N (the estimate concentrates on whatever it
    sampled), which is the *safe* direction: it can only make the
    Remark 6 budget recommendation too small, and the stability rule
    catches that case by demanding set agreement across rounds.
    """
    distribution = estimate.distribution()
    top = estimate.top_k(k)
    return float(distribution[top].sum())


def run_adaptive_frogwild(
    graph: DiGraph,
    adaptive: AdaptiveConfig | None = None,
    base_config: FrogWildConfig | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    seed: int | None = 0,
) -> AdaptiveResult:
    """Grow the frog budget until the top-k answer stabilizes.

    ``base_config`` supplies everything except ``num_frogs`` and
    ``iterations`` (ps, teleport probability, scatter mode, ...); its
    frog/iteration fields are ignored in favour of the adaptive
    schedule.
    """
    adaptive = adaptive or AdaptiveConfig()
    base_config = base_config or FrogWildConfig(seed=seed)
    if graph.num_vertices == 0:
        raise ConfigError("cannot run on an empty graph")
    if adaptive.k > graph.num_vertices:
        raise ConfigError(
            f"k={adaptive.k} exceeds the vertex count {graph.num_vertices}"
        )

    if partition is None:
        partition = make_partitioner(partitioner, seed).partition(
            graph, num_machines
        )

    def run_round(num_frogs: int, iterations: int) -> FrogWildResult:
        state = build_cluster(
            graph,
            num_machines,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            partition=partition,
        )
        config = base_config.with_updates(
            num_frogs=num_frogs, iterations=iterations
        )
        return FrogWildRunner(state, config).run()

    rounds: list[AdaptiveRound] = []
    k = adaptive.k

    # ---- pilot -----------------------------------------------------
    pilot_iterations = base_config.iterations
    result = run_round(adaptive.pilot_frogs, pilot_iterations)
    mu_hat = _self_estimated_mass(result.estimate, k)
    target_frogs = min(
        recommended_frogs(k, max(mu_hat, 1e-6), adaptive.delta, adaptive.slack),
        adaptive.max_frogs,
    )
    target_iterations = recommended_iterations(
        max(mu_hat, 1e-6), base_config.p_teleport, adaptive.slack
    )
    # The paper finds 3-5 supersteps enough; never go below the base
    # configuration, never above the Remark 6 target.
    iterations = max(pilot_iterations, min(target_iterations, 12))

    previous_top = result.estimate.top_k(k)
    rounds.append(
        AdaptiveRound(
            round_index=0,
            num_frogs=adaptive.pilot_frogs,
            iterations=pilot_iterations,
            mu_k_self_estimate=mu_hat,
            separation_z=result.estimate.separation_z(k),
            jaccard_with_previous=0.0,
            network_bytes=result.report.network_bytes,
            total_time_s=result.report.total_time_s,
        )
    )

    # ---- geometric growth ------------------------------------------
    num_frogs = adaptive.pilot_frogs
    converged = False
    for round_index in range(1, adaptive.max_rounds):
        num_frogs = min(
            int(num_frogs * adaptive.growth_factor), adaptive.max_frogs
        )
        result = run_round(num_frogs, iterations)
        top = result.estimate.top_k(k)
        jaccard = top_k_jaccard(previous_top, top)
        z = result.estimate.separation_z(k)
        rounds.append(
            AdaptiveRound(
                round_index=round_index,
                num_frogs=num_frogs,
                iterations=iterations,
                mu_k_self_estimate=_self_estimated_mass(result.estimate, k),
                separation_z=z,
                jaccard_with_previous=jaccard,
                network_bytes=result.report.network_bytes,
                total_time_s=result.report.total_time_s,
            )
        )
        previous_top = top
        if (
            jaccard >= adaptive.stability_threshold
            and z >= adaptive.min_separation_z
        ):
            converged = True
            break
        if num_frogs >= adaptive.max_frogs:
            break

    return AdaptiveResult(
        result=result,
        converged=converged,
        recommended_frogs=target_frogs,
        recommended_iterations=target_iterations,
        rounds=rounds,
    )
