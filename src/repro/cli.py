"""Command-line interface: ``frogwild`` / ``python -m repro``.

Subcommands
-----------
``figure N``
    Re-run the reproduction of paper figure N (1–8) and print its rows;
    optionally render an ASCII chart (``--render-x/--render-y``) and
    save JSON/CSV.
``run``
    Run FrogWild (or a baseline) once on a workload or an edge-list
    file and print the report plus the top-k vertices.
``info``
    Print workload statistics.
``ppr``
    Personalized PageRank for a seed set via seeded frog births.
``adaptive``
    Grow the frog budget until the top-k stabilizes (Remark 6).
``track``
    Track the top-k over a churning graph (the OSN scenario).
``faults``
    Run FrogWild under injected crashes / message loss.
``serve-bench``
    Benchmark the batched top-k serving layer against sequential
    single-query execution, then demonstrate the result cache.
``live-bench``
    Drive a churn stream against the live ranking service: incremental
    ingress maintenance, epoch swaps, exact cache invalidation.
``traffic-bench``
    Replay an open-loop traffic workload (Poisson / diurnal / burst)
    against the service on a virtual clock, once without and once with
    admission control, and report queue depth, shed/degrade rates,
    latency quantiles and the error bounds degraded answers carry.
``chaos-bench``
    Drive live traffic against a *real* multi-process pool while a
    chaos schedule SIGKILLs a shard worker mid-batch, and report
    recovery time, partial-answer rate, the widened error bounds
    partial answers carry, post-recovery bitwise equivalence and
    shared-memory hygiene.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .core import FrogWildConfig, run_frogwild
from .experiments import (
    ALL_FIGURES,
    livejournal_workload,
    twitter_workload,
)
from .graph import read_edge_list, summarize
from .metrics import exact_identification, normalized_mass_captured
from .pagerank import exact_pagerank

__all__ = [
    "main",
    "build_parser",
    "add_service_args",
    "service_from_args",
    "store_from_args",
]


def add_service_args(
    parser: argparse.ArgumentParser,
    *,
    machines: int = 16,
    backend_default: str = "auto",
) -> None:
    """Install the service-construction flags every bench shares.

    ``--machines``, ``--kernel``, ``--backend``, ``--store`` and
    ``--store-dir`` get one spelling, one choice set and one help
    string across ``serve-bench`` / ``live-bench`` / ``traffic-bench``
    / ``chaos-bench``, and :func:`service_from_args` /
    :func:`store_from_args` give them one resolution path, so the
    flags also *behave* identically.  Pinned by the golden ``--help``
    snapshots under ``tests/data/``.
    """
    parser.add_argument("--machines", type=int, default=machines)
    parser.add_argument(
        "--kernel", choices=("fused", "lane-loop", "compiled"),
        default="fused",
        help="batch-kernel tier: 'compiled' runs the Numba single-pass "
             "loops (install the [accel] extra; falls back to 'fused' "
             "with a warning when numba is absent), 'lane-loop' is the "
             "pre-fusion reference",
    )
    parser.add_argument(
        "--backend", choices=("auto", "local", "sharded", "process"),
        default=backend_default,
        help="execution backend: 'process' runs one OS process per shard "
             "over shared-memory graph state (real multi-core scale-out); "
             "'auto' picks local/sharded from --shards",
    )
    parser.add_argument(
        "--store", choices=("ram", "segment"), default="ram",
        help="graph storage tier: 'segment' serves through an on-disk "
             "segment store (out-of-core base edge set, in-RAM delta "
             "layer) instead of the in-RAM CSR",
    )
    parser.add_argument(
        "--store-dir", metavar="DIR", default=None,
        help="segment-store directory for --store segment: reopened if "
             "a manifest exists there, otherwise created from the "
             "workload graph (default: a fresh temporary directory)",
    )


def store_from_args(args, graph):
    """The :class:`~repro.store.SegmentStore` the shared ``--store`` /
    ``--store-dir`` flags ask for, or ``None`` for the RAM tier."""
    if getattr(args, "store", "ram") != "segment":
        return None
    import tempfile
    from pathlib import Path

    from .store import SegmentStore

    directory = args.store_dir or tempfile.mkdtemp(prefix="repro-segments-")
    if (Path(directory) / "manifest.json").exists():
        return SegmentStore(directory)
    return SegmentStore.create(
        directory,
        source=graph,
        num_machines=args.machines,
        salt=args.seed or 0,
    )


def service_from_args(graph, config, args, **overrides):
    """Build the :class:`~repro.serving.RankingService` a bench asked for.

    One resolution path for the flags :func:`add_service_args`
    installs — kernel-tier fallback, ``--backend auto``, the storage
    tier — normalized into a :class:`~repro.serving.ServiceConfig` and
    built via ``RankingService.from_config``.  ``overrides`` are
    command-specific config fields (cache sizing, clocks, admission,
    an explicit backend...).
    """
    from .core.kernels import resolve_kernel
    from .serving import RankingService, ServiceConfig

    kwargs = dict(
        config=config,
        num_machines=args.machines,
        seed=args.seed,
        kernel=resolve_kernel(getattr(args, "kernel", "fused")),
        num_shards=getattr(args, "shards", 1) or 1,
        backend=(
            None if getattr(args, "backend", "auto") == "auto"
            else args.backend
        ),
    )
    if "store" not in overrides:
        kwargs["store"] = store_from_args(args, graph)
    kwargs.update(overrides)
    service_config = ServiceConfig(**kwargs)
    out_of_core = getattr(service_config.store, "out_of_core", False)
    return RankingService.from_config(
        None if out_of_core else graph, service_config
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="frogwild",
        description=(
            "FrogWild! fast top-k PageRank approximation "
            "(VLDB 2015 reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("number", choices=sorted(ALL_FIGURES))
    fig.add_argument(
        "--twitter-n", type=int, default=20_000,
        help="vertices in the Twitter-like workload",
    )
    fig.add_argument(
        "--livejournal-n", type=int, default=10_000,
        help="vertices in the LiveJournal-like workload",
    )
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--render-x", metavar="COLUMN",
        help="render an ASCII chart with this row column on the x axis",
    )
    fig.add_argument(
        "--render-y", metavar="COLUMN", default="mass@100",
        help="y-axis column for --render-x (default: mass@100)",
    )
    fig.add_argument("--kind", choices=("scatter", "line"), default="scatter")
    fig.add_argument("--log-x", action="store_true")
    fig.add_argument("--log-y", action="store_true")
    fig.add_argument("--save-json", metavar="PATH")
    fig.add_argument("--save-csv", metavar="PATH")

    run = sub.add_parser("run", help="run one algorithm once")
    run.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    run.add_argument("--edge-list", help="SNAP edge-list file (overrides --workload)")
    run.add_argument("--n", type=int, default=20_000, help="synthetic graph size")
    run.add_argument(
        "--algorithm",
        choices=("frogwild", "graphlab", "graphlab-exact", "async"),
        default="frogwild",
    )
    run.add_argument(
        "--partitioner",
        choices=("random", "oblivious", "grid", "hdrf", "stable-hash"),
        default="random",
    )
    run.add_argument("--frogs", type=int, default=None)
    run.add_argument("--iterations", type=int, default=4)
    run.add_argument("--ps", type=float, default=1.0)
    run.add_argument("--machines", type=int, default=16)
    run.add_argument("--top-k", type=int, default=10)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--accuracy", action="store_true",
        help="also compute exact PageRank and report accuracy",
    )

    info = sub.add_parser("info", help="describe a workload graph")
    info.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    info.add_argument("--edge-list")
    info.add_argument("--n", type=int, default=20_000)

    ppr = sub.add_parser(
        "ppr", help="personalized PageRank for a seed set (FrogWild)"
    )
    ppr.add_argument("seeds", type=int, nargs="+", help="seed vertex ids")
    ppr.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    ppr.add_argument("--edge-list")
    ppr.add_argument("--n", type=int, default=20_000)
    ppr.add_argument("--frogs", type=int, default=None)
    ppr.add_argument("--iterations", type=int, default=8)
    ppr.add_argument("--ps", type=float, default=1.0)
    ppr.add_argument("--machines", type=int, default=16)
    ppr.add_argument("--top-k", type=int, default=10)
    ppr.add_argument("--seed", type=int, default=0)

    adaptive = sub.add_parser(
        "adaptive",
        help="grow the frog budget until the top-k stabilizes (Remark 6)",
    )
    adaptive.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    adaptive.add_argument("--edge-list")
    adaptive.add_argument("--n", type=int, default=20_000)
    adaptive.add_argument("--k", type=int, default=100)
    adaptive.add_argument("--pilot-frogs", type=int, default=2_000)
    adaptive.add_argument("--max-frogs", type=int, default=500_000)
    adaptive.add_argument("--ps", type=float, default=1.0)
    adaptive.add_argument("--machines", type=int, default=16)
    adaptive.add_argument("--seed", type=int, default=0)

    track = sub.add_parser(
        "track", help="track the top-k over a churning graph (OSN scenario)"
    )
    track.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    track.add_argument("--edge-list")
    track.add_argument("--n", type=int, default=10_000)
    track.add_argument("--k", type=int, default=20)
    track.add_argument("--ticks", type=int, default=5)
    track.add_argument("--add-rate", type=float, default=0.01)
    track.add_argument("--remove-rate", type=float, default=0.01)
    track.add_argument("--frogs", type=int, default=None)
    track.add_argument("--iterations", type=int, default=4)
    track.add_argument("--machines", type=int, default=8)
    track.add_argument("--seed", type=int, default=0)

    faults = sub.add_parser(
        "faults", help="run FrogWild under injected crashes / message loss"
    )
    faults.add_argument(
        "--workload", choices=("twitter", "livejournal"), default="twitter"
    )
    faults.add_argument("--edge-list")
    faults.add_argument("--n", type=int, default=20_000)
    faults.add_argument(
        "--crash", type=int, action="append", default=[],
        metavar="MACHINE", help="crash this machine at superstep 1 (repeatable)",
    )
    faults.add_argument("--crash-step", type=int, default=1)
    faults.add_argument(
        "--no-rebirth", action="store_true",
        help="lost frogs stay lost instead of being reborn uniformly",
    )
    faults.add_argument("--drop", type=float, default=0.0,
                        help="in-flight frog loss probability")
    faults.add_argument("--frogs", type=int, default=None)
    faults.add_argument("--iterations", type=int, default=4)
    faults.add_argument("--ps", type=float, default=1.0)
    faults.add_argument("--machines", type=int, default=8)
    faults.add_argument("--top-k", type=int, default=10)
    faults.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark the batched top-k serving layer",
    )
    serve.add_argument(
        "--workload", choices=("twitter", "livejournal", "rmat"), default="rmat"
    )
    serve.add_argument("--edge-list")
    serve.add_argument("--n", type=int, default=20_000)
    serve.add_argument(
        "--rmat-scale", type=int, default=13,
        help="log2 vertices of the RMAT workload",
    )
    serve.add_argument("--queries", type=int, default=16,
                       help="number of personalized queries to serve")
    serve.add_argument("--batch-size", type=int, default=16)
    serve.add_argument("--seeds-per-query", type=int, default=3)
    serve.add_argument("--frogs", type=int, default=3_000)
    serve.add_argument("--iterations", type=int, default=5)
    serve.add_argument("--ps", type=float, default=0.8)
    serve.add_argument(
        "--sync-mode", choices=("per-lane", "shared"), default="per-lane",
        help="'shared' flips one ps coin stream for the whole batch: one "
             "sync record per (vertex, mirror) per barrier regardless of "
             "the batch size (adds cross-query correlation)",
    )
    serve.add_argument(
        "--wire-dedupe", action="store_true",
        help="lanes targeting the same (host, destination) share one "
             "physical frog record, attributed back proportionally",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="split the machine fleet into this many shard sub-clusters "
             "and fan every batch out across them",
    )
    add_service_args(serve, machines=16)
    serve.add_argument(
        "--max-delay-ms", type=float, default=None,
        help="also demo the deadline scheduler: trickle queries in one "
             "per millisecond under this batching deadline",
    )
    serve.add_argument("--top-k", type=int, default=10)
    serve.add_argument("--seed", type=int, default=0)

    live = sub.add_parser(
        "live-bench",
        help="serve a churning graph: incremental refresh + epoch swaps",
    )
    live.add_argument(
        "--workload",
        choices=("twitter", "livejournal", "rmat"),
        default="twitter",
    )
    live.add_argument("--edge-list")
    live.add_argument("--n", type=int, default=2_000)
    live.add_argument("--rmat-scale", type=int, default=10,
                      help="log2 vertices for --workload rmat")
    live.add_argument("--ticks", type=int, default=4,
                      help="churn batches to apply (one refresh each)")
    live.add_argument("--add-rate", type=float, default=0.01)
    live.add_argument("--remove-rate", type=float, default=0.01)
    live.add_argument("--queries", type=int, default=6,
                      help="personalized queries re-served every epoch")
    live.add_argument("--seeds-per-query", type=int, default=2)
    live.add_argument("--frogs", type=int, default=2_000)
    live.add_argument("--iterations", type=int, default=4)
    live.add_argument(
        "--shards", type=int, default=None,
        help="shard sub-clusters (default: autotuned from fleet and "
             "frog budget)",
    )
    add_service_args(live, machines=8)
    live.add_argument(
        "--rebalance-threshold", type=float, default=2.0,
        help="load-imbalance bound triggering a full re-salted "
             "repartition",
    )
    live.add_argument("--top-k", type=int, default=10)
    live.add_argument("--seed", type=int, default=0)
    live.add_argument(
        "--background", action="store_true",
        help="build epochs on the background refresher's worker thread "
             "(deltas coalesce; the query path pays only the swap)",
    )
    live.add_argument(
        "--save-json", metavar="PATH",
        help="merge a machine-readable perf record into this JSON file "
             "(default name BENCH_serving.json)",
    )

    traffic = sub.add_parser(
        "traffic-bench",
        help="replay open-loop traffic against the serving layer, with "
             "and without admission control, on a virtual clock",
    )
    traffic.add_argument("--n", type=int, default=400,
                         help="vertices of the twitter-like graph")
    traffic.add_argument("--users", type=int, default=400,
                         help="Zipf-popular user population size")
    traffic.add_argument("--seeds-per-user", type=int, default=2)
    traffic.add_argument("--frogs", type=int, default=2_000)
    traffic.add_argument("--iterations", type=int, default=4)
    add_service_args(traffic, machines=8)
    traffic.add_argument("--batch-size", type=int, default=4)
    traffic.add_argument("--max-delay-ms", type=float, default=50.0)
    traffic.add_argument("--cache-ttl-s", type=float, default=0.5)
    traffic.add_argument(
        "--arrivals", choices=("burst", "poisson", "diurnal"),
        default="burst",
    )
    traffic.add_argument("--base-qps", type=float, default=3.0)
    traffic.add_argument("--burst-qps", type=float, default=300.0,
                         help="burst (or diurnal peak / poisson) rate")
    traffic.add_argument("--burst-start-s", type=float, default=2.0)
    traffic.add_argument("--burst-duration-s", type=float, default=1.5)
    traffic.add_argument("--duration-s", type=float, default=6.0)
    traffic.add_argument(
        "--service-time-scale", type=float, default=25.0,
        help="calibration from simulated batch makespan to harness "
             "service time; >1 pushes the burst past modeled capacity",
    )
    traffic.add_argument("--max-pending", type=int, default=16,
                         help="admission bound on scheduler queue depth")
    traffic.add_argument("--top-k", type=int, default=10)
    traffic.add_argument("--seed", type=int, default=0)
    traffic.add_argument(
        "--smoke", action="store_true",
        help="pin every knob to the deterministic acceptance scenario "
             "(ignores other scenario flags; what the CI lane runs)",
    )
    traffic.add_argument(
        "--save-json", metavar="PATH",
        help="merge a machine-readable perf record into this JSON file "
             "(default name BENCH_serving.json)",
    )

    chaos = sub.add_parser(
        "chaos-bench",
        help="drive live traffic against a real process pool while "
             "killing shard workers, and measure recovery time, "
             "partial-answer rate and accuracy against a healthy pool",
    )
    chaos.add_argument("--n", type=int, default=400,
                       help="vertices of the twitter-like graph")
    chaos.add_argument("--users", type=int, default=64,
                       help="Zipf-popular user population size")
    chaos.add_argument("--seeds-per-user", type=int, default=2)
    chaos.add_argument("--frogs", type=int, default=2_000)
    chaos.add_argument("--iterations", type=int, default=3)
    chaos.add_argument("--shards", type=int, default=4,
                       help="worker processes in the pool")
    add_service_args(chaos, machines=8, backend_default="process")
    chaos.add_argument("--batch-size", type=int, default=4)
    chaos.add_argument("--max-delay-ms", type=float, default=20.0)
    chaos.add_argument("--qps", type=float, default=40.0,
                       help="Poisson arrival rate of the load")
    chaos.add_argument("--duration-s", type=float, default=3.0)
    chaos.add_argument("--timeout-s", type=float, default=15.0,
                       help="pool's per-operation worker deadline")
    chaos.add_argument("--kill-shard", type=int, default=1,
                       help="victim shard whose worker gets SIGKILL'd")
    chaos.add_argument(
        "--kill-at-s", type=float, default=1.0,
        help="when the SIGKILL lands; a reply-delay is injected 0.5 s "
             "earlier so the kill deterministically hits mid-batch",
    )
    chaos.add_argument("--top-k", type=int, default=10)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--smoke", action="store_true",
        help="pin every knob to the deterministic acceptance scenario "
             "(ignores other scenario flags; what the CI lane runs)",
    )
    chaos.add_argument(
        "--save-json", metavar="PATH",
        help="merge a machine-readable perf record into this JSON file "
             "(default name BENCH_serving.json)",
    )

    chart = sub.add_parser(
        "chart", help="render a saved figure JSON as an ASCII chart"
    )
    chart.add_argument("path", help="file written by figure --save-json")
    chart.add_argument("--x", default="total_time_s")
    chart.add_argument("--y", default="mass@100")
    chart.add_argument("--kind", choices=("scatter", "line"), default="scatter")
    chart.add_argument("--log-x", action="store_true")
    chart.add_argument("--log-y", action="store_true")
    chart.add_argument("--width", type=int, default=72)
    chart.add_argument("--height", type=int, default=20)
    return parser


def _load_graph(args):
    if getattr(args, "edge_list", None):
        return read_edge_list(args.edge_list)
    if getattr(args, "workload", None) == "rmat":
        from .graph import rmat

        return rmat(scale=args.rmat_scale, seed=args.seed)
    if args.workload == "twitter":
        return twitter_workload(n=args.n).graph
    return livejournal_workload(n=args.n).graph


def _cmd_figure(args) -> int:
    if args.number in ("1", "2", "3", "4", "5"):
        workload = twitter_workload(n=args.twitter_n)
    else:
        workload = livejournal_workload(n=args.livejournal_n)
    start = time.perf_counter()
    result = ALL_FIGURES[args.number](workload, seed=args.seed)
    print(result.to_text())
    print(f"(reproduced in {time.perf_counter() - start:.1f}s wall time)")
    if args.render_x:
        from .viz import figure_chart

        print()
        print(
            figure_chart(
                result,
                x=args.render_x,
                y=args.render_y,
                kind=args.kind,
                log_x=args.log_x,
                log_y=args.log_y,
            )
        )
    if args.save_json:
        from .experiments import save_figure_json

        print(f"saved JSON to {save_figure_json(result, args.save_json)}")
    if args.save_csv:
        from .experiments import save_rows_csv

        print(f"saved CSV to {save_rows_csv(result.rows, args.save_csv)}")
    return 0


def _cmd_run(args) -> int:
    graph = _load_graph(args)
    frogs = args.frogs or max(2_000, graph.num_vertices // 2)
    if args.algorithm == "frogwild":
        config = FrogWildConfig(
            num_frogs=frogs,
            iterations=args.iterations,
            ps=args.ps,
            seed=args.seed,
        )
        result = run_frogwild(
            graph,
            config,
            num_machines=args.machines,
            partitioner=args.partitioner,
        )
        report = result.report
        ranking = result.estimate.vector()
        top = result.estimate.top_k(args.top_k)
    elif args.algorithm == "async":
        from .pagerank import async_pagerank

        pr = async_pagerank(
            graph,
            num_machines=args.machines,
            partitioner=args.partitioner,
            seed=args.seed,
        )
        report = pr.report
        ranking = pr.ranks
        top = pr.top_k(args.top_k)
    else:
        from .pagerank import graphlab_pagerank

        iterations = None if args.algorithm == "graphlab-exact" else args.iterations
        pr = graphlab_pagerank(
            graph,
            num_machines=args.machines,
            iterations=iterations,
            partitioner=args.partitioner,
            seed=args.seed,
        )
        report = pr.report
        ranking = pr.ranks
        top = pr.top_k(args.top_k)

    print(f"algorithm        : {report.algorithm}")
    print(f"machines         : {report.num_machines}")
    print(f"supersteps       : {report.supersteps}")
    print(f"total time (sim) : {report.total_time_s:.4f} s")
    print(f"time/iteration   : {report.time_per_iteration_s:.4f} s")
    print(f"network sent     : {report.network_bytes:,} bytes")
    print(f"cpu usage        : {report.cpu_seconds:.4f} s")
    print(f"top-{args.top_k} vertices  : {top.tolist()}")
    if args.accuracy:
        truth = exact_pagerank(graph)
        mass = normalized_mass_captured(ranking, truth, max(args.top_k, 1))
        exact = exact_identification(ranking, truth, max(args.top_k, 1))
        print(f"mass captured    : {mass:.4f}")
        print(f"exact id         : {exact:.4f}")
    return 0


def _cmd_info(args) -> int:
    graph = _load_graph(args)
    summary = summarize(graph)
    for key, value in summary.as_dict().items():
        print(f"{key:26s}: {value}")
    return 0


def _cmd_ppr(args) -> int:
    import numpy as np

    from .core import run_personalized_frogwild

    graph = _load_graph(args)
    seeds = np.asarray(args.seeds, dtype=np.int64)
    frogs = args.frogs or max(4_000, graph.num_vertices)
    config = FrogWildConfig(
        num_frogs=frogs,
        iterations=args.iterations,
        ps=args.ps,
        seed=args.seed,
    )
    result = run_personalized_frogwild(
        graph, seeds, config, num_machines=args.machines
    )
    top = result.estimate.top_k(args.top_k)
    distribution = result.estimate.distribution()
    print(f"personalized PageRank for seeds {seeds.tolist()}")
    print(f"network sent     : {result.report.network_bytes:,} bytes")
    print(f"total time (sim) : {result.report.total_time_s:.4f} s")
    for position, vertex in enumerate(top, start=1):
        print(f"  #{position:>2}  vertex {vertex:>7}  "
              f"score {distribution[vertex]:.5f}")
    return 0


def _cmd_adaptive(args) -> int:
    from .core import AdaptiveConfig, run_adaptive_frogwild
    from .experiments import format_table

    graph = _load_graph(args)
    outcome = run_adaptive_frogwild(
        graph,
        AdaptiveConfig(
            k=args.k,
            pilot_frogs=args.pilot_frogs,
            max_frogs=args.max_frogs,
        ),
        base_config=FrogWildConfig(ps=args.ps, seed=args.seed),
        num_machines=args.machines,
        seed=args.seed,
    )
    rows = [
        {
            "round": r.round_index,
            "frogs": r.num_frogs,
            "iters": r.iterations,
            "mu_k (self)": r.mu_k_self_estimate,
            "sep z": r.separation_z,
            "jaccard": r.jaccard_with_previous,
            "net bytes": r.network_bytes,
            "time (s)": r.total_time_s,
        }
        for r in outcome.rounds
    ]
    print(format_table(rows, title=f"adaptive top-{args.k} schedule"))
    print(f"converged              : {outcome.converged}")
    print(f"Remark 6 target frogs  : {outcome.recommended_frogs:,}")
    print(f"Remark 6 target iters  : {outcome.recommended_iterations}")
    print(f"total frogs launched   : {outcome.total_frogs():,}")
    print(f"total network          : {outcome.total_network_bytes():,} bytes")
    print(f"top-{args.k}: {outcome.estimate.top_k(args.k).tolist()}")
    return 0


def _cmd_track(args) -> int:
    from .dynamic import ChurnGenerator, DynamicDiGraph, PageRankTracker
    from .experiments import format_table

    base = _load_graph(args)
    dynamic = DynamicDiGraph.from_digraph(base)
    frogs = args.frogs or max(2_000, base.num_vertices)
    tracker = PageRankTracker(
        dynamic,
        k=args.k,
        config=FrogWildConfig(
            num_frogs=frogs, iterations=args.iterations, seed=args.seed
        ),
        num_machines=args.machines,
        seed=args.seed,
    )
    churn = ChurnGenerator(
        add_rate=args.add_rate, remove_rate=args.remove_rate, seed=args.seed
    )
    for _ in range(args.ticks):
        tracker.update(churn.step(dynamic))
    rows = [
        {
            "tick": u.step,
            "edges": u.num_edges,
            "+edges": u.edges_added,
            "-edges": u.edges_removed,
            "jaccard": u.jaccard_vs_previous,
            "ingress": u.new_edge_placements,
            "net bytes": u.network_bytes,
            "time (s)": u.total_time_s,
        }
        for u in tracker.history
    ]
    print(format_table(rows, title=f"top-{args.k} tracking under churn"))
    print(f"list stability     : {tracker.churn_stability():.3f}")
    print(f"total network      : {tracker.total_network_bytes():,} bytes")
    print(f"current top-{args.k}: {tracker.current_top_k.tolist()}")
    return 0


def _cmd_faults(args) -> int:
    from .faults import (
        FaultSchedule,
        MachineCrash,
        MessageDrop,
        run_frogwild_with_faults,
    )

    graph = _load_graph(args)
    frogs = args.frogs or max(2_000, graph.num_vertices // 2)
    schedule = FaultSchedule(
        crashes=tuple(
            MachineCrash(
                step=args.crash_step,
                machine=machine,
                rebirth=not args.no_rebirth,
            )
            for machine in args.crash
        ),
        message_drop=MessageDrop(args.drop) if args.drop else None,
    )
    config = FrogWildConfig(
        num_frogs=frogs, iterations=args.iterations, ps=args.ps,
        seed=args.seed,
    )
    result, log = run_frogwild_with_faults(
        graph, schedule, config, num_machines=args.machines
    )
    truth = exact_pagerank(graph)
    mass = normalized_mass_captured(
        result.estimate.vector(), truth, args.top_k
    )
    print(f"crashed machines      : {log.crashed_machines or 'none'}")
    print(f"frogs lost to crashes : {log.frogs_lost_to_crashes:,}")
    print(f"frogs reborn          : {log.frogs_reborn:,}")
    print(f"frogs dropped in-flight: {log.frogs_dropped_in_flight:,}")
    print(f"net frogs lost        : {log.net_frogs_lost:,}")
    print(f"frogs counted         : {result.estimate.total_stopped:,}"
          f" / {frogs:,}")
    print(f"mass captured (k={args.top_k})  : {mass:.4f}")
    print(f"top-{args.top_k}: {result.estimate.top_k(args.top_k).tolist()}")
    return 0


def _cmd_serve_bench(args) -> int:
    import numpy as np

    from .cluster import make_partitioner
    from .core import run_personalized_frogwild
    from .engine import build_cluster
    from .serving import RankingQuery, RankingService

    if args.workload == "rmat" and not args.edge_list:
        from .graph import rmat

        graph = rmat(scale=args.rmat_scale, seed=args.seed)
    else:
        graph = _load_graph(args)
    config = FrogWildConfig(
        num_frogs=args.frogs,
        iterations=args.iterations,
        ps=args.ps,
        seed=args.seed,
        sync_mode=args.sync_mode,
        wire_dedupe=args.wire_dedupe,
    )
    if args.sync_mode == "shared" or args.wire_dedupe:
        print(
            f"kernel modes              : sync={args.sync_mode}, "
            f"wire-dedupe={'on' if args.wire_dedupe else 'off'}"
        )
    from .core.kernels import resolve_kernel

    resolved_kernel = resolve_kernel(args.kernel)
    tier_note = (
        "" if resolved_kernel == args.kernel
        else f" (requested {args.kernel}, numba unavailable)"
    )
    print(f"kernel tier               : {resolved_kernel}{tier_note}")
    rng = np.random.default_rng(args.seed)
    seed_sets = [
        np.sort(
            rng.choice(
                graph.num_vertices, size=args.seeds_per_query, replace=False
            )
        )
        for _ in range(args.queries)
    ]
    service = service_from_args(
        graph,
        config,
        args,
        max_batch_size=args.batch_size,
        cache_capacity=max(256, 2 * args.queries),
    )
    if args.store == "segment":
        print(f"storage tier              : segment store at "
              f"{service.store.directory}")
    layout = (
        f"{service.num_shards} shards x "
        f"{service.backend.machines_per_shard} machines"
        if service.num_shards > 1
        else f"{args.machines} machines"
    )
    backend_kind = type(service.backend).__name__
    print(
        f"workload: {graph.num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges on {layout} ({backend_kind})"
    )

    # Sequential baseline: one traversal per query over one shared
    # ingress partition (the repo's repeated-run idiom, cf. adaptive).
    if service.replication is not None:
        baseline_partition = service.replication.partition
    else:
        baseline_partition = make_partitioner("random", args.seed).partition(
            graph, args.machines
        )
    start = time.perf_counter()
    sequential = []
    for seeds in seed_sets:
        state = build_cluster(
            graph,
            args.machines,
            seed=args.seed,
            partition=baseline_partition,
        )
        sequential.append(
            run_personalized_frogwild(graph, seeds, config, state=state)
        )
    sequential_s = time.perf_counter() - start

    queries = [
        RankingQuery(seeds=tuple(seeds.tolist()), k=args.top_k)
        for seeds in seed_sets
    ]
    start = time.perf_counter()
    answers = service.query_batch(queries)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    reheated = service.query_batch(queries)
    cached_s = time.perf_counter() - start

    print(f"sequential ({args.queries} queries) : {sequential_s:.3f} s")
    print(f"batched    (batch<={args.batch_size:3d})     : {batched_s:.3f} s"
          f"  ({batched_s / sequential_s:.2f}x)")
    print(f"cache-hit replay          : {cached_s:.3f} s"
          f"  ({cached_s / sequential_s:.2f}x)")
    stats = service.stats
    print(f"batches run               : {stats.batches_run} "
          f"(sizes {stats.batch_sizes})")
    print(f"wire bytes (shared)       : {stats.shared_network_bytes:,}")
    print(f"wire bytes (attributed)   : {stats.attributed_network_bytes:,}")
    print(f"amortization ratio        : {stats.amortization_ratio():.3f}")
    for shard, costs in stats.shard_breakdown().items():
        print(f"  shard {shard}: "
              f"{int(costs['shared_network_bytes']):,} shared bytes, "
              f"{int(costs['attributed_network_bytes']):,} attributed, "
              f"{costs['cpu_seconds']:.4f} cpu-s")
    transport = getattr(service.backend, "transport_summary", None)
    if callable(transport):
        summary = transport()
        print(f"transport bytes (measured): "
              f"{int(summary['sent_measured_bytes']):,} over "
              f"{int(summary['sent_messages'])} frames, "
              f"reconciles={'yes' if summary['reconciles'] else 'no'}")
    print(f"cache                     : {service.cache_stats()}")
    misses = sum(not answer.cached for answer in reheated)
    if misses:
        print(f"  warning: {misses}/{len(reheated)} replayed queries "
              "re-executed — raise the service cache capacity above "
              f"{args.queries} to serve repeats from cache")
    for answer, single in zip(answers, sequential):
        agreement = len(
            set(answer.vertices.tolist())
            & set(single.estimate.top_k(args.top_k).tolist())
        ) / args.top_k
        if agreement < 1.0:
            print(f"  note: top-{args.top_k} overlap vs sequential "
                  f"{agreement:.0%} for seeds {answer.query.seeds}")
    print(f"sample answer             : seeds {answers[0].query.seeds} -> "
          f"{answers[0].vertices.tolist()}")

    if args.max_delay_ms is not None:
        from .serving import VirtualClock

        # Trickle demo: queries arrive one per (virtual) millisecond;
        # the deadline scheduler still forms real batches instead of
        # executing each arrival alone.
        clock = VirtualClock()
        trickle = RankingService(
            graph,
            config,
            num_machines=args.machines,
            max_batch_size=args.batch_size,
            cache_capacity=max(256, 2 * args.queries),
            seed=args.seed,
            backend=service.backend,  # reuse the paid ingress
            max_delay_s=args.max_delay_ms / 1000.0,
            clock=clock,
        )
        futures = []
        for seeds in seed_sets:
            futures.append(
                trickle.submit(tuple(seeds.tolist()), k=args.top_k)
            )
            clock.advance(0.001)
            trickle.pump()
        trickle.flush()
        assert all(future.done() for future in futures)
        sched = trickle.scheduler.stats
        print(f"\ntrickle (1 query/ms, {args.max_delay_ms:g} ms deadline)")
        print(f"scheduled batch sizes     : {trickle.stats.batch_sizes}")
        print(f"dispatch reasons          : {sched.fill_dispatches} fill, "
              f"{sched.deadline_dispatches} deadline, "
              f"{sched.flush_dispatches} flush")
        print("amortization ratio        : "
              f"{trickle.stats.amortization_ratio():.3f}")
    # Tear down worker processes / shared segments (no-op otherwise).
    service.close()
    return 0


def _cmd_live_bench(args) -> int:
    import numpy as np

    from .core import top_k_jaccard
    from .dynamic import ChurnGenerator, DynamicDiGraph
    from .experiments import format_table
    from .live import LiveRankingService
    from .serving import RankingQuery

    base = _load_graph(args)
    config = FrogWildConfig(
        num_frogs=args.frogs, iterations=args.iterations, seed=args.seed
    )
    from .core.kernels import resolve_kernel

    # The shared --store flag swaps the churn source: RAM twin or the
    # on-disk segment store (deltas land in its delta layer and the
    # refresh pipeline compacts them off the query path).
    store = store_from_args(args, base)
    dynamic = None if store is not None else DynamicDiGraph.from_digraph(base)
    service = LiveRankingService(
        dynamic,
        config=config,
        num_machines=args.machines,
        num_shards=args.shards,
        rebalance_threshold=args.rebalance_threshold,
        seed=args.seed,
        kernel=resolve_kernel(args.kernel),
        execution="process" if args.backend == "process" else "simulated",
        store=store,
    )
    if store is not None:
        print(f"storage tier              : segment store at "
              f"{store.directory}")
    churn = ChurnGenerator(
        add_rate=args.add_rate, remove_rate=args.remove_rate, seed=args.seed
    )
    rng = np.random.default_rng(args.seed)
    queries = [
        RankingQuery(
            seeds=tuple(
                np.sort(rng.choice(
                    base.num_vertices, size=args.seeds_per_query,
                    replace=False,
                )).tolist()
            ),
            k=args.top_k,
        )
        for _ in range(args.queries)
    ]

    layout = (
        f"{service.num_shards} shards x "
        f"{service._machines_per_ingress} machines"
        if service.num_shards > 1
        else f"{args.machines} machines"
    )
    print(
        f"live workload: {base.num_vertices:,} vertices, "
        f"{base.num_edges:,} edges on {layout}"
    )

    if args.background:
        return _live_bench_background(
            args, service, churn, service.source, queries
        )

    start = time.perf_counter()
    rows = []
    previous_tops: list | None = None
    for _ in range(args.ticks + 1):
        answers = service.query_batch(queries)
        replays = service.query_batch(queries)
        tops = [answer.vertices for answer in answers]
        stability = (
            float(np.mean([
                top_k_jaccard(old, new)
                for old, new in zip(previous_tops, tops)
            ]))
            if previous_tops is not None
            else 1.0
        )
        previous_tops = tops
        epoch = service.current_epoch
        rows.append({
            "epoch": epoch.epoch_id,
            "edges": epoch.num_edges,
            "reuse": (
                service.refresh_history[-1].reuse_ratio
                if service.refresh_history else 1.0
            ),
            "new place": (
                service.refresh_history[-1].new_placements
                if service.refresh_history else epoch.num_edges
            ),
            "imbalance": (
                service.refresh_history[-1].load_imbalance
                if service.refresh_history
                else max(i.load_imbalance() for i in service.ingresses)
            ),
            "jaccard": stability,
            "replay hit": all(a.cached for a in replays),
        })
        if len(rows) <= args.ticks:
            service.refresh(churn.step(service.source))
    wall_s = time.perf_counter() - start

    print(format_table(
        rows, title=f"live top-{args.top_k} serving under churn"
    ))
    live = service.live_stats()
    stats = service.stats
    print(f"epochs published          : {int(live['epochs_published'])}")
    print(f"lifetime placement reuse  : {live['lifetime_reuse_ratio']:.4f}")
    print(f"full repartitions         : {int(live['full_repartitions'])}")
    print(f"queries served / executed : {stats.queries_served} / "
          f"{stats.queries_executed}")
    print(f"amortization ratio        : {stats.amortization_ratio():.3f}")
    print(f"batches per epoch         : "
          f"{dict(sorted(service.epochs.batches_per_epoch.items()))}")
    print(f"wall time                 : {wall_s:.3f} s")
    if args.save_json:
        from .experiments import record_perf

        path = record_perf(
            "live-bench",
            {
                "wall_time_s": wall_s,
                "ticks": args.ticks,
                "epochs_published": live["epochs_published"],
                "lifetime_reuse_ratio": live["lifetime_reuse_ratio"],
                "amortization_ratio": stats.amortization_ratio(),
                "queries_executed": stats.queries_executed,
            },
            path=args.save_json,
        )
        print(f"perf record merged into {path}")
    return 0


def _live_bench_background(args, service, churn, dynamic, queries) -> int:
    """live-bench with the off-query-path refresher driving epochs."""
    start = time.perf_counter()
    cold = service.query_batch(queries)
    replays = service.query_batch(queries)
    print(f"epoch {service.current_epoch.epoch_id}: "
          f"{len(cold)} cold queries, replay hits "
          f"{all(a.cached for a in replays)}")

    service.start_refresher()
    tickets = service.attach(churn, ticks=args.ticks, background=True)
    updates = [ticket.result(timeout=300.0) for ticket in tickets]
    final = service.query_batch(queries)
    service.stop()
    wall_s = time.perf_counter() - start

    stats = service.refresher.stats
    live = service.live_stats()
    distinct = list({id(u): u for u in updates}.values())
    print(f"deltas submitted          : {stats.deltas_submitted}")
    print(f"background builds         : {stats.builds} "
          f"(max coalesce {stats.max_coalesced})")
    print(f"epochs published          : {int(live['epochs_published'])}")
    print(f"publishes mid-flight      : "
          f"{int(live['publishes_mid_flight'])}")
    print(f"mean build time           : {stats.mean_build_s() * 1e3:.2f} ms")
    print(f"publish p50 (query path)  : "
          f"{stats.publish_p50_s() * 1e6:.1f} us")
    print(f"lifetime placement reuse  : {live['lifetime_reuse_ratio']:.4f}")
    print(f"table patches / rebuilds  : {int(live['table_patches'])} / "
          f"{int(live['table_rebuilds'])}")
    print(f"final epoch stamp         : "
          f"{int(final[0].report.extra['epoch'])} "
          f"(source version {service.source.version})")
    print(f"wall time                 : {wall_s:.3f} s")
    if args.save_json:
        from .experiments import record_perf

        path = record_perf(
            "live-bench",
            {
                "wall_time_s": wall_s,
                "ticks": args.ticks,
                "background_builds": stats.builds,
                "deltas_coalesced": stats.deltas_coalesced,
                "mean_build_s": stats.mean_build_s(),
                "publish_p50_s": stats.publish_p50_s(),
                "epochs_published": live["epochs_published"],
                "epochs_covered": len(distinct),
                "lifetime_reuse_ratio": live["lifetime_reuse_ratio"],
                "table_patches": live["table_patches"],
                "table_rebuilds": live["table_rebuilds"],
            },
            path=args.save_json,
        )
        print(f"perf record merged into {path}")
    return 0


def _traffic_scenario(args):
    """Build (graph, config, workload, service factory inputs) once."""
    from .graph.generators import twitter_like
    from .traffic import (
        BurstArrivals,
        DiurnalArrivals,
        PoissonArrivals,
        TrafficWorkload,
        UserPopulation,
    )

    graph = twitter_like(n=args.n, seed=7)
    config = FrogWildConfig(
        num_frogs=args.frogs, iterations=args.iterations, seed=args.seed
    )
    population = UserPopulation(
        num_users=args.users,
        num_vertices=graph.num_vertices,
        seeds_per_user=args.seeds_per_user,
        k=args.top_k,
        seed=1,
    )
    if args.arrivals == "poisson":
        arrivals = PoissonArrivals(rate_qps=args.burst_qps, seed=2)
    elif args.arrivals == "diurnal":
        arrivals = DiurnalArrivals(
            trough_qps=args.base_qps,
            peak_qps=args.burst_qps,
            period_s=args.duration_s,
            seed=2,
        )
    else:
        arrivals = BurstArrivals(
            base_qps=args.base_qps,
            burst_qps=args.burst_qps,
            burst_start_s=args.burst_start_s,
            burst_duration_s=args.burst_duration_s,
            seed=2,
        )
    workload = TrafficWorkload(population, arrivals, seed=3)
    return graph, config, workload


def _cmd_traffic_bench(args) -> int:
    from .serving import VirtualClock
    from .traffic import AdmissionController, TrafficHarness

    if args.smoke:
        # The deterministic acceptance scenario the tests pin: a 100x
        # flash crowd against a single modeled server, rho > 1 during
        # the burst.
        for name, value in (
            ("n", 400), ("users", 400), ("seeds_per_user", 2),
            ("frogs", 2_000), ("iterations", 4), ("machines", 8),
            ("batch_size", 4), ("max_delay_ms", 50.0),
            ("cache_ttl_s", 0.5), ("arrivals", "burst"),
            ("base_qps", 3.0), ("burst_qps", 300.0),
            ("burst_start_s", 2.0), ("burst_duration_s", 1.5),
            ("duration_s", 6.0), ("service_time_scale", 25.0),
            ("max_pending", 16), ("top_k", 10), ("seed", 0),
        ):
            setattr(args, name, value)
    graph, config, workload = _traffic_scenario(args)

    def build_service(admission):
        return service_from_args(
            graph,
            config,
            args,
            max_batch_size=args.batch_size,
            max_delay_s=args.max_delay_ms / 1000.0,
            cache_ttl_s=args.cache_ttl_s,
            cache_capacity=max(256, 2 * args.users),
            clock=VirtualClock(),
            admission=admission,
        )

    print(
        f"workload: {graph.num_vertices:,} vertices, "
        f"{args.users} users, {args.arrivals} arrivals "
        f"(peak {workload.arrivals.peak_rate:g} qps) over "
        f"{args.duration_s:g} virtual seconds"
    )

    open_loop = TrafficHarness(
        build_service(admission=None),
        workload,
        service_time_scale=args.service_time_scale,
    ).run_virtual(args.duration_s)
    base = open_loop.report

    admitted = TrafficHarness(
        build_service(AdmissionController(max_pending=args.max_pending)),
        workload,
        service_time_scale=args.service_time_scale,
    ).run_virtual(args.duration_s)
    rep = admitted.report

    print(f"\nwithout admission control ({base.arrivals} arrivals)")
    print(f"  queue depth max/mean    : {base.queue_depth_max} / "
          f"{base.queue_depth_mean:.1f}")
    print(f"  latency p50/p99         : "
          f"{base.traffic['latency_p50']:.3f} / "
          f"{base.traffic['latency_p99']:.3f} s")
    print(f"  utilization             : {base.utilization:.3f}")
    print(f"\nwith admission control (max_pending={args.max_pending})")
    print(f"  queue depth max/mean    : {rep.queue_depth_max} / "
          f"{rep.queue_depth_mean:.1f}")
    print(f"  latency p50/p99         : "
          f"{rep.traffic['latency_p50']:.3f} / "
          f"{rep.traffic['latency_p99']:.3f} s")
    print(f"  utilization             : {rep.utilization:.3f}")
    print(f"  shed                    : {rep.admission['shed']} "
          f"({rep.admission['shed_rate']:.1%} of offered)")
    print(f"  degraded                : {rep.admission['degraded']} "
          f"(all carrying error bounds: "
          f"{rep.traffic['degraded_with_bound'] == rep.traffic['degraded']})")
    print(f"  max degraded error bound: "
          f"{rep.traffic['max_error_bound']:.4f}")
    print(f"  cache hit rate          : "
          f"{rep.traffic['cache_hit_rate']:.1%}")
    if args.save_json:
        from .experiments import record_perf

        path = record_perf(
            "traffic-bench",
            {
                "arrivals": base.arrivals,
                "duration_s": args.duration_s,
                "offered_rate_qps": base.offered_rate_qps,
                "no_admission_queue_depth_max": base.queue_depth_max,
                "no_admission_latency_p99_s": base.traffic["latency_p99"],
                "no_admission_utilization": base.utilization,
                "max_pending": args.max_pending,
                "queue_depth_max": rep.queue_depth_max,
                "latency_p50_s": rep.traffic["latency_p50"],
                "latency_p99_s": rep.traffic["latency_p99"],
                "utilization": rep.utilization,
                "shed": rep.admission["shed"],
                "shed_rate": rep.admission["shed_rate"],
                "degraded": rep.traffic["degraded"],
                "degraded_with_bound": rep.traffic["degraded_with_bound"],
                "max_error_bound": rep.traffic["max_error_bound"],
                "cache_hit_rate": rep.traffic["cache_hit_rate"],
            },
            path=args.save_json,
        )
        print(f"perf record merged into {path}")
    return 0


def _cmd_chaos_bench(args) -> int:
    import math

    from .cluster import SharedArena
    from .graph.generators import twitter_like
    from .serving import ProcessPoolBackend, RankingQuery
    from .theory.bounds import config_error_bound
    from .traffic import (
        ChaosEvent,
        ChaosInjector,
        ChaosSchedule,
        PoissonArrivals,
        TrafficHarness,
        TrafficWorkload,
        UserPopulation,
    )

    if args.smoke:
        # The deterministic acceptance scenario the CI chaos lane pins:
        # steady Poisson load on a 4-worker pool, one SIGKILL landing
        # mid-batch on shard 1.
        for name, value in (
            ("n", 400), ("users", 64), ("seeds_per_user", 2),
            ("frogs", 2_000), ("iterations", 3), ("machines", 8),
            ("shards", 4), ("batch_size", 4), ("max_delay_ms", 20.0),
            ("qps", 40.0), ("duration_s", 3.0), ("timeout_s", 15.0),
            ("kill_shard", 1), ("kill_at_s", 1.0), ("top_k", 10),
            ("seed", 0),
        ):
            setattr(args, name, value)
    if not 0 <= args.kill_shard < args.shards:
        raise SystemExit(
            f"--kill-shard must name one of the {args.shards} shards"
        )

    if args.backend != "process":
        raise SystemExit(
            "chaos-bench SIGKILLs real shard workers; --backend must "
            "stay 'process'"
        )
    graph = twitter_like(n=args.n, seed=7)
    config = FrogWildConfig(
        num_frogs=args.frogs, iterations=args.iterations, seed=args.seed
    )
    from .core.kernels import resolve_kernel

    store = store_from_args(args, graph)
    pool = ProcessPoolBackend(
        graph if store is None else None,
        num_shards=args.shards,
        num_machines=args.machines,
        seed=args.seed,
        timeout_s=args.timeout_s,
        kernel=resolve_kernel(args.kernel),
        on_shard_failure="partial",
        store=store,
    )
    # cache_capacity=0: every ask re-executes, so the post-recovery
    # probe measures the healed pool, not a cache line.
    service = service_from_args(
        graph if store is None else pool.graph,
        config,
        args,
        max_batch_size=args.batch_size,
        max_delay_s=args.max_delay_ms / 1000.0,
        cache_capacity=0,
        backend=pool,
        store=None,
    )
    probes = [
        RankingQuery(seeds=(2 * i, 2 * i + 1), k=args.top_k)
        for i in range(min(args.batch_size, 4))
    ]
    leaked = -1
    try:
        service.start()
        golden = service.query_batch(probes)
        healthy_bound = config_error_bound(
            config, args.top_k, graph.num_vertices
        )

        population = UserPopulation(
            num_users=args.users,
            num_vertices=graph.num_vertices,
            seeds_per_user=args.seeds_per_user,
            k=args.top_k,
            seed=1,
        )
        workload = TrafficWorkload(
            population, PoissonArrivals(rate_qps=args.qps, seed=2), seed=3
        )
        # The delay parks the victim's *next* batch reply for longer
        # than the window to the kill, so the SIGKILL deterministically
        # lands mid-batch (work computed, reply withheld).
        schedule = ChaosSchedule(
            events=(
                ChaosEvent(
                    time_s=max(0.0, args.kill_at_s - 0.5),
                    kind="delay",
                    shard=args.kill_shard,
                    duration_s=args.timeout_s / 2.0,
                ),
                ChaosEvent(
                    time_s=args.kill_at_s,
                    kind="kill",
                    shard=args.kill_shard,
                ),
            )
        )
        injector = ChaosInjector(service, schedule)
        harness = TrafficHarness(service, workload)
        result = harness.run_threaded(
            args.duration_s,
            chaos=injector,
            result_timeout_s=max(60.0, 4 * args.timeout_s),
        )

        answers = result.answers()
        partial = [a for a in answers if a.partial]
        partial_with_bound = [
            a
            for a in partial
            if a.error_bound is not None and math.isfinite(a.error_bound)
        ]
        kill_elapsed = next(
            (t for t, e in result.chaos_fired if e.kind == "kill"), None
        )
        supervisor = pool.supervisor
        recovery_s = float("nan")
        if kill_elapsed is not None and supervisor.stats.respawn_log:
            kill_abs = (injector._start or 0.0) + kill_elapsed
            after = [
                stamp
                for stamp, _, _ in supervisor.stats.respawn_log
                if stamp >= kill_abs
            ]
            if after:
                recovery_s = after[0] - kill_abs

        # Let any straggling revival finish, then probe: the healed
        # pool must answer bitwise identically to the never-crashed
        # golden run (same shares, same per-shard seeds).
        supervisor.check()
        healed = service.query_batch(probes)
        post_recovery_bitwise = float(
            all(
                list(h.vertices) == list(g.vertices)
                and list(h.scores) == list(g.scores)
                and not h.partial
                for h, g in zip(healed, golden)
            )
        )

        # Accuracy of the partial answers against a healthy re-run of
        # the same queries (top-k overlap); capped to bound runtime.
        overlaps = []
        for answer in partial[:8]:
            healthy = service.query_batch([answer.query])[0]
            got = set(int(v) for v in answer.vertices)
            want = set(int(v) for v in healthy.vertices)
            overlaps.append(len(got & want) / max(1, len(want)))
        mean_overlap = (
            sum(overlaps) / len(overlaps) if overlaps else float("nan")
        )
        max_partial_bound = max(
            (a.error_bound for a in partial_with_bound), default=float("nan")
        )
        prefix = pool.arena_prefix
    finally:
        service.close()
        pool.close()
    leaked = len(SharedArena.list_segments(prefix))

    print(
        f"chaos run: {result.report.arrivals} arrivals over "
        f"{args.duration_s:g}s, SIGKILL on shard {args.kill_shard} at "
        f"t={args.kill_at_s:g}s"
    )
    print(f"  answers served          : {len(answers)}")
    print(f"  partial answers         : {len(partial)} "
          f"(with finite bound: {len(partial_with_bound)})")
    print(f"  healthy error bound     : {healthy_bound:.4f}")
    print(f"  max partial error bound : {max_partial_bound:.4f}")
    print(f"  partial top-k overlap   : {mean_overlap:.3f} "
          f"(vs healthy re-run, k={args.top_k})")
    print(f"  recovery time           : {recovery_s:.3f}s "
          f"(kill -> worker re-attached)")
    print(f"  crashes/respawns        : "
          f"{supervisor.stats.crashes_detected}/"
          f"{supervisor.stats.respawns}")
    print(f"  post-recovery bitwise   : {post_recovery_bitwise == 1.0}")
    print(f"  leaked shm segments     : {leaked}")
    if args.save_json:
        from .experiments import record_perf

        path = record_perf(
            "chaos-bench",
            {
                "arrivals": result.report.arrivals,
                "duration_s": args.duration_s,
                "kill_shard": args.kill_shard,
                "kill_at_s": args.kill_at_s,
                "answers": len(answers),
                "partial": len(partial),
                "partial_with_bound": len(partial_with_bound),
                "healthy_bound": healthy_bound,
                "max_partial_bound": max_partial_bound,
                "partial_topk_overlap": mean_overlap,
                "recovery_s": recovery_s,
                "crashes_detected": supervisor.stats.crashes_detected,
                "respawns": supervisor.stats.respawns,
                "post_recovery_bitwise": post_recovery_bitwise,
                "leaked_segments": leaked,
            },
            path=args.save_json,
        )
        print(f"perf record merged into {path}")
    return 0


def _cmd_chart(args) -> int:
    from .experiments import load_figure_json
    from .viz import figure_chart

    figure = load_figure_json(args.path)
    print(
        figure_chart(
            figure,
            x=args.x,
            y=args.y,
            kind=args.kind,
            log_x=args.log_x,
            log_y=args.log_y,
            width=args.width,
            height=args.height,
        )
    )
    return 0


_COMMANDS = {
    "figure": _cmd_figure,
    "run": _cmd_run,
    "info": _cmd_info,
    "ppr": _cmd_ppr,
    "adaptive": _cmd_adaptive,
    "track": _cmd_track,
    "faults": _cmd_faults,
    "serve-bench": _cmd_serve_bench,
    "live-bench": _cmd_live_bench,
    "traffic-bench": _cmd_traffic_bench,
    "chaos-bench": _cmd_chaos_bench,
    "chart": _cmd_chart,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces choices
        return 2
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
