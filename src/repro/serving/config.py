"""Typed construction config for :class:`~repro.serving.RankingService`.

``RankingService.__init__`` accreted well over a dozen keyword
arguments as the serving layer grew (backend layout, kernel tier,
cache sizing, admission, tracing, fail-soft policy, the graph store
seam...).  :class:`ServiceConfig` is the typed consolidation: one
frozen dataclass carrying every construction knob, built once and
handed to :meth:`~repro.serving.RankingService.from_config`.

The old kwargs keep working — ``__init__`` normalizes them into the
same dataclass (exposed as ``service.service_config``), so the two
construction paths are one path with two spellings; the equivalence is
pinned by ``tests/test_service_config.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids cycles
    from ..cluster import CostModel, MessageSizeModel
    from ..core import FrogWildConfig
    from ..store import GraphStore
    from ..traffic.admission import AdmissionController
    from ..traffic.trace import QueryTracer
    from .backend import ExecutionBackend

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every :class:`~repro.serving.RankingService` construction knob.

    Field semantics are documented on the service constructor; the
    dataclass only fixes their names, defaults and grouping.  Use
    :func:`dataclasses.replace` (or :meth:`evolve`) to derive variants
    and :meth:`to_kwargs` to feed the legacy kwargs path.
    """

    # Execution defaults
    config: "FrogWildConfig | None" = None
    num_machines: int = 16
    partitioner: str = "random"
    cost_model: "CostModel | None" = None
    size_model: "MessageSizeModel | None" = None
    seed: int | None = 0
    # Cluster layout
    backend: "ExecutionBackend | str | None" = None
    num_shards: int | None = 1
    kernel: str = "fused"
    on_shard_failure: str = "fail"
    # Storage tier
    store: "GraphStore | None" = None
    # Batching, caching, scheduling
    max_batch_size: int = 16
    cache_capacity: int = 256
    cache_ttl_s: float | None = None
    max_delay_s: float | None = None
    clock: Callable[[], float] | None = None
    generation: Callable[[], int] | None = None
    # Traffic integration
    admission: "AdmissionController | None" = field(
        default=None, repr=False
    )
    tracer: "QueryTracer | None" = field(default=None, repr=False)

    def to_kwargs(self) -> dict:
        """The equivalent keyword-argument mapping of this config.

        ``RankingService(graph, **cfg.to_kwargs())`` and
        ``RankingService.from_config(graph, cfg)`` build identical
        services — the mapping shim the one-release deprecation window
        of the kwargs path rides on.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def evolve(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)
