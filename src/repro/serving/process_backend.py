"""True multi-process execution: one OS process per shard sub-cluster.

:class:`ProcessPoolBackend` gives the :class:`ShardedBackend` fan-out a
real execution substrate: every shard runs in its own OS process (its
own interpreter, its own GIL), so "16 machines" can finally use 16
cores.  The layout, seeding and merge semantics are *inherited* from
:class:`ShardedBackend` — the parent builds the identical per-shard
ingress, splits frog budgets with the identical :meth:`_shares`, and
derives the identical per-shard seeds — so the merged counters are
bit-for-bit what the in-process sharded backend produces; only *where*
the traversals execute changes.

Three mechanisms make that cheap and honest:

* **Shared-memory graph state** — the graph CSR arrays and every
  shard's :class:`~repro.cluster.ReplicationTable` components live in
  :class:`~repro.cluster.SharedArena` segments.  Workers attach the
  picklable :class:`~repro.cluster.ArenaSpec` manifests and map the
  arrays zero-copy (``DiGraph.from_csr_arrays``,
  ``ReplicationTable.from_shared_components``); nothing
  edge-proportional is ever pickled.
* **A real transport** — per-lane ``(vertex, count)`` results return on
  a :class:`~repro.cluster.RecordChannel` whose frame layout is priced
  by the same :class:`~repro.cluster.MessageSizeModel` the simulator
  uses, and whose measured byte tallies must reconcile with that model
  (:meth:`transport_summary`).  Small control metadata (configs,
  reports, ledgers) travels on a separate pickled control pipe.
* **Epoch-tagged remapping** — a live refresh
  (:class:`~repro.live.BackgroundRefresher` publishes) calls
  :meth:`refresh` with the new snapshot's tables: fresh arenas are
  created under the next epoch tag, every worker attaches them *before*
  the old epoch is retired, and batches — serialized with refreshes on
  one lock — run wholly against a single epoch's arrays (no mid-batch
  tearing).

Worker protocol (control pipe, pickled tuples):

==============  =====================================================
parent sends    ``("attach", epoch, graph_spec, table_spec)``,
                ``("detach", epoch)``, ``("run", task, epoch, config,
                share, shard_seed, queries)``, ``("patch", task,
                epoch, snapshot_spec, seed)``, ``("ping", nonce)``,
                ``("chaos", kind, seconds)``, ``("stop",)``
worker replies  ``("attached", epoch)``, ``("detached", epoch)``,
                ``("result", task, payload)``, ``("error", task,
                repr, traceback)``, ``("pong", nonce)``,
                ``("stopped",)``
==============  =====================================================

Per-lane counter records flow on the data channel tagged with the task
id; the parent drains data and control concurrently (a worker blocked
on a full data pipe must never deadlock against a parent blocked on
the control pipe).  ``ping``/``pong`` is the
:class:`~repro.serving.WorkerSupervisor` heartbeat; ``chaos`` is the
fault-injection hook (:mod:`repro.traffic.chaos`): ``("chaos",
"hang", s)`` parks the worker's control loop for ``s`` seconds and
``("chaos", "delay", s)`` stalls its *next* batch reply — both
fire-and-forget, so the parent observes exactly what a silent or
mid-batch-dead worker looks like.

**Fail-soft execution.**  The paper's robustness claim — frogs are
anonymous and uniformly born, so losing a machine's walkers costs
~1/M accuracy, not a restart — holds on this real substrate too: a
shard's slice of a batch is just an independent sample of the frog
population.  When a worker dies (or times out) mid-batch,
``on_shard_failure`` picks the policy:

* ``"fail"`` (default) — the batch raises a typed
  :class:`~repro.errors.ShardFailure`, but only *after* the pool is
  restored (dead worker respawned and re-attached), so the next batch
  runs healthy;
* ``"partial"`` — the surviving shards' lanes merge through the
  normal exact path; the estimator automatically rescales to the
  surviving frog count (:meth:`~repro.core.PageRankEstimate.merge`
  sums ``num_frogs``), and the outcome carries ``degraded_shards`` /
  ``lost_frogs`` so the service can attach the widened Theorem-1
  bound;
* ``"retry"`` — the respawned worker re-runs the lost slice (same
  share, same per-shard seed, so a successful retry is bitwise
  identical to a never-crashed batch), with exponential backoff and a
  per-batch ``retry_budget``; exhausted budgets fall back to partial
  merging when survivors exist.

A worker found dead at *dispatch* (before its slice started) is
respawned and re-sent once for free under every policy — no frogs
were lost yet.  Liveness between batches is the
:class:`~repro.serving.WorkerSupervisor`'s job (``ping`` heartbeats,
respawn with backoff, orphaned-segment sweeps).
"""

from __future__ import annotations

import multiprocessing as mp
import secrets
import threading
import time
import traceback
from collections import deque
from typing import Sequence

import numpy as np

from ..cluster import (
    CostModel,
    EdgePartition,
    MessageSizeModel,
    RecordChannel,
    ReplicationTable,
    SharedArena,
    TransportTally,
)
from ..core import (
    BatchQuery,
    FrogWildConfig,
    PageRankEstimate,
    merge_shard_results,
    run_frogwild_batch,
    seed_distribution,
)
from ..core.frogwild import FrogWildResult, prime_ingress_caches
from ..engine import build_cluster
from ..errors import ConfigError, EngineError, ShardFailure, WorkerCrashError
from ..graph import DiGraph
from .backend import BatchOutcome, QueryOutcome, ShardCost, ShardedBackend
from .batching import RankingQuery
from .supervisor import WorkerSupervisor

__all__ = ["ProcessPoolBackend"]


def _worker_main(
    control,
    data,
    shard: int,
    machines_per_shard: int,
    cost_model,
    size_model,
    seed,
    kernel: str,
) -> None:
    """One shard worker: attach epochs, run batch slices, ship records."""
    channel = RecordChannel(data, size_model)
    epochs: dict[int, tuple[DiGraph, ReplicationTable, tuple]] = {}
    # Master-selection noise is deterministic in (n, machines, seed)
    # for integer seeds, so one draw serves every patch this worker
    # ever computes — the same cache IncrementalReplication keeps.
    noise_cache: dict[tuple[int, int, int], np.ndarray] = {}
    # One-shot chaos injection: stall the next batch reply this long.
    reply_delay_s = 0.0
    while True:
        try:
            message = control.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        try:
            if op == "attach":
                _, epoch, graph_spec, table_spec = message
                graph_arena = SharedArena.attach(graph_spec)
                table_arena = SharedArena.attach(table_spec)
                graph = DiGraph.from_csr_arrays(graph_arena.arrays)
                table = ReplicationTable.from_shared_components(
                    graph, table_arena.arrays
                )
                # Warm the kernel tables once per epoch, off the batch
                # path — exactly what the live refresher does for the
                # in-process backends.
                prime_ingress_caches(table, graph)
                epochs[epoch] = (graph, table, (graph_arena, table_arena))
                control.send(("attached", epoch))
            elif op == "detach":
                _, epoch = message
                entry = epochs.pop(epoch, None)
                if entry is not None:
                    for arena in entry[2]:
                        arena.close()
                control.send(("detached", epoch))
            elif op == "run":
                _, task, epoch, config, share, shard_seed, queries = message
                graph, table, _ = epochs[epoch]
                distributions = [
                    seed_distribution(
                        graph.num_vertices,
                        np.asarray(seeds, dtype=np.int64),
                        None
                        if weights is None
                        else np.asarray(weights, dtype=np.float64),
                    )
                    for seeds, weights in queries
                ]
                state = build_cluster(
                    graph,
                    machines_per_shard,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    replication=table,
                )
                result = run_frogwild_batch(
                    graph,
                    [
                        BatchQuery(
                            num_frogs=share,
                            start_distribution=distribution,
                            seed=shard_seed,
                        )
                        for distribution in distributions
                    ],
                    config,
                    state=state,
                    kernel=kernel,
                )
                if reply_delay_s > 0.0:
                    # Injected chaos: the slice is computed but nothing
                    # ships yet — from the parent's view this worker is
                    # mid-batch and silent, the deterministic window
                    # for landing a SIGKILL mid-flight.
                    time.sleep(reply_delay_s)
                    reply_delay_s = 0.0
                lanes = []
                for lane in result.results:
                    counts = lane.estimate.counts
                    stops = np.flatnonzero(counts)
                    channel.send_records(
                        "result", stops, counts[stops], tag=task
                    )
                    lanes.append(
                        (lane.estimate.num_frogs, lane.report, lane.ledger)
                    )
                control.send(
                    (
                        "result",
                        task,
                        {
                            "lanes": lanes,
                            "shared_network_bytes": (
                                result.report.network_bytes
                            ),
                            "attributed_network_bytes": (
                                result.attributed_network_bytes()
                            ),
                            "cpu_seconds": sum(
                                lane.report.cpu_seconds
                                for lane in result.results
                            ),
                            "simulated_time_s": result.report.total_time_s,
                            "sent": channel.sent,
                        },
                    )
                )
                # The payload carried this batch's tally (pickled at
                # send time); start the next batch's delta fresh so the
                # parent's merge never double-counts.
                channel.sent = TransportTally()
            elif op == "patch":
                _, task, epoch, snapshot_spec, patch_seed = message
                _, old_table, _ = epochs[epoch]
                snapshot_arena = SharedArena.attach(snapshot_spec)
                try:
                    arrays = snapshot_arena.arrays
                    snapshot = DiGraph.from_csr_arrays(arrays)
                    partition = EdgePartition(
                        arrays[f"edge_machine.{shard}"],
                        machines_per_shard,
                    )
                    changed = arrays[f"changed.{shard}"]
                    key = (
                        snapshot.num_vertices,
                        machines_per_shard,
                        patch_seed,
                    )
                    noise = noise_cache.get(key)
                    if noise is None:
                        noise = ReplicationTable.master_noise(*key)
                        noise_cache[key] = noise
                    patched = old_table.patched(
                        snapshot, partition, changed, noise
                    )
                    # Components are fresh arrays (the patch splices
                    # into new buffers), so pickling them back on the
                    # control pipe is safe; this is the off-query-path
                    # refresh pipeline, not the batch path, so the
                    # pickle cost is acceptable.
                    control.send(
                        ("result", task, patched.shared_components())
                    )
                finally:
                    snapshot_arena.close()
            elif op == "ping":
                # Supervisor heartbeat: echo the nonce so the parent
                # can tell a live loop from a buffered stale reply.
                control.send(("pong",) + tuple(message[1:]))
            elif op == "chaos":
                # Fault injection (fire-and-forget, test/bench only).
                _, kind, seconds = message
                if kind == "hang":
                    time.sleep(float(seconds))
                elif kind == "delay":
                    reply_delay_s = float(seconds)
            elif op == "stop":
                for _, _, arenas in epochs.values():
                    for arena in arenas:
                        arena.close()
                control.send(("stopped",))
                return
            else:
                control.send(("error", None, f"unknown op {op!r}", ""))
        except (EOFError, OSError, KeyboardInterrupt):
            return
        except BaseException as error:  # surfaced to the parent
            task = message[1] if len(message) > 1 else None
            try:
                control.send(
                    ("error", task, repr(error), traceback.format_exc())
                )
            except (OSError, ValueError):
                return


class _Worker:
    """Parent-side handle of one shard process."""

    __slots__ = ("shard", "process", "control", "channel")

    def __init__(self, shard, process, control, channel) -> None:
        self.shard = shard
        self.process = process
        self.control = control
        self.channel = channel


class ProcessPoolBackend(ShardedBackend):
    """Shard fan-out on OS processes over shared-memory graph state.

    Construction mirrors :class:`ShardedBackend` (same layout, same
    per-shard seeds, same tables — built once in the parent), then
    exports the graph and each shard's table into shared memory and
    spawns one worker process per shard.  ``run_batch`` fans each
    query's frog budget out exactly as the in-process backend does and
    merges the returned lanes through the same
    :func:`~repro.core.batched.merge_shard_results` /
    ``CostLedger.merge`` machinery, so results and cost attribution are
    identical — only wall-clock parallelism differs.  The ``kernel=``
    tier (``"fused"`` default, ``"lane-loop"`` reference, or the Numba
    ``"compiled"`` tier from :mod:`repro.core.kernels`) is forwarded to
    every worker; workers on Numba-less hosts apply the same
    warn-once fused fallback, so a mixed fleet still returns bitwise
    identical counters.

    Extra parameters on top of :class:`ShardedBackend`:

    ``start_method``
        ``multiprocessing`` start method; default prefers ``fork``
        (instant start, Linux) and falls back to the platform default.
        The worker entry point is spawn-safe either way.
    ``timeout_s``
        Per-operation ceiling on worker replies; a silent worker is
        treated exactly like a dead one
        (:class:`~repro.errors.WorkerCrashError` internally, policy
        below externally).
    ``on_shard_failure``
        What a batch does when a worker dies or times out mid-flight:
        ``"fail"`` (default) raises a typed
        :class:`~repro.errors.ShardFailure` *after* restoring the
        pool; ``"partial"`` merges the surviving shards and annotates
        the outcome (``degraded_shards``/``lost_frogs``) so answers
        carry a widened Theorem-1 bound; ``"retry"`` re-runs the lost
        slice on the respawned worker (bitwise identical on success —
        same share, same per-shard seed).
    ``retry_budget`` / ``retry_backoff_s``
        Retry policy: at most ``retry_budget`` re-runs per shard per
        batch, sleeping ``retry_backoff_s * 2**attempt`` between
        them; an exhausted budget falls back to partial merging when
        survivors exist.
    ``heartbeat_s``
        When set, the attached :class:`~repro.serving.WorkerSupervisor`
        runs background liveness checks every ``heartbeat_s`` seconds
        (ping/pong on the control pipes), respawning dead workers
        *between* batches instead of on the next batch's critical
        path.  ``None`` (default) leaves the supervisor passive — it
        still handles in-batch revivals and explicit
        ``supervisor.check()`` calls.

    Use :meth:`close` (or a ``with`` block) to tear down workers and
    unlink the shared segments.  All of this pool's segments live
    under a random per-instance name prefix (``arena_prefix``), so
    ``close`` — and every supervisor respawn — can sweep segments
    orphaned by crashed workers without touching other pools
    (:meth:`~repro.cluster.SharedArena.sweep_orphans`).
    """

    def __init__(
        self,
        graph: DiGraph | None = None,
        num_shards: int | None = 4,
        machines_per_shard: int | None = None,
        num_machines: int | None = None,
        partitioner: str = "random",
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        num_frogs: int | None = None,
        replications: Sequence[ReplicationTable] | None = None,
        kernel: str = "fused",
        start_method: str | None = None,
        timeout_s: float = 120.0,
        on_shard_failure: str = "fail",
        retry_budget: int = 2,
        retry_backoff_s: float = 0.05,
        heartbeat_s: float | None = None,
        store=None,
    ) -> None:
        # ``store=`` rides the ShardedBackend seam: results stay
        # bitwise identical, but publishing an epoch *copies* the
        # (possibly mapped) tables into shared memory, so the RSS-bound
        # guarantee of the out-of-core tier is the in-process backends'
        # — this backend trades residency back for process parallelism.
        super().__init__(
            graph,
            num_shards=num_shards,
            machines_per_shard=machines_per_shard,
            num_machines=num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            num_frogs=num_frogs,
            replications=replications,
            kernel=kernel,
            store=store,
        )
        if on_shard_failure not in ("fail", "partial", "retry"):
            raise ConfigError(
                f"unknown on_shard_failure {on_shard_failure!r}: "
                "expected 'fail', 'partial' or 'retry'"
            )
        if retry_budget < 0:
            raise ConfigError("retry_budget must be non-negative")
        if retry_backoff_s < 0:
            raise ConfigError("retry_backoff_s must be non-negative")
        self.timeout_s = timeout_s
        self.on_shard_failure = on_shard_failure
        self.retry_budget = retry_budget
        self.retry_backoff_s = retry_backoff_s
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else mp.get_start_method()
            )
        self._context = mp.get_context(start_method)
        # One lock serializes batches and refreshes: a batch runs
        # wholly against one epoch's arenas, and a refresh never remaps
        # under a batch in flight.
        self._lock = threading.Lock()
        self._epoch = 0
        self._task_counter = 0
        #: Per-instance segment namespace: every arena this pool ever
        #: creates is named under it, which is what makes the orphan
        #: sweep (close / supervisor respawn) safe to scope.
        self.arena_prefix = f"repro-arena-{secrets.token_hex(4)}"
        self._arenas: dict[int, list[SharedArena]] = {}
        self._workers: list[_Worker] = []
        #: Parent-side receive tallies plus worker-side send tallies of
        #: everything this backend moved over its record channels.
        self.transport_received = TransportTally()
        self.transport_sent = TransportTally()
        self._closed = False
        #: Worker lifecycle guardian: in-batch revivals always go
        #: through it; ``heartbeat_s`` additionally runs its periodic
        #: between-batch liveness checks on a daemon thread.
        self.supervisor = WorkerSupervisor(self, heartbeat_s=heartbeat_s)
        try:
            self._publish_epoch(self._epoch, self.graph, self.replications)
            self._spawn_workers()
            self._attach_all(self._epoch)
            if heartbeat_s is not None:
                self.supervisor.start()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker/arena lifecycle
    # ------------------------------------------------------------------
    def _publish_epoch(
        self,
        epoch: int,
        graph: DiGraph,
        replications: Sequence[ReplicationTable],
    ) -> None:
        """Materialize one epoch's shared arenas (graph + per-shard)."""
        arenas = [
            SharedArena.create(
                graph.csr_components(), epoch=epoch, prefix=self.arena_prefix
            )
        ]
        for table in replications:
            arenas.append(
                SharedArena.create(
                    table.shared_components(),
                    epoch=epoch,
                    prefix=self.arena_prefix,
                )
            )
        self._arenas[epoch] = arenas

    def _live_segment_names(self) -> frozenset[str]:
        """Names of every segment this pool still owns (sweep keep-set)."""
        return frozenset(
            arena.spec.name
            for arenas in self._arenas.values()
            for arena in arenas
        )

    def _spawn_worker(self, shard: int) -> _Worker:
        """Start one shard's worker process with fresh pipes."""
        control_parent, control_child = self._context.Pipe(duplex=True)
        data_parent, data_child = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(
                control_child,
                data_child,
                shard,
                self.machines_per_shard,
                self.cost_model,
                self.size_model,
                self.seed,
                self.kernel,
            ),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        control_child.close()
        data_child.close()
        return _Worker(
            shard,
            process,
            control_parent,
            RecordChannel(data_parent, self.size_model),
        )

    def _spawn_workers(self) -> None:
        for shard in range(self.num_shards):
            self._workers.append(self._spawn_worker(shard))

    def _control_reply(
        self, worker: _Worker, expected: str, timeout_s: float | None = None
    ):
        """Await one control message of ``expected`` kind from a worker.

        Liveness and the deadline are checked on *every* iteration —
        including after an unexpected message — so a worker streaming
        junk (or a stale-reply flood) stalls the parent for at most
        ``timeout_s``, never forever.
        """
        budget = self.timeout_s if timeout_s is None else timeout_s
        deadline = time.monotonic() + budget
        while True:
            if worker.control.poll(0.05):
                try:
                    message = worker.control.recv()
                except (EOFError, OSError) as error:
                    raise WorkerCrashError(
                        f"shard {worker.shard} worker hung up awaiting "
                        f"{expected}",
                        shard=worker.shard,
                        epoch=self._epoch,
                        cause="died",
                    ) from error
                if message[0] == "error":
                    _, _, error, trace = message
                    raise EngineError(
                        f"shard {worker.shard} worker failed: {error}\n"
                        f"{trace}"
                    )
                if message[0] == expected:
                    return message
                # Unexpected kind (stale pong, junk): fall through to
                # the liveness/deadline checks below.
            if not worker.process.is_alive():
                raise WorkerCrashError(
                    f"shard {worker.shard} worker died awaiting "
                    f"{expected}",
                    shard=worker.shard,
                    epoch=self._epoch,
                    cause="died",
                )
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"shard {worker.shard} worker timed out awaiting "
                    f"{expected}",
                    shard=worker.shard,
                    epoch=self._epoch,
                    cause="timeout",
                )

    def _attach_worker(self, worker: _Worker, epoch: int) -> None:
        """One worker's attach handshake for ``epoch`` (send + await)."""
        arenas = self._arenas[epoch]
        try:
            worker.control.send(
                (
                    "attach",
                    epoch,
                    arenas[0].spec,
                    arenas[1 + worker.shard].spec,
                )
            )
        except (OSError, ValueError) as error:
            raise WorkerCrashError(
                f"shard {worker.shard} worker unreachable for attach: "
                f"{error}",
                shard=worker.shard,
                epoch=epoch,
                cause="pipe",
            ) from error
        self._control_reply(worker, "attached")

    def _attach_all(self, epoch: int) -> None:
        graph_spec = self._arenas[epoch][0].spec
        for worker in self._workers:
            worker.control.send(
                (
                    "attach",
                    epoch,
                    graph_spec,
                    self._arenas[epoch][1 + worker.shard].spec,
                )
            )
        for worker in self._workers:
            self._control_reply(worker, "attached")

    def refresh(
        self,
        graph: DiGraph,
        replications: Sequence[ReplicationTable],
        epoch: int | None = None,
    ) -> "ProcessPoolBackend":
        """Remap every worker onto a refreshed snapshot's tables.

        The epoch-tagged handshake of a live publish: new arenas are
        created under the next epoch tag, all workers attach them, and
        only then is the previous epoch detached and unlinked.  Batches
        serialize with this on the backend lock, so every batch runs
        against exactly one epoch's arrays.
        """
        if len(replications) != self.num_shards:
            raise ConfigError(
                f"{len(replications)} replication tables supplied for "
                f"{self.num_shards} shards"
            )
        for shard, table in enumerate(replications):
            if table.num_machines != self.machines_per_shard:
                raise ConfigError(
                    f"shard {shard} replication targets "
                    f"{table.num_machines} machines, expected "
                    f"{self.machines_per_shard}"
                )
            if table.graph.num_vertices != graph.num_vertices:
                raise ConfigError(
                    f"shard {shard} replication was built for a "
                    "different graph"
                )
        with self._lock:
            old_epoch = self._epoch
            new_epoch = epoch if epoch is not None else old_epoch + 1
            if new_epoch <= old_epoch:
                raise ConfigError(
                    f"refresh epoch must advance: {new_epoch} <= "
                    f"{old_epoch}"
                )
            self._publish_epoch(new_epoch, graph, replications)
            try:
                self._attach_all(new_epoch)
            except BaseException:
                for arena in self._arenas.pop(new_epoch, []):
                    arena.destroy()
                raise
            self._epoch = new_epoch
            self.graph = graph
            self.replications = list(replications)
            for worker in self._workers:
                worker.control.send(("detach", old_epoch))
            for worker in self._workers:
                self._control_reply(worker, "detached")
            for arena in self._arenas.pop(old_epoch, []):
                arena.destroy()
        return self

    def patch_tables(
        self,
        snapshot: DiGraph,
        plans: Sequence,
        seed: int | None = None,
    ) -> list[ReplicationTable | None]:
        """Compute per-shard table patches on the shard workers.

        The parallel half of the incremental-refresh pipeline: each
        worker already holds (a structurally-equal mapped copy of) its
        shard's current table, so the parent ships only the *new*
        snapshot — one temporary :class:`SharedArena` with the CSR
        arrays plus each patched shard's ``edge_machine`` and changed
        vertices — and every shard splices its own
        :meth:`~repro.cluster.ReplicationTable.patched` table
        concurrently on its own core.  ``plans`` aligns with shards
        (one :class:`~repro.live.RefreshPlan`-shaped object each, duck
        typed to avoid a serving→live import cycle); ``full`` plans
        are skipped and come back ``None`` — rebuilds are not patches.
        Master equivalence with a local patch relies on the
        deterministic noise stream, hence the integer-seed
        requirement.

        Returns one patched table (rebuilt in the parent from the
        workers' components, structurally equal to what the serial
        path would compute) or ``None`` per shard.
        """
        if self._closed:
            raise EngineError("backend is closed")
        if len(plans) != self.num_shards:
            raise ConfigError(
                f"{len(plans)} refresh plans supplied for "
                f"{self.num_shards} shards"
            )
        if seed is None:
            seed = self.seed
        if seed is None:
            raise ConfigError(
                "patch_tables needs an integer seed: remote patches "
                "must re-derive the same master noise as the "
                "maintainer's cached draw"
            )
        arrays = dict(snapshot.csr_components())
        jobs: list[_Worker] = []
        for worker, plan in zip(self._workers, plans):
            if plan.full:
                continue
            arrays[f"edge_machine.{worker.shard}"] = (
                plan.partition.edge_machine
            )
            arrays[f"changed.{worker.shard}"] = np.asarray(
                plan.changed, dtype=np.int64
            )
            jobs.append(worker)
        tables: list[ReplicationTable | None] = [None] * self.num_shards
        if not jobs:
            return tables
        with self._lock:
            self._task_counter += 1
            task = self._task_counter
            arena = SharedArena.create(
                arrays, epoch=self._epoch, prefix=self.arena_prefix
            )
            try:
                for worker in jobs:
                    worker.control.send(
                        ("patch", task, self._epoch, arena.spec, seed)
                    )
                for worker in jobs:
                    message = self._control_reply(worker, "result")
                    if message[1] != task:
                        raise EngineError(
                            f"shard {worker.shard} answered task "
                            f"{message[1]}, expected {task}"
                        )
                    tables[worker.shard] = (
                        ReplicationTable.from_shared_components(
                            snapshot, message[2]
                        )
                    )
            finally:
                arena.destroy()
        return tables

    def close(self) -> None:
        """Stop workers, close pipes and unlink every shared segment.

        Hardened against crashed and hung workers: a worker that
        ignores ``stop`` is terminated, pipe teardown failures are
        swallowed, every arena is destroyed regardless, and the pool's
        name prefix is swept afterwards — a worker kill can no longer
        leak ``/dev/shm`` segments past close.
        """
        if self._closed:
            return
        self._closed = True
        self.supervisor.stop()
        for worker in self._workers:
            try:
                worker.control.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.control.close()
            except OSError:
                pass
            try:
                worker.channel.close()
            except OSError:
                pass
        self._workers = []
        for arenas in self._arenas.values():
            for arena in arenas:
                try:
                    arena.destroy()
                except OSError:
                    pass
        self._arenas = {}
        SharedArena.sweep_orphans(self.arena_prefix)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _collect(
        self, worker: _Worker, task: int, num_lanes: int
    ) -> tuple[dict, list[np.ndarray]]:
        """Drain one worker's lane frames and control result for ``task``.

        Data and control are polled together: a worker blocked sending
        a large frame unblocks as soon as the parent drains it, and an
        error raised mid-task surfaces instead of deadlocking.  Frames
        tagged with an older (failed) task are discarded — and do
        *not* count as progress: only this task's frames and result
        reset the inactivity deadline, so a stale-task flood stalls
        the parent for at most ``timeout_s``.  The liveness/deadline
        checks run on every non-progressing iteration; a worker that
        died *after* flushing its reply still answers the batch (the
        buffered pipes are drained before the death is ruled on).
        """
        frames: list[np.ndarray] = []
        payload: dict | None = None
        counts_template = np.zeros(self.graph.num_vertices, dtype=np.int64)
        deadline = time.monotonic() + self.timeout_s
        # A dead worker's pipe polls readable at EOF; the recv then
        # raises.  Each pipe is retired individually on EOF so replies
        # still buffered on the *other* pipe can be drained.
        channel_open = True
        control_open = True
        while payload is None or len(frames) < num_lanes:
            progressed = False
            if channel_open and worker.channel.poll(
                0.0 if payload is None else 0.05
            ):
                try:
                    kind, tag, stops, stop_counts = (
                        worker.channel.recv_records()
                    )
                except (EOFError, OSError):
                    channel_open = False
                else:
                    if tag == task and kind == "result":
                        progressed = True
                        counts = counts_template.copy()
                        counts[stops] = stop_counts
                        frames.append(counts)
            if (
                payload is None
                and control_open
                and worker.control.poll(0.05)
            ):
                try:
                    message = worker.control.recv()
                except (EOFError, OSError):
                    control_open = False
                else:
                    if message[0] == "error":
                        _, _, error, trace = message
                        raise EngineError(
                            f"shard {worker.shard} batch failed: "
                            f"{error}\n{trace}"
                        )
                    if message[0] == "result" and message[1] == task:
                        progressed = True
                        payload = message[2]
            if progressed:
                deadline = time.monotonic() + self.timeout_s
                continue
            if not worker.process.is_alive():
                if (channel_open and worker.channel.poll(0.0)) or (
                    control_open and worker.control.poll(0.0)
                ):
                    # Dead, but replies are still buffered: keep
                    # draining — a fully flushed result counts.
                    continue
                raise WorkerCrashError(
                    f"shard {worker.shard} worker died mid-batch",
                    shard=worker.shard,
                    epoch=self._epoch,
                    cause="died",
                )
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"shard {worker.shard} worker timed out mid-batch",
                    shard=worker.shard,
                    epoch=self._epoch,
                    cause="timeout",
                )
        return payload, frames

    def _send_run(
        self,
        shard: int,
        task: int,
        config: FrogWildConfig,
        share: int,
        query_specs: list,
    ) -> None:
        """Dispatch one shard's slice; pipe failures become typed."""
        worker = self._workers[shard]
        try:
            worker.control.send(
                (
                    "run",
                    task,
                    self._epoch,
                    config,
                    share,
                    self._shard_seed(config.seed, shard),
                    query_specs,
                )
            )
        except (OSError, ValueError) as error:
            raise WorkerCrashError(
                f"shard {shard} worker unreachable at dispatch: {error}",
                shard=shard,
                epoch=self._epoch,
                cause="pipe",
            ) from error

    def _recover_shard(self, shard: int, cause: str) -> bool:
        """Respawn one worker via the supervisor (lock held); False on
        a failed respawn — the shard is then lost for this batch and
        the slot keeps its dead handle for the next attempt."""
        try:
            self.supervisor.revive_locked(shard, cause=cause)
        except EngineError:
            return False
        return True

    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        if self._closed:
            raise EngineError("backend is closed")
        if not queries:
            return BatchOutcome(
                lanes=(), shared_network_bytes=0, simulated_time_s=0.0
            )
        query_specs = [
            (
                tuple(query.seeds),
                None if query.weights is None else tuple(query.weights),
            )
            for query in queries
        ]
        with self._lock:
            self._task_counter += 1
            task = self._task_counter
            shares = self._shares(config.num_frogs)
            # Dispatch phase.  A worker found dead *here* lost no work:
            # respawn and re-send once for free under every policy.
            pending: deque[tuple[int, int]] = deque()
            failures: dict[int, tuple[int, WorkerCrashError]] = {}
            for shard, share in enumerate(shares):
                if share == 0:
                    continue
                try:
                    self._send_run(shard, task, config, share, query_specs)
                except WorkerCrashError as error:
                    if not self._recover_shard(shard, error.cause):
                        failures[shard] = (share, error)
                        continue
                    try:
                        self._send_run(
                            shard, task, config, share, query_specs
                        )
                    except WorkerCrashError as again:
                        failures[shard] = (share, again)
                        continue
                pending.append((shard, share))
            # Collect phase.  A shard lost mid-flight is always revived
            # (the pool never stays wedged); what happens to its slice
            # is the failure policy's call.
            results: dict[int, tuple[int, dict, list[np.ndarray]]] = {}
            retries: dict[int, int] = {}
            while pending:
                shard, share = pending.popleft()
                worker = self._workers[shard]
                try:
                    payload, frames = self._collect(
                        worker, task, len(queries)
                    )
                except WorkerCrashError as error:
                    revived = self._recover_shard(shard, error.cause)
                    attempt = retries.get(shard, 0)
                    if (
                        revived
                        and self.on_shard_failure == "retry"
                        and attempt < self.retry_budget
                    ):
                        retries[shard] = attempt + 1
                        time.sleep(self.retry_backoff_s * (2.0**attempt))
                        try:
                            self._send_run(
                                shard, task, config, share, query_specs
                            )
                        except WorkerCrashError as again:
                            failures[shard] = (share, again)
                        else:
                            pending.append((shard, share))
                        continue
                    failures[shard] = (share, error)
                    continue
                self.supervisor.note_healthy_locked(shard)
                results[shard] = (share, payload, frames)
            lost_frogs = sum(share for share, _ in failures.values())
            if failures:
                first_shard = min(failures)
                first = failures[first_shard][1]
                detail = "; ".join(
                    f"shard {shard}: {error.cause}"
                    for shard, (_, error) in sorted(failures.items())
                )
                if self.on_shard_failure == "fail" or not results:
                    raise ShardFailure(
                        f"batch lost {lost_frogs} of {config.num_frogs} "
                        f"frogs ({detail}); pool restored",
                        shard=first_shard,
                        epoch=self._epoch,
                        cause=first.cause,
                        lost_frogs=lost_frogs,
                    ) from first
            per_query_lanes: list[list[FrogWildResult]] = [
                [] for _ in queries
            ]
            shard_costs: list[ShardCost] = []
            for shard in sorted(results):
                share, payload, frames = results[shard]
                worker = self._workers[shard]
                for lanes, counts, (num_frogs, report, ledger) in zip(
                    per_query_lanes, frames, payload["lanes"]
                ):
                    lanes.append(
                        FrogWildResult(
                            estimate=PageRankEstimate(counts, num_frogs),
                            report=report,
                            state=None,
                            ledger=ledger,
                        )
                    )
                self.transport_sent.merge(payload["sent"])
                self.transport_received.merge(worker.channel.received)
                worker.channel.received = TransportTally()
                shard_costs.append(
                    ShardCost(
                        shard=shard,
                        num_machines=self.machines_per_shard,
                        shared_network_bytes=payload[
                            "shared_network_bytes"
                        ],
                        attributed_network_bytes=payload[
                            "attributed_network_bytes"
                        ],
                        cpu_seconds=payload["cpu_seconds"],
                        simulated_time_s=payload["simulated_time_s"],
                    )
                )
        # Partial merging is the paper's claim made operational: the
        # surviving shards' counters merge through the normal exact
        # path, and the merged estimate's num_frogs automatically
        # drops to the surviving population — the estimator rescales
        # itself, the batch just carries a wider sampling bound.
        merged = [merge_shard_results(lanes) for lanes in per_query_lanes]
        return BatchOutcome(
            lanes=tuple(
                QueryOutcome(lane.estimate, lane.report) for lane in merged
            ),
            shared_network_bytes=sum(
                cost.shared_network_bytes for cost in shard_costs
            ),
            simulated_time_s=max(
                (cost.simulated_time_s for cost in shard_costs),
                default=0.0,
            ),
            shards=tuple(shard_costs),
            degraded_shards=tuple(sorted(failures)),
            lost_frogs=lost_frogs,
        )

    # ------------------------------------------------------------------
    # Fault injection (repro.traffic.chaos)
    # ------------------------------------------------------------------
    def worker_pid(self, shard: int) -> int:
        """OS pid of one shard's *current* worker (for chaos kills)."""
        return self._workers[shard].process.pid

    def inject_chaos(
        self, shard: int, kind: str, duration_s: float = 0.0
    ) -> None:
        """Deliver one fault-injection op to a worker (fire-and-forget).

        ``"hang"`` parks the worker's control loop for ``duration_s``
        (the parent sees a silent worker — the timeout path);
        ``"delay"`` stalls the worker's *next* batch reply by
        ``duration_s`` (the parent sees a worker mid-batch and quiet —
        the deterministic window for landing a SIGKILL mid-flight).
        Killing the process itself is an OS matter, not a protocol op:
        ``os.kill(backend.worker_pid(shard), SIGKILL)`` — which is
        what :class:`repro.traffic.ChaosInjector` does.  Serialized
        with batches on the backend lock, so the op lands between
        batches, never interleaved into one.
        """
        if kind not in ("hang", "delay"):
            raise ConfigError(
                f"unknown chaos op {kind!r}: expected 'hang' or 'delay'"
            )
        if duration_s < 0:
            raise ConfigError("duration_s must be non-negative")
        if self._closed:
            raise EngineError("backend is closed")
        with self._lock:
            self._workers[shard].control.send(
                ("chaos", kind, float(duration_s))
            )

    # ------------------------------------------------------------------
    # Transport accounting
    # ------------------------------------------------------------------
    def transport_summary(self) -> dict[str, float]:
        """Measured-vs-model byte accounting of the record transport.

        ``reconciles`` is 1.0 when both directions' measured bytes
        equal the :class:`MessageSizeModel` pricing of the same record
        traffic (plus the real header of any empty frame) *and* the
        parent received byte-for-byte what workers sent.
        """
        size_model = self.size_model or MessageSizeModel()
        sent, received = self.transport_sent, self.transport_received
        reconciles = (
            sent.reconciles(size_model)
            and received.reconciles(size_model)
            and sent.measured_bytes == received.measured_bytes
            and sent.records == received.records
        )
        summary = {f"sent_{k}": v for k, v in sent.as_dict().items()}
        summary.update(
            {f"received_{k}": v for k, v in received.as_dict().items()}
        )
        summary["reconciles"] = float(reconciles)
        return summary
