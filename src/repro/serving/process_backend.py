"""True multi-process execution: one OS process per shard sub-cluster.

:class:`ProcessPoolBackend` gives the :class:`ShardedBackend` fan-out a
real execution substrate: every shard runs in its own OS process (its
own interpreter, its own GIL), so "16 machines" can finally use 16
cores.  The layout, seeding and merge semantics are *inherited* from
:class:`ShardedBackend` — the parent builds the identical per-shard
ingress, splits frog budgets with the identical :meth:`_shares`, and
derives the identical per-shard seeds — so the merged counters are
bit-for-bit what the in-process sharded backend produces; only *where*
the traversals execute changes.

Three mechanisms make that cheap and honest:

* **Shared-memory graph state** — the graph CSR arrays and every
  shard's :class:`~repro.cluster.ReplicationTable` components live in
  :class:`~repro.cluster.SharedArena` segments.  Workers attach the
  picklable :class:`~repro.cluster.ArenaSpec` manifests and map the
  arrays zero-copy (``DiGraph.from_csr_arrays``,
  ``ReplicationTable.from_shared_components``); nothing
  edge-proportional is ever pickled.
* **A real transport** — per-lane ``(vertex, count)`` results return on
  a :class:`~repro.cluster.RecordChannel` whose frame layout is priced
  by the same :class:`~repro.cluster.MessageSizeModel` the simulator
  uses, and whose measured byte tallies must reconcile with that model
  (:meth:`transport_summary`).  Small control metadata (configs,
  reports, ledgers) travels on a separate pickled control pipe.
* **Epoch-tagged remapping** — a live refresh
  (:class:`~repro.live.BackgroundRefresher` publishes) calls
  :meth:`refresh` with the new snapshot's tables: fresh arenas are
  created under the next epoch tag, every worker attaches them *before*
  the old epoch is retired, and batches — serialized with refreshes on
  one lock — run wholly against a single epoch's arrays (no mid-batch
  tearing).

Worker protocol (control pipe, pickled tuples):

==============  =====================================================
parent sends    ``("attach", epoch, graph_spec, table_spec)``,
                ``("detach", epoch)``, ``("run", task, epoch, config,
                share, shard_seed, queries)``, ``("patch", task,
                epoch, snapshot_spec, seed)``, ``("stop",)``
worker replies  ``("attached", epoch)``, ``("detached", epoch)``,
                ``("result", task, payload)``, ``("error", task,
                repr, traceback)``, ``("stopped",)``
==============  =====================================================

Per-lane counter records flow on the data channel tagged with the task
id; the parent drains data and control concurrently (a worker blocked
on a full data pipe must never deadlock against a parent blocked on
the control pipe).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
from typing import Sequence

import numpy as np

from ..cluster import (
    CostModel,
    EdgePartition,
    MessageSizeModel,
    RecordChannel,
    ReplicationTable,
    SharedArena,
    TransportTally,
)
from ..core import (
    BatchQuery,
    FrogWildConfig,
    PageRankEstimate,
    merge_shard_results,
    run_frogwild_batch,
    seed_distribution,
)
from ..core.frogwild import FrogWildResult, prime_ingress_caches
from ..engine import build_cluster
from ..errors import ConfigError, EngineError
from ..graph import DiGraph
from .backend import BatchOutcome, QueryOutcome, ShardCost, ShardedBackend
from .batching import RankingQuery

__all__ = ["ProcessPoolBackend"]


def _worker_main(
    control,
    data,
    shard: int,
    machines_per_shard: int,
    cost_model,
    size_model,
    seed,
    kernel: str,
) -> None:
    """One shard worker: attach epochs, run batch slices, ship records."""
    channel = RecordChannel(data, size_model)
    epochs: dict[int, tuple[DiGraph, ReplicationTable, tuple]] = {}
    # Master-selection noise is deterministic in (n, machines, seed)
    # for integer seeds, so one draw serves every patch this worker
    # ever computes — the same cache IncrementalReplication keeps.
    noise_cache: dict[tuple[int, int, int], np.ndarray] = {}
    while True:
        try:
            message = control.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        try:
            if op == "attach":
                _, epoch, graph_spec, table_spec = message
                graph_arena = SharedArena.attach(graph_spec)
                table_arena = SharedArena.attach(table_spec)
                graph = DiGraph.from_csr_arrays(graph_arena.arrays)
                table = ReplicationTable.from_shared_components(
                    graph, table_arena.arrays
                )
                # Warm the kernel tables once per epoch, off the batch
                # path — exactly what the live refresher does for the
                # in-process backends.
                prime_ingress_caches(table, graph)
                epochs[epoch] = (graph, table, (graph_arena, table_arena))
                control.send(("attached", epoch))
            elif op == "detach":
                _, epoch = message
                entry = epochs.pop(epoch, None)
                if entry is not None:
                    for arena in entry[2]:
                        arena.close()
                control.send(("detached", epoch))
            elif op == "run":
                _, task, epoch, config, share, shard_seed, queries = message
                graph, table, _ = epochs[epoch]
                distributions = [
                    seed_distribution(
                        graph.num_vertices,
                        np.asarray(seeds, dtype=np.int64),
                        None
                        if weights is None
                        else np.asarray(weights, dtype=np.float64),
                    )
                    for seeds, weights in queries
                ]
                state = build_cluster(
                    graph,
                    machines_per_shard,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    replication=table,
                )
                result = run_frogwild_batch(
                    graph,
                    [
                        BatchQuery(
                            num_frogs=share,
                            start_distribution=distribution,
                            seed=shard_seed,
                        )
                        for distribution in distributions
                    ],
                    config,
                    state=state,
                    kernel=kernel,
                )
                lanes = []
                for lane in result.results:
                    counts = lane.estimate.counts
                    stops = np.flatnonzero(counts)
                    channel.send_records(
                        "result", stops, counts[stops], tag=task
                    )
                    lanes.append(
                        (lane.estimate.num_frogs, lane.report, lane.ledger)
                    )
                control.send(
                    (
                        "result",
                        task,
                        {
                            "lanes": lanes,
                            "shared_network_bytes": (
                                result.report.network_bytes
                            ),
                            "attributed_network_bytes": (
                                result.attributed_network_bytes()
                            ),
                            "cpu_seconds": sum(
                                lane.report.cpu_seconds
                                for lane in result.results
                            ),
                            "simulated_time_s": result.report.total_time_s,
                            "sent": channel.sent,
                        },
                    )
                )
                # The payload carried this batch's tally (pickled at
                # send time); start the next batch's delta fresh so the
                # parent's merge never double-counts.
                channel.sent = TransportTally()
            elif op == "patch":
                _, task, epoch, snapshot_spec, patch_seed = message
                _, old_table, _ = epochs[epoch]
                snapshot_arena = SharedArena.attach(snapshot_spec)
                try:
                    arrays = snapshot_arena.arrays
                    snapshot = DiGraph.from_csr_arrays(arrays)
                    partition = EdgePartition(
                        arrays[f"edge_machine.{shard}"],
                        machines_per_shard,
                    )
                    changed = arrays[f"changed.{shard}"]
                    key = (
                        snapshot.num_vertices,
                        machines_per_shard,
                        patch_seed,
                    )
                    noise = noise_cache.get(key)
                    if noise is None:
                        noise = ReplicationTable.master_noise(*key)
                        noise_cache[key] = noise
                    patched = old_table.patched(
                        snapshot, partition, changed, noise
                    )
                    # Components are fresh arrays (the patch splices
                    # into new buffers), so pickling them back on the
                    # control pipe is safe; this is the off-query-path
                    # refresh pipeline, not the batch path, so the
                    # pickle cost is acceptable.
                    control.send(
                        ("result", task, patched.shared_components())
                    )
                finally:
                    snapshot_arena.close()
            elif op == "stop":
                for _, _, arenas in epochs.values():
                    for arena in arenas:
                        arena.close()
                control.send(("stopped",))
                return
            else:
                control.send(("error", None, f"unknown op {op!r}", ""))
        except (EOFError, OSError, KeyboardInterrupt):
            return
        except BaseException as error:  # surfaced to the parent
            task = message[1] if len(message) > 1 else None
            try:
                control.send(
                    ("error", task, repr(error), traceback.format_exc())
                )
            except (OSError, ValueError):
                return


class _Worker:
    """Parent-side handle of one shard process."""

    __slots__ = ("shard", "process", "control", "channel")

    def __init__(self, shard, process, control, channel) -> None:
        self.shard = shard
        self.process = process
        self.control = control
        self.channel = channel


class ProcessPoolBackend(ShardedBackend):
    """Shard fan-out on OS processes over shared-memory graph state.

    Construction mirrors :class:`ShardedBackend` (same layout, same
    per-shard seeds, same tables — built once in the parent), then
    exports the graph and each shard's table into shared memory and
    spawns one worker process per shard.  ``run_batch`` fans each
    query's frog budget out exactly as the in-process backend does and
    merges the returned lanes through the same
    :func:`~repro.core.batched.merge_shard_results` /
    ``CostLedger.merge`` machinery, so results and cost attribution are
    identical — only wall-clock parallelism differs.  The ``kernel=``
    tier (``"fused"`` default, ``"lane-loop"`` reference, or the Numba
    ``"compiled"`` tier from :mod:`repro.core.kernels`) is forwarded to
    every worker; workers on Numba-less hosts apply the same
    warn-once fused fallback, so a mixed fleet still returns bitwise
    identical counters.

    Extra parameters on top of :class:`ShardedBackend`:

    ``start_method``
        ``multiprocessing`` start method; default prefers ``fork``
        (instant start, Linux) and falls back to the platform default.
        The worker entry point is spawn-safe either way.
    ``timeout_s``
        Per-operation ceiling on worker replies; a silent worker
        raises :class:`~repro.errors.EngineError` instead of hanging
        the service.

    Use :meth:`close` (or a ``with`` block) to tear down workers and
    unlink the shared segments; segments leaked by a crash are
    reclaimed by the ``resource_tracker`` at interpreter exit.
    """

    def __init__(
        self,
        graph: DiGraph,
        num_shards: int | None = 4,
        machines_per_shard: int | None = None,
        num_machines: int | None = None,
        partitioner: str = "random",
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        num_frogs: int | None = None,
        replications: Sequence[ReplicationTable] | None = None,
        kernel: str = "fused",
        start_method: str | None = None,
        timeout_s: float = 120.0,
    ) -> None:
        super().__init__(
            graph,
            num_shards=num_shards,
            machines_per_shard=machines_per_shard,
            num_machines=num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            num_frogs=num_frogs,
            replications=replications,
            kernel=kernel,
        )
        self.timeout_s = timeout_s
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else mp.get_start_method()
            )
        self._context = mp.get_context(start_method)
        # One lock serializes batches and refreshes: a batch runs
        # wholly against one epoch's arenas, and a refresh never remaps
        # under a batch in flight.
        self._lock = threading.Lock()
        self._epoch = 0
        self._task_counter = 0
        self._arenas: dict[int, list[SharedArena]] = {}
        self._workers: list[_Worker] = []
        #: Parent-side receive tallies plus worker-side send tallies of
        #: everything this backend moved over its record channels.
        self.transport_received = TransportTally()
        self.transport_sent = TransportTally()
        self._closed = False
        try:
            self._publish_epoch(self._epoch, self.graph, self.replications)
            self._spawn_workers()
            self._attach_all(self._epoch)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker/arena lifecycle
    # ------------------------------------------------------------------
    def _publish_epoch(
        self,
        epoch: int,
        graph: DiGraph,
        replications: Sequence[ReplicationTable],
    ) -> None:
        """Materialize one epoch's shared arenas (graph + per-shard)."""
        arenas = [SharedArena.create(graph.csr_arrays(), epoch=epoch)]
        for table in replications:
            arenas.append(
                SharedArena.create(table.shared_components(), epoch=epoch)
            )
        self._arenas[epoch] = arenas

    def _spawn_workers(self) -> None:
        for shard in range(self.num_shards):
            control_parent, control_child = self._context.Pipe(duplex=True)
            data_parent, data_child = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_worker_main,
                args=(
                    control_child,
                    data_child,
                    shard,
                    self.machines_per_shard,
                    self.cost_model,
                    self.size_model,
                    self.seed,
                    self.kernel,
                ),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            control_child.close()
            data_child.close()
            self._workers.append(
                _Worker(
                    shard,
                    process,
                    control_parent,
                    RecordChannel(data_parent, self.size_model),
                )
            )

    def _control_reply(self, worker: _Worker, expected: str):
        """Await one control message of ``expected`` kind from a worker."""
        deadline = time.monotonic() + self.timeout_s
        while True:
            if worker.control.poll(0.05):
                message = worker.control.recv()
                if message[0] == "error":
                    _, _, error, trace = message
                    raise EngineError(
                        f"shard {worker.shard} worker failed: {error}\n"
                        f"{trace}"
                    )
                if message[0] == expected:
                    return message
                continue
            if not worker.process.is_alive():
                raise EngineError(
                    f"shard {worker.shard} worker died awaiting {expected}"
                )
            if time.monotonic() > deadline:
                raise EngineError(
                    f"shard {worker.shard} worker timed out awaiting "
                    f"{expected}"
                )

    def _attach_all(self, epoch: int) -> None:
        graph_spec = self._arenas[epoch][0].spec
        for worker in self._workers:
            worker.control.send(
                (
                    "attach",
                    epoch,
                    graph_spec,
                    self._arenas[epoch][1 + worker.shard].spec,
                )
            )
        for worker in self._workers:
            self._control_reply(worker, "attached")

    def refresh(
        self,
        graph: DiGraph,
        replications: Sequence[ReplicationTable],
        epoch: int | None = None,
    ) -> "ProcessPoolBackend":
        """Remap every worker onto a refreshed snapshot's tables.

        The epoch-tagged handshake of a live publish: new arenas are
        created under the next epoch tag, all workers attach them, and
        only then is the previous epoch detached and unlinked.  Batches
        serialize with this on the backend lock, so every batch runs
        against exactly one epoch's arrays.
        """
        if len(replications) != self.num_shards:
            raise ConfigError(
                f"{len(replications)} replication tables supplied for "
                f"{self.num_shards} shards"
            )
        for shard, table in enumerate(replications):
            if table.num_machines != self.machines_per_shard:
                raise ConfigError(
                    f"shard {shard} replication targets "
                    f"{table.num_machines} machines, expected "
                    f"{self.machines_per_shard}"
                )
            if table.graph.num_vertices != graph.num_vertices:
                raise ConfigError(
                    f"shard {shard} replication was built for a "
                    "different graph"
                )
        with self._lock:
            old_epoch = self._epoch
            new_epoch = epoch if epoch is not None else old_epoch + 1
            if new_epoch <= old_epoch:
                raise ConfigError(
                    f"refresh epoch must advance: {new_epoch} <= "
                    f"{old_epoch}"
                )
            self._publish_epoch(new_epoch, graph, replications)
            try:
                self._attach_all(new_epoch)
            except BaseException:
                for arena in self._arenas.pop(new_epoch, []):
                    arena.destroy()
                raise
            self._epoch = new_epoch
            self.graph = graph
            self.replications = list(replications)
            for worker in self._workers:
                worker.control.send(("detach", old_epoch))
            for worker in self._workers:
                self._control_reply(worker, "detached")
            for arena in self._arenas.pop(old_epoch, []):
                arena.destroy()
        return self

    def patch_tables(
        self,
        snapshot: DiGraph,
        plans: Sequence,
        seed: int | None = None,
    ) -> list[ReplicationTable | None]:
        """Compute per-shard table patches on the shard workers.

        The parallel half of the incremental-refresh pipeline: each
        worker already holds (a structurally-equal mapped copy of) its
        shard's current table, so the parent ships only the *new*
        snapshot — one temporary :class:`SharedArena` with the CSR
        arrays plus each patched shard's ``edge_machine`` and changed
        vertices — and every shard splices its own
        :meth:`~repro.cluster.ReplicationTable.patched` table
        concurrently on its own core.  ``plans`` aligns with shards
        (one :class:`~repro.live.RefreshPlan`-shaped object each, duck
        typed to avoid a serving→live import cycle); ``full`` plans
        are skipped and come back ``None`` — rebuilds are not patches.
        Master equivalence with a local patch relies on the
        deterministic noise stream, hence the integer-seed
        requirement.

        Returns one patched table (rebuilt in the parent from the
        workers' components, structurally equal to what the serial
        path would compute) or ``None`` per shard.
        """
        if self._closed:
            raise EngineError("backend is closed")
        if len(plans) != self.num_shards:
            raise ConfigError(
                f"{len(plans)} refresh plans supplied for "
                f"{self.num_shards} shards"
            )
        if seed is None:
            seed = self.seed
        if seed is None:
            raise ConfigError(
                "patch_tables needs an integer seed: remote patches "
                "must re-derive the same master noise as the "
                "maintainer's cached draw"
            )
        arrays = dict(snapshot.csr_arrays())
        jobs: list[_Worker] = []
        for worker, plan in zip(self._workers, plans):
            if plan.full:
                continue
            arrays[f"edge_machine.{worker.shard}"] = (
                plan.partition.edge_machine
            )
            arrays[f"changed.{worker.shard}"] = np.asarray(
                plan.changed, dtype=np.int64
            )
            jobs.append(worker)
        tables: list[ReplicationTable | None] = [None] * self.num_shards
        if not jobs:
            return tables
        with self._lock:
            self._task_counter += 1
            task = self._task_counter
            arena = SharedArena.create(arrays, epoch=self._epoch)
            try:
                for worker in jobs:
                    worker.control.send(
                        ("patch", task, self._epoch, arena.spec, seed)
                    )
                for worker in jobs:
                    message = self._control_reply(worker, "result")
                    if message[1] != task:
                        raise EngineError(
                            f"shard {worker.shard} answered task "
                            f"{message[1]}, expected {task}"
                        )
                    tables[worker.shard] = (
                        ReplicationTable.from_shared_components(
                            snapshot, message[2]
                        )
                    )
            finally:
                arena.destroy()
        return tables

    def close(self) -> None:
        """Stop workers, close pipes and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.control.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.control.close()
            worker.channel.close()
        self._workers = []
        for arenas in self._arenas.values():
            for arena in arenas:
                arena.destroy()
        self._arenas = {}

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _collect(
        self, worker: _Worker, task: int, num_lanes: int
    ) -> tuple[dict, list[np.ndarray]]:
        """Drain one worker's lane frames and control result for ``task``.

        Data and control are polled together: a worker blocked sending
        a large frame unblocks as soon as the parent drains it, and an
        error raised mid-task surfaces instead of deadlocking.  Frames
        tagged with an older (failed) task are discarded.
        """
        frames: list[np.ndarray] = []
        payload: dict | None = None
        counts_template = np.zeros(self.graph.num_vertices, dtype=np.int64)
        deadline = time.monotonic() + self.timeout_s
        while payload is None or len(frames) < num_lanes:
            progressed = False
            if worker.channel.poll(0.0 if payload is None else 0.05):
                kind, tag, stops, stop_counts = (
                    worker.channel.recv_records()
                )
                progressed = True
                if tag == task and kind == "result":
                    counts = counts_template.copy()
                    counts[stops] = stop_counts
                    frames.append(counts)
            if payload is None and worker.control.poll(0.05):
                message = worker.control.recv()
                progressed = True
                if message[0] == "error":
                    _, _, error, trace = message
                    raise EngineError(
                        f"shard {worker.shard} batch failed: {error}\n"
                        f"{trace}"
                    )
                if message[0] == "result" and message[1] == task:
                    payload = message[2]
            if progressed:
                deadline = time.monotonic() + self.timeout_s
            elif not worker.process.is_alive():
                raise EngineError(
                    f"shard {worker.shard} worker died mid-batch"
                )
            elif time.monotonic() > deadline:
                raise EngineError(
                    f"shard {worker.shard} worker timed out mid-batch"
                )
        return payload, frames

    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        if self._closed:
            raise EngineError("backend is closed")
        if not queries:
            return BatchOutcome(
                lanes=(), shared_network_bytes=0, simulated_time_s=0.0
            )
        query_specs = [
            (tuple(query.seeds), None if query.weights is None else tuple(query.weights))
            for query in queries
        ]
        with self._lock:
            self._task_counter += 1
            task = self._task_counter
            shares = self._shares(config.num_frogs)
            participating = []
            for worker, share in zip(self._workers, shares):
                if share == 0:
                    continue
                worker.control.send(
                    (
                        "run",
                        task,
                        self._epoch,
                        config,
                        share,
                        self._shard_seed(config.seed, worker.shard),
                        query_specs,
                    )
                )
                participating.append((worker, share))
            per_query_lanes: list[list[FrogWildResult]] = [
                [] for _ in queries
            ]
            shard_costs: list[ShardCost] = []
            for worker, share in participating:
                payload, frames = self._collect(worker, task, len(queries))
                for lanes, counts, (num_frogs, report, ledger) in zip(
                    per_query_lanes, frames, payload["lanes"]
                ):
                    lanes.append(
                        FrogWildResult(
                            estimate=PageRankEstimate(counts, num_frogs),
                            report=report,
                            state=None,
                            ledger=ledger,
                        )
                    )
                self.transport_sent.merge(payload["sent"])
                self.transport_received.merge(worker.channel.received)
                worker.channel.received = TransportTally()
                shard_costs.append(
                    ShardCost(
                        shard=worker.shard,
                        num_machines=self.machines_per_shard,
                        shared_network_bytes=payload[
                            "shared_network_bytes"
                        ],
                        attributed_network_bytes=payload[
                            "attributed_network_bytes"
                        ],
                        cpu_seconds=payload["cpu_seconds"],
                        simulated_time_s=payload["simulated_time_s"],
                    )
                )
        merged = [merge_shard_results(lanes) for lanes in per_query_lanes]
        return BatchOutcome(
            lanes=tuple(
                QueryOutcome(lane.estimate, lane.report) for lane in merged
            ),
            shared_network_bytes=sum(
                cost.shared_network_bytes for cost in shard_costs
            ),
            simulated_time_s=max(
                (cost.simulated_time_s for cost in shard_costs),
                default=0.0,
            ),
            shards=tuple(shard_costs),
        )

    # ------------------------------------------------------------------
    # Transport accounting
    # ------------------------------------------------------------------
    def transport_summary(self) -> dict[str, float]:
        """Measured-vs-model byte accounting of the record transport.

        ``reconciles`` is 1.0 when both directions' measured bytes
        equal the :class:`MessageSizeModel` pricing of the same record
        traffic (plus the real header of any empty frame) *and* the
        parent received byte-for-byte what workers sent.
        """
        size_model = self.size_model or MessageSizeModel()
        sent, received = self.transport_sent, self.transport_received
        reconciles = (
            sent.reconciles(size_model)
            and received.reconciles(size_model)
            and sent.measured_bytes == received.measured_bytes
            and sent.records == received.records
        )
        summary = {f"sent_{k}": v for k, v in sent.as_dict().items()}
        summary.update(
            {f"received_{k}": v for k, v in received.as_dict().items()}
        )
        summary["reconciles"] = float(reconciles)
        return summary
