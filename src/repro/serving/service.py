"""The ranking service: cached, coalesced, batched top-k PageRank.

:class:`RankingService` is the façade production callers talk to.  One
instance owns a graph and a partitioned ingress (built once — the paper
excludes ingress from measurements and so does every repeated-run
harness in this repository); each request flows through three stages:

1. **cache** — estimates are immutable, so identical queries (same
   seeds, weights and config) are served from the TTL/LRU cache without
   touching the cluster;
2. **coalescing** — cache misses are grouped into config-pure batches
   of at most ``max_batch_size`` queries;
3. **batched execution** — each batch runs as one
   :class:`~repro.core.batched.BatchedFrogWildRunner` traversal on a
   fresh :class:`~repro.engine.ClusterState` sharing the service's
   replication tables, so per-batch traffic/CPU/time accounting stays
   clean while ingress is never re-paid.

Answers carry their per-query *attributed* costs (what the query alone
caused inside its batch, standalone-priced) so callers can meter users
honestly even though the wire cost was amortized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..cluster import CostModel, MessageSizeModel, ReplicationTable, make_partitioner
from ..core import FrogWildConfig, run_personalized_frogwild_batch
from ..engine import RunReport, build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from .batching import QueryCoalescer, RankingQuery
from .cache import TTLCache

__all__ = ["RankingAnswer", "ServiceStats", "RankingService"]


@dataclass(frozen=True)
class RankingAnswer:
    """One served top-k answer plus its provenance and attributed cost."""

    query: RankingQuery
    vertices: np.ndarray
    scores: np.ndarray
    cached: bool
    batch_size: int
    report: RunReport

    @property
    def network_bytes(self) -> int:
        """Bytes attributed to this query (standalone-priced)."""
        return self.report.network_bytes

    @property
    def cpu_seconds(self) -> float:
        return self.report.cpu_seconds

    @property
    def simulated_time_s(self) -> float:
        return self.report.total_time_s


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`RankingService`."""

    queries_served: int = 0
    queries_executed: int = 0
    batches_run: int = 0
    largest_batch: int = 0
    frogs_launched: int = 0
    attributed_network_bytes: int = 0
    shared_network_bytes: int = 0
    simulated_time_s: float = 0.0
    batch_sizes: list[int] = field(default_factory=list)

    def amortization_ratio(self) -> float:
        """Actual wire bytes over standalone-priced bytes (<= 1)."""
        if self.attributed_network_bytes == 0:
            return 1.0
        return self.shared_network_bytes / self.attributed_network_bytes

    def as_dict(self) -> dict[str, float]:
        return {
            "queries_served": float(self.queries_served),
            "queries_executed": float(self.queries_executed),
            "batches_run": float(self.batches_run),
            "largest_batch": float(self.largest_batch),
            "frogs_launched": float(self.frogs_launched),
            "attributed_network_bytes": float(self.attributed_network_bytes),
            "shared_network_bytes": float(self.shared_network_bytes),
            "simulated_time_s": self.simulated_time_s,
            "amortization_ratio": self.amortization_ratio(),
        }


@dataclass(frozen=True)
class _CacheEntry:
    """Cached outcome of one executed query (estimate + its report)."""

    estimate: object
    report: RunReport
    batch_size: int


class RankingService:
    """Serves personalized top-k PageRank queries over one graph.

    Parameters
    ----------
    graph:
        The served graph; ingress (partitioning + replication tables)
        is paid once here.
    config:
        Default :class:`FrogWildConfig` for queries that don't override.
    num_machines, partitioner, cost_model, size_model, seed:
        Simulated-cluster construction, as everywhere in the repo.
    max_batch_size:
        Largest number of queries one batched traversal carries.
    cache_capacity, cache_ttl_s:
        TTL/LRU cache sizing; ``cache_capacity=0`` disables caching.
    clock:
        Injectable time source for the cache (tests use a fake).
    """

    def __init__(
        self,
        graph: DiGraph,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        partitioner: str = "random",
        max_batch_size: int = 16,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if graph.num_vertices == 0:
            raise ConfigError("cannot serve an empty graph")
        self.graph = graph
        self.default_config = config or FrogWildConfig(seed=seed)
        self.num_machines = num_machines
        self.cost_model = cost_model
        self.size_model = size_model
        self.seed = seed
        # Ingress: paid once per service, shared by every batch.
        partition = make_partitioner(partitioner, seed).partition(
            graph, num_machines
        )
        self.replication = ReplicationTable(graph, partition, seed=seed)
        self.cache: TTLCache | None = (
            TTLCache(cache_capacity, cache_ttl_s, clock or time.monotonic)
            if cache_capacity > 0
            else None
        )
        self.coalescer = QueryCoalescer(max_batch_size)
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int = 10,
        weights: Sequence[float] | np.ndarray | None = None,
        config: FrogWildConfig | None = None,
    ) -> RankingAnswer:
        """Synchronous single-query API (a batch of one)."""
        request = RankingQuery(
            seeds=tuple(np.atleast_1d(np.asarray(seeds)).tolist()),
            k=k,
            weights=None if weights is None else tuple(
                np.atleast_1d(np.asarray(weights)).tolist()
            ),
            config=config,
        )
        return self.query_batch([request])[0]

    def query_batch(
        self, queries: Sequence[RankingQuery]
    ) -> list[RankingAnswer]:
        """Serve many queries at once; answers come back in query order.

        Cache hits are answered immediately; misses are coalesced into
        config-pure batches (duplicates within the call collapse into
        one population) and executed through shared traversals.
        """
        if not queries:
            return []
        default = self.default_config
        # Validate the whole batch before touching cache or coalescer:
        # one malformed query must fail the call atomically, not abort
        # mid-drain with its batchmates' work half done.
        num_vertices = self.graph.num_vertices
        for query in queries:
            if max(query.seeds) >= num_vertices:
                raise ConfigError(
                    f"seed ids out of range for a {num_vertices}-vertex "
                    f"graph: {query.seeds}"
                )
        answers: list[RankingAnswer | None] = [None] * len(queries)
        positions: dict[object, list[int]] = {}
        for index, query in enumerate(queries):
            key = query.cache_key(default)
            entry = None if self.cache is None else self.cache.get(key)
            if entry is not None:
                answers[index] = self._answer(query, entry, cached=True)
                continue
            # First miss of a key enqueues it; duplicates just wait.
            if key not in positions:
                self.coalescer.add(query, default)
            positions.setdefault(key, []).append(index)

        for config, batch in self.coalescer.drain():
            result = run_personalized_frogwild_batch(
                self.graph,
                [np.asarray(query.seeds, dtype=np.int64) for query in batch],
                config,
                weights=[
                    None
                    if query.weights is None
                    else np.asarray(query.weights, dtype=np.float64)
                    for query in batch
                ],
                state=self._fresh_state(),
            )
            self.stats.batches_run += 1
            self.stats.batch_sizes.append(len(batch))
            self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
            self.stats.queries_executed += len(batch)
            self.stats.shared_network_bytes += result.report.network_bytes
            self.stats.simulated_time_s += result.report.total_time_s
            for query, lane in zip(batch, result.results):
                entry = _CacheEntry(
                    estimate=lane.estimate,
                    report=lane.report,
                    batch_size=len(batch),
                )
                self.stats.frogs_launched += lane.estimate.num_frogs
                self.stats.attributed_network_bytes += lane.report.network_bytes
                key = query.cache_key(default)
                if self.cache is not None:
                    self.cache.put(key, entry)
                for index in positions[key]:
                    answers[index] = self._answer(
                        queries[index], entry, cached=False
                    )

        self.stats.queries_served += len(queries)
        return answers  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _answer(
        self, query: RankingQuery, entry: _CacheEntry, cached: bool
    ) -> RankingAnswer:
        vertices, scores = entry.estimate.top_k_with_scores(query.k)
        return RankingAnswer(
            query=query,
            vertices=vertices,
            scores=scores,
            cached=cached,
            batch_size=entry.batch_size,
            report=entry.report,
        )

    def _fresh_state(self):
        """A fresh accounting state over the shared ingress."""
        return build_cluster(
            self.graph,
            self.num_machines,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
            replication=self.replication,
        )

    def cache_stats(self) -> dict[str, float]:
        """The cache's counters (empty dict when caching is disabled)."""
        return {} if self.cache is None else self.cache.stats.as_dict()
