"""The ranking service: cached, coalesced, scheduled, backend-executed.

:class:`RankingService` is the façade production callers talk to.  One
instance owns an :class:`~repro.serving.backend.ExecutionBackend`
(which owns the graph's partitioned ingress — paid once, as the paper
excludes ingress from measurements); each request flows through four
stages:

1. **cache** — estimates are immutable, so identical queries (same
   seeds, weights, config and graph generation) are served from the
   TTL/LRU cache without touching the cluster;
2. **coalescing** — cache misses are grouped into config-pure batches
   of at most ``max_batch_size`` queries, duplicates collapsing onto
   one in-flight lane;
3. **scheduling** — :class:`~repro.serving.scheduler.BatchScheduler`
   dispatches a batch the moment it fills *or* when its oldest query
   has waited ``max_delay_s`` (the synchronous
   :meth:`RankingService.query_batch` is just a zero-delay schedule:
   submit, then flush);
4. **backend execution** — the batch runs on the backend's cluster
   layout: one shared traversal (:class:`~repro.serving.LocalBackend`)
   or a shard fan-out with exact counter/ledger merging
   (:class:`~repro.serving.ShardedBackend`).

Answers carry their per-query *attributed* costs (what the query alone
caused inside its batch, standalone-priced, summed exactly across
shards) so callers can meter users honestly even though the wire cost
was amortized.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from ..cluster import CostModel, MessageSizeModel
from ..core import FrogWildConfig
from ..engine import RunReport
from ..errors import ConfigError, EngineError
from ..graph import DiGraph
from .backend import (
    BatchOutcome,
    ExecutionBackend,
    LocalBackend,
    ShardedBackend,
    choose_num_shards,
)
from .batching import PendingQuery, QueryCoalescer, RankingQuery
from .cache import TTLCache
from .scheduler import BatchScheduler

__all__ = [
    "RankingAnswer",
    "RankingFuture",
    "ServiceStats",
    "RankingService",
]


@dataclass(frozen=True)
class RankingAnswer:
    """One served top-k answer plus its provenance and attributed cost."""

    query: RankingQuery
    vertices: np.ndarray
    scores: np.ndarray
    cached: bool
    batch_size: int
    report: RunReport

    @property
    def network_bytes(self) -> int:
        """Bytes attributed to this query (standalone-priced)."""
        return self.report.network_bytes

    @property
    def cpu_seconds(self) -> float:
        return self.report.cpu_seconds

    @property
    def simulated_time_s(self) -> float:
        return self.report.total_time_s


class RankingFuture:
    """Handle to an asynchronously scheduled query's eventual answer."""

    def __init__(self, query: RankingQuery) -> None:
        self.query = query
        self._event = threading.Event()
        self._answer: RankingAnswer | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> RankingAnswer:
        """Block until the answer is ready (or ``timeout`` elapses)."""
        if not self._event.wait(timeout):
            raise TimeoutError("ranking answer not ready yet")
        if self._error is not None:
            raise self._error
        return self._answer  # type: ignore[return-value]

    def _resolve(self, answer: RankingAnswer) -> None:
        self._answer = answer
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`RankingService`."""

    queries_served: int = 0
    queries_executed: int = 0
    batches_run: int = 0
    largest_batch: int = 0
    frogs_launched: int = 0
    attributed_network_bytes: int = 0
    shared_network_bytes: int = 0
    simulated_time_s: float = 0.0
    batch_sizes: list[int] = field(default_factory=list)
    # Per-shard cost partition, keyed by shard id (empty when the
    # backend is unsharded).
    shard_shared_bytes: dict[int, int] = field(default_factory=dict)
    shard_attributed_bytes: dict[int, int] = field(default_factory=dict)
    shard_cpu_seconds: dict[int, float] = field(default_factory=dict)

    def amortization_ratio(self) -> float:
        """Actual wire bytes over standalone-priced bytes (<= 1).

        Guarded for the zero-traversal case: a service that has served
        only cache hits (or nothing at all) has amortized nothing, and
        reports the neutral ratio 1.0 rather than dividing by zero.
        """
        if self.attributed_network_bytes == 0:
            return 1.0
        return self.shared_network_bytes / self.attributed_network_bytes

    def mean_batch_size(self) -> float:
        """Average executed batch size (0.0 before any traversal)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def shard_breakdown(self) -> dict[int, dict[str, float]]:
        """Per-shard cost partition (empty when unsharded)."""
        return {
            shard: {
                "shared_network_bytes": float(
                    self.shard_shared_bytes.get(shard, 0)
                ),
                "attributed_network_bytes": float(
                    self.shard_attributed_bytes.get(shard, 0)
                ),
                "cpu_seconds": self.shard_cpu_seconds.get(shard, 0.0),
            }
            for shard in sorted(self.shard_shared_bytes)
        }

    def as_dict(self) -> dict[str, float]:
        row = {
            "queries_served": float(self.queries_served),
            "queries_executed": float(self.queries_executed),
            "batches_run": float(self.batches_run),
            "largest_batch": float(self.largest_batch),
            "mean_batch_size": self.mean_batch_size(),
            "frogs_launched": float(self.frogs_launched),
            "attributed_network_bytes": float(self.attributed_network_bytes),
            "shared_network_bytes": float(self.shared_network_bytes),
            "simulated_time_s": self.simulated_time_s,
            "amortization_ratio": self.amortization_ratio(),
        }
        for shard, costs in self.shard_breakdown().items():
            for key, value in costs.items():
                row[f"shard{shard}_{key}"] = value
        return row


@dataclass(frozen=True)
class _CacheEntry:
    """Cached outcome of one executed query (estimate + its report)."""

    estimate: object
    report: RunReport
    batch_size: int


class RankingService:
    """Serves personalized top-k PageRank queries over one graph.

    Parameters
    ----------
    graph:
        The served graph; ingress (partitioning + replication tables)
        is paid once inside the backend.  A
        :class:`~repro.dynamic.DynamicDiGraph` is also accepted: the
        service snapshots it for the backend and defaults the
        ``generation`` provider to the live graph's version counter, so
        churn invalidation is on by default (the served snapshot itself
        stays frozen — :class:`~repro.live.LiveRankingService` is the
        variant that refreshes the backend too).
    config:
        Default :class:`FrogWildConfig` for queries that don't override.
    num_machines, partitioner, cost_model, size_model, seed:
        Simulated-cluster construction, as everywhere in the repo.
    max_batch_size:
        Largest number of queries one batched traversal carries.
    cache_capacity, cache_ttl_s:
        TTL/LRU cache sizing; ``cache_capacity=0`` disables caching.
    clock:
        Injectable time source shared by the cache and the scheduler
        (tests and benchmarks use a
        :class:`~repro.serving.VirtualClock`).
    backend:
        Explicit :class:`~repro.serving.backend.ExecutionBackend`
        (overrides ``num_shards``), or a layout name: ``"local"``,
        ``"sharded"``, or ``"process"`` (a
        :class:`~repro.serving.ProcessPoolBackend` — one OS process
        per shard over shared-memory graph state; pair with
        :meth:`close` to tear the workers down).
    num_shards:
        ``> 1`` builds a :class:`~repro.serving.ShardedBackend` that
        splits the ``num_machines`` fleet into that many sub-clusters
        and fans every batch out across them.  ``None`` autotunes the
        shard count from the fleet size and the default config's frog
        budget (:func:`~repro.serving.choose_num_shards`).
    kernel:
        Batch-kernel tier forwarded to any backend this constructor
        builds (ignored when ``backend`` is an explicit instance):
        ``"fused"`` (default), ``"compiled"`` (Numba tier from
        :mod:`repro.core.kernels`; falls back to fused with one warning
        when Numba is absent) or ``"lane-loop"`` (reference loop).
    max_delay_s:
        Deadline for the scheduled path (:meth:`submit`): a partial
        batch dispatches once its oldest query has waited this long.
        ``None`` disables deadline dispatch (batches leave on fill or
        flush only).  The synchronous :meth:`query_batch` is unaffected
        — it always flushes immediately.
    generation:
        Injectable graph-generation counter mixed into every cache key
        (e.g. ``lambda: dynamic_graph.version``).  When the counter
        moves, previously cached rankings stop matching and re-execute
        — churn invalidation without TTL guesswork.  Defaults
        automatically when the service has a generation source: a
        :class:`~repro.dynamic.DynamicDiGraph` ``graph`` provides its
        version counter, and an explicit ``backend`` exposing a
        ``generation`` callable (e.g. :class:`~repro.live.EpochManager`)
        provides its epoch.  Note the scope here: this invalidates the
        *cache*; a plain RankingService keeps serving the snapshot its
        backend ingested at construction, so re-executions price
        against that snapshot until the backend is refreshed
        (:class:`~repro.live.LiveRankingService` does exactly that).
    """

    def __init__(
        self,
        graph: DiGraph,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        partitioner: str = "random",
        max_batch_size: int = 16,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        clock: Callable[[], float] | None = None,
        backend: ExecutionBackend | str | None = None,
        num_shards: int | None = 1,
        max_delay_s: float | None = None,
        generation: Callable[[], int] | None = None,
        kernel: str = "fused",
    ) -> None:
        from ..dynamic import DynamicDiGraph

        if isinstance(graph, DynamicDiGraph):
            # Serve a snapshot of the live graph, and default churn
            # invalidation to its version counter so callers no longer
            # have to plumb generation= by hand.
            source = graph
            graph = source.snapshot()
            if generation is None:
                generation = lambda: source.version  # noqa: E731
        if graph.num_vertices == 0:
            raise ConfigError("cannot serve an empty graph")
        self.graph = graph
        self.default_config = config or FrogWildConfig(seed=seed)
        self.num_machines = num_machines
        self.seed = seed
        if backend is None or isinstance(backend, str):
            kind = backend
            if num_shards is None:
                num_shards = choose_num_shards(
                    num_machines, num_frogs=self.default_config.num_frogs
                )
            if kind is None:
                kind = "sharded" if num_shards > 1 else "local"
            if kind == "process":
                from .process_backend import ProcessPoolBackend

                backend = ProcessPoolBackend(
                    graph,
                    num_shards=num_shards,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                )
            elif kind == "sharded":
                backend = ShardedBackend(
                    graph,
                    num_shards=num_shards,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                )
            elif kind == "local":
                backend = LocalBackend(
                    graph,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                )
            else:
                raise ConfigError(
                    f"unknown backend {kind!r}: expected 'local', "
                    "'sharded' or 'process'"
                )
        if generation is None:
            # A backend that knows its graph generation (the epoch-swap
            # proxy in repro.live) keys the cache by default.
            generation = getattr(backend, "generation", None)
        self.generation = generation
        self.backend = backend
        self._clock = clock or time.monotonic
        self.cache: TTLCache | None = (
            TTLCache(cache_capacity, cache_ttl_s, self._clock)
            if cache_capacity > 0
            else None
        )
        self.coalescer = QueryCoalescer(max_batch_size)
        self.scheduler = BatchScheduler(
            self._execute_batch,
            self.coalescer,
            max_delay_s=max_delay_s,
            clock=self._clock,
        )
        self.stats = ServiceStats()
        # Guards the cache, the stats and the in-flight dedup table
        # against the scheduler thread; reentrant because a fill
        # dispatch executes inline under the submitting call.
        self._lock = threading.RLock()
        self._inflight: dict[
            Hashable, list[tuple[RankingQuery, RankingFuture]]
        ] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RankingService":
        """Run the deadline scheduler in a background thread."""
        self.scheduler.start()
        return self

    def stop(self) -> None:
        """Stop the scheduler thread, flushing pending queries.

        The backend stays usable (callers may keep issuing synchronous
        queries or restart the scheduler); :meth:`close` is the full
        teardown.
        """
        self.scheduler.stop(flush=True)

    def close(self) -> None:
        """Stop the scheduler and release the backend's resources.

        For a :class:`~repro.serving.ProcessPoolBackend` (or an epoch
        proxy wrapping one) this terminates the worker processes and
        unlinks their shared-memory segments; backends without a
        ``close`` are unaffected.
        """
        self.stop()
        closer = getattr(self.backend, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "RankingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def pump(self) -> int:
        """Dispatch deadline-expired batches now (virtual-clock mode)."""
        return self.scheduler.poll()

    def flush(self) -> int:
        """Dispatch everything pending, deadlines notwithstanding."""
        return self.scheduler.flush()

    @property
    def replication(self):
        """The backend's replication tables (None when sharded)."""
        return getattr(self.backend, "replication", None)

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int = 10,
        weights: Sequence[float] | np.ndarray | None = None,
        config: FrogWildConfig | None = None,
    ) -> RankingAnswer:
        """Synchronous single-query API (a batch of one)."""
        return self.query_batch([self._make_query(seeds, k, weights, config)])[0]

    def query_batch(
        self, queries: Sequence[RankingQuery]
    ) -> list[RankingAnswer]:
        """Serve many queries at once; answers come back in query order.

        Cache hits are answered immediately; misses are coalesced into
        config-pure batches (duplicates within the call collapse into
        one population) and executed through the backend right away —
        the synchronous path is a zero-delay schedule: submit all, then
        flush.
        """
        if not queries:
            return []
        # Validate the whole batch before touching cache or coalescer:
        # one malformed query must fail the call atomically, not abort
        # mid-drain with its batchmates' work half done.
        self._validate(queries)
        submitted: list[tuple[RankingFuture, Hashable]] = []
        try:
            for query in queries:
                submitted.append(self._submit_validated(query))
            # Flush only this call's own lanes: other callers'
            # deadline-scheduled partial batches keep accumulating.
            self.scheduler.flush_payloads(key for _, key in submitted)
        except BaseException as error:
            # Restore the old drain's atomic failure semantics: lanes
            # of this call still queued (e.g. after a fill dispatch
            # raised mid-submission) are abandoned, never left behind
            # to execute as ghost work on someone else's flush.
            abandoned = self.scheduler.discard_payloads(
                [key for _, key in submitted]
            )
            with self._lock:
                waiters = [
                    waiter
                    for entry in abandoned
                    for waiter in self._inflight.pop(entry.payload, [])
                ]
            for _, future in waiters:
                future._fail(error)
            raise
        return [future.result() for future, _ in submitted]

    def submit(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int = 10,
        weights: Sequence[float] | np.ndarray | None = None,
        config: FrogWildConfig | None = None,
    ) -> RankingFuture:
        """Schedule one query; returns a future resolved on dispatch."""
        return self.submit_query(self._make_query(seeds, k, weights, config))

    def submit_query(self, query: RankingQuery) -> RankingFuture:
        """Schedule one normalized query through the batch scheduler.

        Cache hits resolve immediately; misses wait until their batch
        fills, their deadline expires (requires a started scheduler or
        explicit :meth:`pump` calls), or the service is flushed.
        """
        self._validate([query])
        future, _ = self._submit_validated(query)
        return future

    def cache_stats(self) -> dict[str, float]:
        """The cache's counters (empty dict when caching is disabled)."""
        return {} if self.cache is None else self.cache.stats.as_dict()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_query(self, seeds, k, weights, config) -> RankingQuery:
        return RankingQuery(
            seeds=tuple(np.atleast_1d(np.asarray(seeds)).tolist()),
            k=k,
            weights=None if weights is None else tuple(
                np.atleast_1d(np.asarray(weights)).tolist()
            ),
            config=config,
        )

    def _validate(self, queries: Sequence[RankingQuery]) -> None:
        num_vertices = self.graph.num_vertices
        for query in queries:
            if max(query.seeds) >= num_vertices:
                raise ConfigError(
                    f"seed ids out of range for a {num_vertices}-vertex "
                    f"graph: {query.seeds}"
                )

    def _cache_key(self, query: RankingQuery) -> Hashable:
        """Cache identity: the query's key plus the graph generation.

        With an injected generation counter, a churned graph bumps the
        counter and every previously cached ranking silently misses —
        invalidation is exact instead of a TTL guess.
        """
        base = query.cache_key(self.default_config)
        if self.generation is None:
            return base
        return (int(self.generation()), base)

    def _submit_validated(
        self, query: RankingQuery
    ) -> tuple[RankingFuture, Hashable]:
        """Submit one validated query; returns (future, cache key)."""
        future = RankingFuture(query)
        with self._lock:
            key = self._cache_key(query)
            entry = None if self.cache is None else self.cache.get(key)
            if entry is not None:
                # queries_served counts *answered* queries (a failed
                # execution never inflates it), so it ticks at resolve
                # time here and in _execute_batch.
                self.stats.queries_served += 1
                future._resolve(self._answer(query, entry, cached=True))
                return future, key
            waiters = self._inflight.get(key)
            if waiters is not None:
                # A duplicate of an already queued query: ride its lane.
                waiters.append((query, future))
                return future, key
            self._inflight[key] = [(query, future)]
            # Enqueue under the same lock that registered the in-flight
            # entry: a concurrent duplicate's flush must find either
            # the queued entry or a dispatch already in progress, never
            # a gap it would block on forever.
            full = self.scheduler.enqueue(
                query, self.default_config, payload=key
            )
        self.scheduler.dispatch_filled(full)
        return future, key

    def _execute_batch(
        self, config: FrogWildConfig, entries: list[PendingQuery]
    ) -> None:
        """Scheduler dispatch target: run one config-pure batch."""
        queries = [entry.query for entry in entries]
        resolved: list[tuple[RankingQuery, RankingFuture, _CacheEntry]] = []
        try:
            outcome = self.backend.run_batch(config, queries)
            if len(outcome.lanes) != len(queries):
                raise EngineError(
                    f"backend answered {len(outcome.lanes)} lanes for "
                    f"{len(queries)} queries; the ExecutionBackend "
                    "contract requires lanes[i] to answer queries[i]"
                )
            with self._lock:
                self._record_outcome(outcome, len(entries))
                for entry, lane in zip(entries, outcome.lanes):
                    cached = _CacheEntry(
                        estimate=lane.estimate,
                        report=lane.report,
                        batch_size=len(entries),
                    )
                    self.stats.frogs_launched += lane.estimate.num_frogs
                    self.stats.attributed_network_bytes += (
                        lane.report.network_bytes
                    )
                    if self.cache is not None:
                        self.cache.put(entry.payload, cached)
                    for query, future in self._inflight.pop(
                        entry.payload, []
                    ):
                        resolved.append((query, future, cached))
        except BaseException as error:
            # Fail every future this batch owes an answer to — both
            # the keys not yet popped from the in-flight table and any
            # popped-but-unresolved waiters — so nothing ever hangs on
            # a dead lane and the dedup table never poisons.
            with self._lock:
                waiters = [
                    (query, future)
                    for entry in entries
                    for query, future in self._inflight.pop(
                        entry.payload, []
                    )
                ]
            for query, future, _ in resolved:
                future._fail(error)
            for _, future in waiters:
                future._fail(error)
            raise
        with self._lock:
            self.stats.queries_served += len(resolved)
        for query, future, cached in resolved:
            future._resolve(self._answer(query, cached, cached=False))

    def _record_outcome(self, outcome: BatchOutcome, batch_size: int) -> None:
        stats = self.stats
        stats.batches_run += 1
        stats.batch_sizes.append(batch_size)
        stats.largest_batch = max(stats.largest_batch, batch_size)
        stats.queries_executed += batch_size
        stats.shared_network_bytes += outcome.shared_network_bytes
        stats.simulated_time_s += outcome.simulated_time_s
        for cost in outcome.shards:
            stats.shard_shared_bytes[cost.shard] = (
                stats.shard_shared_bytes.get(cost.shard, 0)
                + cost.shared_network_bytes
            )
            stats.shard_attributed_bytes[cost.shard] = (
                stats.shard_attributed_bytes.get(cost.shard, 0)
                + cost.attributed_network_bytes
            )
            stats.shard_cpu_seconds[cost.shard] = (
                stats.shard_cpu_seconds.get(cost.shard, 0.0)
                + cost.cpu_seconds
            )

    def _answer(
        self, query: RankingQuery, entry: _CacheEntry, cached: bool
    ) -> RankingAnswer:
        vertices, scores = entry.estimate.top_k_with_scores(query.k)
        return RankingAnswer(
            query=query,
            vertices=vertices,
            scores=scores,
            cached=cached,
            batch_size=entry.batch_size,
            report=entry.report,
        )
