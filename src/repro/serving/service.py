"""The ranking service: cached, coalesced, scheduled, backend-executed.

:class:`RankingService` is the façade production callers talk to.  One
instance owns an :class:`~repro.serving.backend.ExecutionBackend`
(which owns the graph's partitioned ingress — paid once, as the paper
excludes ingress from measurements); each request flows through four
stages:

1. **cache** — estimates are immutable, so identical queries (same
   seeds, weights, config and graph generation) are served from the
   TTL/LRU cache without touching the cluster;
2. **coalescing** — cache misses are grouped into config-pure batches
   of at most ``max_batch_size`` queries, duplicates collapsing onto
   one in-flight lane;
3. **scheduling** — :class:`~repro.serving.scheduler.BatchScheduler`
   dispatches a batch the moment it fills *or* when its oldest query
   has waited ``max_delay_s`` (the synchronous
   :meth:`RankingService.query_batch` is just a zero-delay schedule:
   submit, then flush);
4. **backend execution** — the batch runs on the backend's cluster
   layout: one shared traversal (:class:`~repro.serving.LocalBackend`)
   or a shard fan-out with exact counter/ledger merging
   (:class:`~repro.serving.ShardedBackend`).

Answers carry their per-query *attributed* costs (what the query alone
caused inside its batch, standalone-priced, summed exactly across
shards) so callers can meter users honestly even though the wire cost
was amortized.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from ..cluster import CostModel, MessageSizeModel
from ..core import FrogWildConfig
from ..engine import RunReport
from ..errors import ConfigError, EngineError, OverloadError
from ..graph import DiGraph
from ..theory.bounds import config_error_bound
from .backend import (
    BatchOutcome,
    ExecutionBackend,
    LocalBackend,
    ShardedBackend,
    choose_num_shards,
)
from .batching import PendingQuery, QueryCoalescer, RankingQuery
from .cache import TTLCache
from .scheduler import BatchScheduler, VirtualClock

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..traffic.admission import AdmissionController
    from ..traffic.trace import QueryTrace, QueryTracer

__all__ = [
    "RankingAnswer",
    "RankingFuture",
    "ServiceStats",
    "RankingService",
]


@dataclass(frozen=True)
class RankingAnswer:
    """One served top-k answer plus its provenance and attributed cost.

    ``degrade_level`` is 0 for a full-fidelity answer; a positive
    level means admission control shrank this query's frog budget /
    iteration cut-off under backlog, and ``error_bound`` carries the
    Theorem-1 epsilon the degraded config still guarantees — accuracy
    given up under load is reported, never silently lost.

    ``degraded_shards`` is non-empty for a *partial* answer: the
    fail-soft process backend lost those shards' frog slices to a
    worker crash mid-batch and merged the survivors
    (``on_shard_failure="partial"``).  The estimate is an exact merge
    of the surviving population, and ``error_bound`` is recomputed for
    that smaller population — the same Theorem-1 widening that load
    shedding reports, triggered by a crash instead of a queue.
    """

    query: RankingQuery
    vertices: np.ndarray
    scores: np.ndarray
    cached: bool
    batch_size: int
    report: RunReport
    degrade_level: int = 0
    error_bound: float | None = None
    degraded_shards: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.degrade_level > 0

    @property
    def partial(self) -> bool:
        """True when this answer was merged without every shard."""
        return bool(self.degraded_shards)

    @property
    def network_bytes(self) -> int:
        """Bytes attributed to this query (standalone-priced)."""
        return self.report.network_bytes

    @property
    def cpu_seconds(self) -> float:
        return self.report.cpu_seconds

    @property
    def simulated_time_s(self) -> float:
        return self.report.total_time_s


class RankingFuture:
    """Handle to an asynchronously scheduled query's eventual answer."""

    def __init__(self, query: RankingQuery) -> None:
        self.query = query
        self._event = threading.Event()
        self._answer: RankingAnswer | None = None
        self._error: BaseException | None = None
        #: The per-query trace following this future through the
        #: service (set when the owning service has a tracer attached).
        self.trace: "QueryTrace | None" = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> RankingAnswer:
        """Block until the answer is ready (or ``timeout`` elapses)."""
        if not self._event.wait(timeout):
            raise TimeoutError("ranking answer not ready yet")
        if self._error is not None:
            raise self._error
        return self._answer  # type: ignore[return-value]

    def _resolve(self, answer: RankingAnswer) -> None:
        self._answer = answer
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


#: How many recent executed batch sizes :class:`ServiceStats` retains
#: for its percentile window (the exact count/sum/max aggregates cover
#: the full lifetime regardless).
BATCH_SIZE_WINDOW = 512


@dataclass
class ServiceStats:
    """Lifetime counters of one :class:`RankingService`.

    Executed batch sizes are kept as O(1) aggregates
    (``batch_size_count``/``batch_size_sum``/``largest_batch``) plus a
    bounded recent-window reservoir — a service under sustained load
    runs millions of batches, so the unbounded list this once was is
    exactly the slow leak the traffic harness exists to catch.
    """

    queries_served: int = 0
    queries_executed: int = 0
    queries_shed: int = 0
    queries_degraded: int = 0
    queries_partial: int = 0
    batches_run: int = 0
    largest_batch: int = 0
    batch_size_count: int = 0
    batch_size_sum: int = 0
    frogs_launched: int = 0
    attributed_network_bytes: int = 0
    shared_network_bytes: int = 0
    simulated_time_s: float = 0.0
    _recent_batch_sizes: deque = field(
        default_factory=lambda: deque(maxlen=BATCH_SIZE_WINDOW),
        repr=False,
    )
    # Per-shard cost partition, keyed by shard id (empty when the
    # backend is unsharded).
    shard_shared_bytes: dict[int, int] = field(default_factory=dict)
    shard_attributed_bytes: dict[int, int] = field(default_factory=dict)
    shard_cpu_seconds: dict[int, float] = field(default_factory=dict)

    @property
    def batch_sizes(self) -> list[int]:
        """Recent executed batch sizes (bounded window, oldest first).

        Compatibility view of the pre-bounded attribute; use the exact
        aggregates for lifetime statistics.
        """
        return list(self._recent_batch_sizes)

    def record_batch_size(self, size: int) -> None:
        size = int(size)
        self.batch_size_count += 1
        self.batch_size_sum += size
        self.largest_batch = max(self.largest_batch, size)
        self._recent_batch_sizes.append(size)

    def amortization_ratio(self) -> float:
        """Actual wire bytes over standalone-priced bytes (<= 1).

        Guarded for the zero-traversal case: a service that has served
        only cache hits (or nothing at all) has amortized nothing, and
        reports the neutral ratio 1.0 rather than dividing by zero.
        """
        if self.attributed_network_bytes == 0:
            return 1.0
        return self.shared_network_bytes / self.attributed_network_bytes

    def mean_batch_size(self) -> float:
        """Average executed batch size (0.0 before any traversal).

        Exact over the service lifetime (sum/count aggregates, not the
        bounded window).
        """
        if not self.batch_size_count:
            return 0.0
        return self.batch_size_sum / self.batch_size_count

    def batch_size_quantile(self, q: float) -> float:
        """Batch-size quantile over the recent window (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError("q must lie in [0, 1]")
        if not self._recent_batch_sizes:
            return 0.0
        return float(np.quantile(list(self._recent_batch_sizes), q))

    def shard_breakdown(self) -> dict[int, dict[str, float]]:
        """Per-shard cost partition (empty when unsharded).

        Iterates the union of all three per-shard maps: a shard that
        accrued attributed bytes or cpu-seconds but no shared bytes
        (possible when its sub-cluster moved no wire traffic) still
        appears instead of being silently dropped.
        """
        shards = (
            set(self.shard_shared_bytes)
            | set(self.shard_attributed_bytes)
            | set(self.shard_cpu_seconds)
        )
        return {
            shard: {
                "shared_network_bytes": float(
                    self.shard_shared_bytes.get(shard, 0)
                ),
                "attributed_network_bytes": float(
                    self.shard_attributed_bytes.get(shard, 0)
                ),
                "cpu_seconds": self.shard_cpu_seconds.get(shard, 0.0),
            }
            for shard in sorted(shards)
        }

    def as_dict(self) -> dict[str, float]:
        row = {
            "queries_served": float(self.queries_served),
            "queries_executed": float(self.queries_executed),
            "queries_shed": float(self.queries_shed),
            "queries_degraded": float(self.queries_degraded),
            "queries_partial": float(self.queries_partial),
            "batches_run": float(self.batches_run),
            "largest_batch": float(self.largest_batch),
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_p95": self.batch_size_quantile(0.95),
            "frogs_launched": float(self.frogs_launched),
            "attributed_network_bytes": float(self.attributed_network_bytes),
            "shared_network_bytes": float(self.shared_network_bytes),
            "simulated_time_s": self.simulated_time_s,
            "amortization_ratio": self.amortization_ratio(),
        }
        for shard, costs in self.shard_breakdown().items():
            for key, value in costs.items():
                row[f"shard{shard}_{key}"] = value
        return row


@dataclass(frozen=True)
class _CacheEntry:
    """Cached outcome of one executed query (estimate + its report).

    ``degrade_level``/``error_bound`` record whether the estimate was
    computed under an admission-degraded config, so cache re-serves of
    a degraded answer keep reporting the accuracy they actually
    guarantee.  ``degraded_shards`` marks a partial merge (shards lost
    to a crash); partial entries resolve their waiting futures but are
    never *stored* in the cache — the next ask re-executes against the
    healed pool instead of re-serving the crash.
    """

    estimate: object
    report: RunReport
    batch_size: int
    degrade_level: int = 0
    error_bound: float | None = None
    degraded_shards: tuple[int, ...] = ()


class RankingService:
    """Serves personalized top-k PageRank queries over one graph.

    Parameters
    ----------
    graph:
        The served graph; ingress (partitioning + replication tables)
        is paid once inside the backend.  A
        :class:`~repro.dynamic.DynamicDiGraph` is also accepted: the
        service snapshots it for the backend and defaults the
        ``generation`` provider to the live graph's version counter, so
        churn invalidation is on by default (the served snapshot itself
        stays frozen — :class:`~repro.live.LiveRankingService` is the
        variant that refreshes the backend too).
    config:
        Default :class:`FrogWildConfig` for queries that don't override.
    num_machines, partitioner, cost_model, size_model, seed:
        Simulated-cluster construction, as everywhere in the repo.
    max_batch_size:
        Largest number of queries one batched traversal carries.
    cache_capacity, cache_ttl_s:
        TTL/LRU cache sizing; ``cache_capacity=0`` disables caching.
    clock:
        Injectable time source shared by the cache and the scheduler
        (tests and benchmarks use a
        :class:`~repro.serving.VirtualClock`).
    backend:
        Explicit :class:`~repro.serving.backend.ExecutionBackend`
        (overrides ``num_shards``), or a layout name: ``"local"``,
        ``"sharded"``, or ``"process"`` (a
        :class:`~repro.serving.ProcessPoolBackend` — one OS process
        per shard over shared-memory graph state; pair with
        :meth:`close` to tear the workers down).
    num_shards:
        ``> 1`` builds a :class:`~repro.serving.ShardedBackend` that
        splits the ``num_machines`` fleet into that many sub-clusters
        and fans every batch out across them.  ``None`` autotunes the
        shard count from the fleet size and the default config's frog
        budget (:func:`~repro.serving.choose_num_shards`).
    kernel:
        Batch-kernel tier forwarded to any backend this constructor
        builds (ignored when ``backend`` is an explicit instance):
        ``"fused"`` (default), ``"compiled"`` (Numba tier from
        :mod:`repro.core.kernels`; falls back to fused with one warning
        when Numba is absent) or ``"lane-loop"`` (reference loop).
    max_delay_s:
        Deadline for the scheduled path (:meth:`submit`): a partial
        batch dispatches once its oldest query has waited this long.
        ``None`` disables deadline dispatch (batches leave on fill or
        flush only).  The synchronous :meth:`query_batch` is unaffected
        — it always flushes immediately.
    generation:
        Injectable graph-generation counter mixed into every cache key
        (e.g. ``lambda: dynamic_graph.version``).  When the counter
        moves, previously cached rankings stop matching and re-execute
        — churn invalidation without TTL guesswork.  Defaults
        automatically when the service has a generation source: a
        :class:`~repro.dynamic.DynamicDiGraph` ``graph`` provides its
        version counter, and an explicit ``backend`` exposing a
        ``generation`` callable (e.g. :class:`~repro.live.EpochManager`)
        provides its epoch.  Note the scope here: this invalidates the
        *cache*; a plain RankingService keeps serving the snapshot its
        backend ingested at construction, so re-executions price
        against that snapshot until the backend is refreshed
        (:class:`~repro.live.LiveRankingService` does exactly that).
    admission:
        Optional :class:`~repro.traffic.AdmissionController`.  When
        set, every query that needs a *new* execution lane (cache hits
        and coalesced duplicates are free and never ruled on) is
        subject to its policy: past the queue bound the future fails
        fast with a typed :class:`~repro.errors.OverloadError`; under
        backlog the degradation ladder rewrites the query to a cheaper
        config whose Theorem-1 error bound rides on the answer.
    tracer:
        Optional :class:`~repro.traffic.QueryTracer`.  When set, every
        submitted query carries a per-query trace (enqueue → dispatch
        → resolve, with cache/coalesce/degrade/shed provenance) and
        the tracer folds them into streaming latency percentiles.
    on_shard_failure:
        Fail-soft policy forwarded to a ``backend="process"`` pool
        (``"fail"``, ``"partial"`` or ``"retry"``; see
        :class:`~repro.serving.ProcessPoolBackend`).  Ignored when the
        backend is an explicit instance or an in-process layout.
        Under ``"partial"`` a crash-degraded batch resolves its
        waiters with :attr:`RankingAnswer.degraded_shards` set and a
        recomputed (wider) Theorem-1 ``error_bound``, and is excluded
        from the answer cache.
    """

    def __init__(
        self,
        graph: DiGraph | None = None,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        partitioner: str = "random",
        max_batch_size: int = 16,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        clock: Callable[[], float] | None = None,
        backend: ExecutionBackend | str | None = None,
        num_shards: int | None = 1,
        max_delay_s: float | None = None,
        generation: Callable[[], int] | None = None,
        kernel: str = "fused",
        admission: "AdmissionController | None" = None,
        tracer: "QueryTracer | None" = None,
        on_shard_failure: str = "fail",
        store=None,
    ) -> None:
        from ..dynamic import DynamicDiGraph
        from .backend import _checked_store
        from .config import ServiceConfig

        #: The normalized construction config: the kwargs path and
        #: :meth:`from_config` are one path with two spellings, and
        #: this is where they meet (the mapping shim).
        self.service_config = ServiceConfig(
            config=config,
            num_machines=num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            backend=backend,
            num_shards=num_shards,
            kernel=kernel,
            on_shard_failure=on_shard_failure,
            store=store,
            max_batch_size=max_batch_size,
            cache_capacity=cache_capacity,
            cache_ttl_s=cache_ttl_s,
            max_delay_s=max_delay_s,
            clock=clock,
            generation=generation,
            admission=admission,
            tracer=tracer,
        )
        self.store = _checked_store(store)
        if graph is None and store is None:
            raise ConfigError("RankingService needs a graph or a store")
        if (
            graph is None
            and self.store is not None
            and not getattr(self.store, "out_of_core", False)
        ):
            # A RAM store is its own graph source; the out-of-core tier
            # resolves through the backend (which maps the spilled
            # snapshot instead of materializing one here).
            graph = self.store
        if isinstance(graph, DynamicDiGraph):
            # Serve a snapshot of the live graph, and default churn
            # invalidation to its version counter so callers no longer
            # have to plumb generation= by hand.
            source = graph
            graph = source.snapshot()
            if generation is None:
                generation = lambda: source.version  # noqa: E731
        if graph is not None and graph.num_vertices == 0:
            raise ConfigError("cannot serve an empty graph")
        if generation is None and self.store is not None:
            # Any store carries a monotone version counter; mixing it
            # into cache keys gives churn invalidation for free.
            live_store = self.store
            generation = lambda: live_store.version  # noqa: E731
        self.graph = graph
        self.default_config = config or FrogWildConfig(seed=seed)
        self.num_machines = num_machines
        self.seed = seed
        if backend is None or isinstance(backend, str):
            kind = backend
            if num_shards is None:
                num_shards = choose_num_shards(
                    num_machines, num_frogs=self.default_config.num_frogs
                )
            if kind is None:
                kind = "sharded" if num_shards > 1 else "local"
            if kind == "process":
                from .process_backend import ProcessPoolBackend

                backend = ProcessPoolBackend(
                    graph,
                    num_shards=num_shards,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                    on_shard_failure=on_shard_failure,
                    store=self.store,
                )
            elif kind == "sharded":
                backend = ShardedBackend(
                    graph,
                    num_shards=num_shards,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                    store=self.store,
                )
            elif kind == "local":
                backend = LocalBackend(
                    graph,
                    num_machines=num_machines,
                    partitioner=partitioner,
                    cost_model=cost_model,
                    size_model=size_model,
                    seed=seed,
                    kernel=kernel,
                    store=self.store,
                )
            else:
                raise ConfigError(
                    f"unknown backend {kind!r}: expected 'local', "
                    "'sharded' or 'process'"
                )
        if self.graph is None:
            # Out-of-core store: adopt the backend's mapped snapshot.
            self.graph = getattr(backend, "graph", None)
            if self.graph is None:
                raise ConfigError(
                    "an explicit backend without a graph attribute "
                    "requires graph= (or a RAM store)"
                )
        if generation is None:
            # A backend that knows its graph generation (the epoch-swap
            # proxy in repro.live) keys the cache by default.
            generation = getattr(backend, "generation", None)
        self.generation = generation
        self.backend = backend
        self._clock = clock or time.monotonic
        self.cache: TTLCache | None = (
            TTLCache(cache_capacity, cache_ttl_s, self._clock)
            if cache_capacity > 0
            else None
        )
        self.coalescer = QueryCoalescer(max_batch_size)
        self.scheduler = BatchScheduler(
            self._execute_batch,
            self.coalescer,
            max_delay_s=max_delay_s,
            clock=self._clock,
        )
        self.stats = ServiceStats()
        self.admission = admission
        self.tracer = tracer
        #: Calibration factor applied to a batch's simulated makespan
        #: when stamping virtual-clock resolve times.  The cost model's
        #: absolute seconds are arbitrary units; the traffic harness
        #: sets this to place offered load relative to modeled capacity
        #: (it uses the same factor for its busy-server gate, keeping
        #: queueing delays and service times on one time base).  Leave
        #: at 1.0 outside harness runs.
        self.service_time_scale = 1.0
        # Guards the cache, the stats and the in-flight dedup table
        # against the scheduler thread; reentrant because a fill
        # dispatch executes inline under the submitting call.
        self._lock = threading.RLock()
        self._inflight: dict[
            Hashable, list[tuple[RankingQuery, RankingFuture]]
        ] = {}
        # Degrade provenance of still-in-flight keys: level and
        # Theorem-1 bound, threaded into the cache entry at execution
        # so re-serves keep reporting their accuracy.
        self._degrade_info: dict[Hashable, tuple[int, float]] = {}

    @classmethod
    def from_config(
        cls, graph: DiGraph | None = None, config=None
    ) -> "RankingService":
        """Build a service from a typed :class:`~repro.serving.
        ServiceConfig` instead of the legacy kwargs spread.

        ``config=None`` means all defaults.  Equivalent by construction
        to ``cls(graph, **config.to_kwargs())`` — both paths normalize
        into the same dataclass (``service.service_config``).
        """
        from .config import ServiceConfig

        config = config if config is not None else ServiceConfig()
        if not isinstance(config, ServiceConfig):
            raise ConfigError(
                "from_config takes a ServiceConfig (got "
                f"{type(config).__name__}); pass FrogWildConfig via "
                "ServiceConfig(config=...)"
            )
        return cls(graph, **config.to_kwargs())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RankingService":
        """Run the deadline scheduler in a background thread."""
        self.scheduler.start()
        return self

    def stop(self) -> None:
        """Stop the scheduler thread, flushing pending queries.

        The backend stays usable (callers may keep issuing synchronous
        queries or restart the scheduler); :meth:`close` is the full
        teardown.
        """
        self.scheduler.stop(flush=True)

    def close(self) -> None:
        """Stop the scheduler and release the backend's resources.

        For a :class:`~repro.serving.ProcessPoolBackend` (or an epoch
        proxy wrapping one) this terminates the worker processes and
        unlinks their shared-memory segments; backends without a
        ``close`` are unaffected.
        """
        self.stop()
        closer = getattr(self.backend, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "RankingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def pump(self) -> int:
        """Dispatch deadline-expired batches now (virtual-clock mode)."""
        return self.scheduler.poll()

    def flush(self) -> int:
        """Dispatch everything pending, deadlines notwithstanding."""
        return self.scheduler.flush()

    @property
    def clock(self) -> Callable[[], float]:
        """The injectable time source this service runs on."""
        return self._clock

    @property
    def replication(self):
        """The backend's replication tables (None when sharded)."""
        return getattr(self.backend, "replication", None)

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int = 10,
        weights: Sequence[float] | np.ndarray | None = None,
        config: FrogWildConfig | None = None,
    ) -> RankingAnswer:
        """Synchronous single-query API (a batch of one)."""
        return self.query_batch([self._make_query(seeds, k, weights, config)])[0]

    def query_batch(
        self, queries: Sequence[RankingQuery]
    ) -> list[RankingAnswer]:
        """Serve many queries at once; answers come back in query order.

        Cache hits are answered immediately; misses are coalesced into
        config-pure batches (duplicates within the call collapse into
        one population) and executed through the backend right away —
        the synchronous path is a zero-delay schedule: submit all, then
        flush.
        """
        if not queries:
            return []
        # Validate the whole batch before touching cache or coalescer:
        # one malformed query must fail the call atomically, not abort
        # mid-drain with its batchmates' work half done.
        self._validate(queries)
        submitted: list[tuple[RankingFuture, Hashable]] = []
        try:
            for query in queries:
                submitted.append(self._submit_validated(query))
            # Flush only this call's own lanes: other callers'
            # deadline-scheduled partial batches keep accumulating.
            self.scheduler.flush_payloads(key for _, key in submitted)
        except BaseException as error:
            # Restore the old drain's atomic failure semantics: lanes
            # of this call still queued (e.g. after a fill dispatch
            # raised mid-submission) are abandoned, never left behind
            # to execute as ghost work on someone else's flush.
            abandoned = self.scheduler.discard_payloads(
                [key for _, key in submitted]
            )
            with self._lock:
                waiters = [
                    waiter
                    for entry in abandoned
                    for waiter in self._inflight.pop(entry.payload, [])
                ]
            for _, future in waiters:
                future._fail(error)
            raise
        return [future.result() for future, _ in submitted]

    def submit(
        self,
        seeds: Sequence[int] | np.ndarray,
        k: int = 10,
        weights: Sequence[float] | np.ndarray | None = None,
        config: FrogWildConfig | None = None,
    ) -> RankingFuture:
        """Schedule one query; returns a future resolved on dispatch."""
        return self.submit_query(self._make_query(seeds, k, weights, config))

    def submit_query(self, query: RankingQuery) -> RankingFuture:
        """Schedule one normalized query through the batch scheduler.

        Cache hits resolve immediately; misses wait until their batch
        fills, their deadline expires (requires a started scheduler or
        explicit :meth:`pump` calls), or the service is flushed.
        """
        self._validate([query])
        future, _ = self._submit_validated(query)
        return future

    def cache_stats(self) -> dict[str, float]:
        """The cache's counters (empty dict when caching is disabled)."""
        return {} if self.cache is None else self.cache.stats.as_dict()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_query(self, seeds, k, weights, config) -> RankingQuery:
        return RankingQuery(
            seeds=tuple(np.atleast_1d(np.asarray(seeds)).tolist()),
            k=k,
            weights=None if weights is None else tuple(
                np.atleast_1d(np.asarray(weights)).tolist()
            ),
            config=config,
        )

    def _validate(self, queries: Sequence[RankingQuery]) -> None:
        num_vertices = self.graph.num_vertices
        for query in queries:
            if max(query.seeds) >= num_vertices:
                raise ConfigError(
                    f"seed ids out of range for a {num_vertices}-vertex "
                    f"graph: {query.seeds}"
                )

    def _cache_key(self, query: RankingQuery) -> Hashable:
        """Cache identity: the query's key plus the graph generation.

        With an injected generation counter, a churned graph bumps the
        counter and every previously cached ranking silently misses —
        invalidation is exact instead of a TTL guess.
        """
        base = query.cache_key(self.default_config)
        if self.generation is None:
            return base
        return (int(self.generation()), base)

    def _try_attach(
        self,
        key: Hashable,
        query: RankingQuery,
        future: RankingFuture,
        now: float,
    ) -> bool:
        """Serve ``future`` from cache or join an in-flight lane.

        Returns False when a new execution lane is needed.  Caller
        holds the service lock.
        """
        trace = future.trace
        entry = None if self.cache is None else self.cache.get(key)
        if entry is not None:
            # queries_served counts *answered* queries (a failed
            # execution never inflates it), so it ticks at resolve
            # time here and in _execute_batch.
            self.stats.queries_served += 1
            if trace is not None:
                trace.status = "served"
                trace.cached = True
                trace.dispatch_s = now
                trace.resolve_s = now
                trace.batch_size = entry.batch_size
                trace.supersteps = entry.report.supersteps
                trace.frogs = entry.estimate.num_frogs
                if entry.degrade_level and not trace.degrade_level:
                    trace.degrade_level = entry.degrade_level
                    trace.error_bound = entry.error_bound
                self.tracer.complete(trace)
            future._resolve(self._answer(query, entry, cached=True))
            return True
        waiters = self._inflight.get(key)
        if waiters is not None:
            # A duplicate of an already queued query: ride its lane.
            if trace is not None:
                trace.coalesced = True
            waiters.append((query, future))
            return True
        return False

    def _submit_validated(
        self, query: RankingQuery
    ) -> tuple[RankingFuture, Hashable]:
        """Submit one validated query; returns (future, cache key)."""
        future = RankingFuture(query)
        with self._lock:
            now = self._clock()
            if self.tracer is not None:
                future.trace = self.tracer.begin(query.seeds, query.k, now)
            key = self._cache_key(query)
            if self._try_attach(key, query, future, now):
                return future, key
            # A new execution lane is needed — the only point admission
            # control rules on: cache hits and coalesced duplicates add
            # no cluster load and are always served.
            if self.admission is not None:
                decision = self.admission.decide(
                    self.scheduler.pending_count()
                )
                if decision.action == "shed":
                    self.stats.queries_shed += 1
                    if future.trace is not None:
                        future.trace.status = "shed"
                        future.trace.shed_depth = decision.depth
                        future.trace.resolve_s = now
                        self.tracer.complete(future.trace)
                    future._fail(
                        OverloadError(
                            f"query shed: {decision.depth} pending >= "
                            f"bound {decision.limit}",
                            depth=decision.depth,
                            limit=decision.limit,
                        )
                    )
                    return future, key
                if decision.action == "degrade":
                    base = query.effective_config(self.default_config)
                    degraded = self.admission.degraded_config(
                        base, decision.level
                    )
                    if degraded is not base:
                        bound = self.admission.error_bound(
                            degraded, query.k, self.graph.num_vertices
                        )
                        query = replace(query, config=degraded)
                        future.query = query
                        key = self._cache_key(query)
                        self.stats.queries_degraded += 1
                        if future.trace is not None:
                            future.trace.degrade_level = decision.level
                            future.trace.error_bound = bound
                        # The degraded variant may itself be cached or
                        # already in flight under its own key.
                        if self._try_attach(key, query, future, now):
                            return future, key
                        self._degrade_info[key] = (decision.level, bound)
            self._inflight[key] = [(query, future)]
            # Enqueue under the same lock that registered the in-flight
            # entry: a concurrent duplicate's flush must find either
            # the queued entry or a dispatch already in progress, never
            # a gap it would block on forever.
            full = self.scheduler.enqueue(
                query, self.default_config, payload=key
            )
        self.scheduler.dispatch_filled(full)
        return future, key

    def _execute_batch(
        self, config: FrogWildConfig, entries: list[PendingQuery]
    ) -> None:
        """Scheduler dispatch target: run one config-pure batch."""
        queries = [entry.query for entry in entries]
        resolved: list[tuple[RankingQuery, RankingFuture, _CacheEntry]] = []
        dispatch_now = self._clock()
        try:
            outcome = self.backend.run_batch(config, queries)
            if len(outcome.lanes) != len(queries):
                raise EngineError(
                    f"backend answered {len(outcome.lanes)} lanes for "
                    f"{len(queries)} queries; the ExecutionBackend "
                    "contract requires lanes[i] to answer queries[i]"
                )
            # Under a virtual clock the batch's simulated makespan IS
            # its service time: answers resolve that much later, so
            # traced latencies are simulated-cluster latencies.
            resolve_now = (
                dispatch_now
                + outcome.simulated_time_s * self.service_time_scale
                if isinstance(self._clock, VirtualClock)
                else None
            )
            degraded_shards = tuple(
                getattr(outcome, "degraded_shards", ()) or ()
            )
            with self._lock:
                self._record_outcome(outcome, len(entries))
                for entry, lane in zip(entries, outcome.lanes):
                    info = self._degrade_info.pop(entry.payload, None)
                    cached = _CacheEntry(
                        estimate=lane.estimate,
                        report=lane.report,
                        batch_size=len(entries),
                        degrade_level=0 if info is None else info[0],
                        error_bound=None if info is None else info[1],
                        degraded_shards=degraded_shards,
                    )
                    self.stats.frogs_launched += lane.estimate.num_frogs
                    self.stats.attributed_network_bytes += (
                        lane.report.network_bytes
                    )
                    if self.cache is not None and not degraded_shards:
                        # Partial answers resolve their waiters but are
                        # never cached: the next ask of the same key
                        # re-executes against the healed pool.
                        self.cache.put(entry.payload, cached)
                    for query, future in self._inflight.pop(
                        entry.payload, []
                    ):
                        resolved.append((query, future, cached))
                if degraded_shards:
                    self.stats.queries_partial += len(entries)
        except BaseException as error:
            # Fail every future this batch owes an answer to — both
            # the keys not yet popped from the in-flight table and any
            # popped-but-unresolved waiters — so nothing ever hangs on
            # a dead lane and the dedup table never poisons.
            with self._lock:
                waiters = [
                    (query, future)
                    for entry in entries
                    for query, future in self._inflight.pop(
                        entry.payload, []
                    )
                ]
                for entry in entries:
                    self._degrade_info.pop(entry.payload, None)
            failed_at = self._clock()
            for _, future, _ in resolved:
                self._trace_failed(future, failed_at)
                future._fail(error)
            for _, future in waiters:
                self._trace_failed(future, failed_at)
                future._fail(error)
            raise
        with self._lock:
            self.stats.queries_served += len(resolved)
        for query, future, cached in resolved:
            trace = future.trace
            if self.tracer is not None and trace is not None:
                trace.status = "served"
                trace.dispatch_s = dispatch_now
                trace.resolve_s = (
                    self._clock() if resolve_now is None else resolve_now
                )
                trace.batch_size = cached.batch_size
                trace.supersteps = cached.report.supersteps
                trace.frogs = cached.estimate.num_frogs
                if cached.degrade_level and not trace.degrade_level:
                    trace.degrade_level = cached.degrade_level
                    trace.error_bound = cached.error_bound
                self.tracer.complete(trace)
            future._resolve(self._answer(query, cached, cached=False))

    def _trace_failed(self, future: RankingFuture, now: float) -> None:
        trace = future.trace
        if self.tracer is None or trace is None:
            return
        trace.status = "failed"
        trace.resolve_s = now
        self.tracer.complete(trace)

    def _record_outcome(self, outcome: BatchOutcome, batch_size: int) -> None:
        stats = self.stats
        stats.batches_run += 1
        stats.record_batch_size(batch_size)
        stats.queries_executed += batch_size
        stats.shared_network_bytes += outcome.shared_network_bytes
        stats.simulated_time_s += outcome.simulated_time_s
        for cost in outcome.shards:
            stats.shard_shared_bytes[cost.shard] = (
                stats.shard_shared_bytes.get(cost.shard, 0)
                + cost.shared_network_bytes
            )
            stats.shard_attributed_bytes[cost.shard] = (
                stats.shard_attributed_bytes.get(cost.shard, 0)
                + cost.attributed_network_bytes
            )
            stats.shard_cpu_seconds[cost.shard] = (
                stats.shard_cpu_seconds.get(cost.shard, 0.0)
                + cost.cpu_seconds
            )

    def _answer(
        self, query: RankingQuery, entry: _CacheEntry, cached: bool
    ) -> RankingAnswer:
        vertices, scores = entry.estimate.top_k_with_scores(query.k)
        error_bound = entry.error_bound
        if entry.degrade_level and self.admission is not None:
            # Recompute for *this* query's k: the cached bound was
            # computed for the executing query's k, and the sampling
            # term of Theorem 1 scales with sqrt(k).
            error_bound = self.admission.error_bound(
                query.effective_config(self.default_config),
                query.k,
                self.graph.num_vertices,
            )
        if entry.degraded_shards:
            # Partial merge: the bound must describe the population
            # that actually ran, which the merged estimate's num_frogs
            # records exactly.  Same machinery as admission's degraded
            # bound — only the frog count differs.
            delta = self.admission.delta if self.admission else 0.1
            pi_max = self.admission.pi_max if self.admission else 0.01
            error_bound = config_error_bound(
                query.effective_config(self.default_config),
                query.k,
                self.graph.num_vertices,
                delta=delta,
                pi_max=pi_max,
                num_frogs=max(1, entry.estimate.num_frogs),
            )
        return RankingAnswer(
            query=query,
            vertices=vertices,
            scores=scores,
            cached=cached,
            batch_size=entry.batch_size,
            report=entry.report,
            degrade_level=entry.degrade_level,
            error_bound=error_bound,
            degraded_shards=entry.degraded_shards,
        )
