"""Deadline-based batch scheduling: fill-or-deadline dispatch.

Synchronously draining the coalescer only batches well when callers
arrive in bursts.  Production traffic trickles — one query per tick —
and a synchronous drain would execute every query alone, forfeiting all
amortization.  :class:`BatchScheduler` implements the policy the
:class:`~repro.serving.batching.QueryCoalescer` was designed for:

* **fill** — the moment a config group reaches ``max_batch_size`` it
  dispatches (inline, in the submitting thread: no latency is saved by
  waiting once the batch cannot grow);
* **deadline** — a partial group dispatches when its *oldest* entry has
  waited ``max_delay_s``, bounding worst-case queueing latency while
  letting trickle traffic accumulate into real batches;
* **flush** — everything pending dispatches immediately (service
  shutdown, or the synchronous ``query_batch`` path, which is just a
  zero-delay schedule).

The clock is injectable: tests and benchmarks drive a
:class:`VirtualClock` and call :meth:`BatchScheduler.poll` explicitly
(deterministic, no sleeps), while a live service calls
:meth:`BatchScheduler.start` to run a background thread that sleeps
until the next deadline and wakes early when submissions arrive.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..core import FrogWildConfig
from ..errors import ConfigError
from .batching import PendingQuery, QueryCoalescer, RankingQuery

__all__ = ["VirtualClock", "SchedulerStats", "BatchScheduler"]


class VirtualClock:
    """A manually advanced clock for deterministic scheduling tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ConfigError("clocks only move forward")
        self.now += dt
        return self.now


@dataclass
class SchedulerStats:
    """Why batches left the queue, over a scheduler's lifetime."""

    fill_dispatches: int = 0
    deadline_dispatches: int = 0
    flush_dispatches: int = 0
    queries_dispatched: int = 0

    def batches_dispatched(self) -> int:
        return (
            self.fill_dispatches
            + self.deadline_dispatches
            + self.flush_dispatches
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "fill_dispatches": float(self.fill_dispatches),
            "deadline_dispatches": float(self.deadline_dispatches),
            "flush_dispatches": float(self.flush_dispatches),
            "batches_dispatched": float(self.batches_dispatched()),
            "queries_dispatched": float(self.queries_dispatched),
        }


class BatchScheduler:
    """Dispatches coalesced batches when they fill or their deadline hits.

    Parameters
    ----------
    dispatch:
        Callback ``(config, entries)`` executing one config-pure batch;
        entries are :class:`PendingQuery` rows carrying the submitter's
        payload.  Called without internal locks held, so it may submit
        further queries or take its own locks freely.
    coalescer:
        The config-pure queue; shared with the owning service.
    max_delay_s:
        Deadline for the oldest entry of a partial batch.  ``None``
        disables deadline dispatch: partial batches leave only via
        :meth:`flush` (the synchronous path) or a fill.
    clock:
        Injectable time source; defaults to :func:`time.monotonic`.
    hold_filled:
        When True, :meth:`enqueue` keeps full batches queued instead
        of returning them for inline dispatch.  The traffic harness
        sets this: under its single-server queue model a full batch
        must still wait for the server to free up, and dispatches one
        at a time via :meth:`dispatch_next`.
    """

    def __init__(
        self,
        dispatch: Callable[[FrogWildConfig, list[PendingQuery]], None],
        coalescer: QueryCoalescer,
        max_delay_s: float | None = None,
        clock: Callable[[], float] | None = None,
        hold_filled: bool = False,
    ) -> None:
        if max_delay_s is not None and max_delay_s < 0:
            raise ConfigError("max_delay_s must be non-negative (or None)")
        self._dispatch = dispatch
        self.coalescer = coalescer
        self.max_delay_s = max_delay_s
        self.hold_filled = hold_filled
        self._clock = clock or time.monotonic
        self._cond = threading.Condition()
        self._thread: threading.Thread | None = None
        # Each loop thread watches its *own* stop event: a start()
        # racing a stop() must not resurrect the old thread's stop
        # signal (a shared flag would leave stop() joining forever).
        self._stop_event: threading.Event | None = None
        self.stats = SchedulerStats()
        self._active_dispatches = 0
        #: Last exception a background-thread dispatch raised.  The
        #: failing batch's futures already carry it; this surfaces it
        #: to operators polling the scheduler.
        self.last_error: BaseException | None = None

    @property
    def active_dispatches(self) -> int:
        """Batches currently inside the dispatch callback.

        A live-refresh layer swapping backend epochs reads this gauge to
        know whether any batch is mid-execution: in-flight batches keep
        the epoch they pinned at dispatch, so a swap concurrent with a
        non-zero gauge is safe but worth recording.
        """
        with self._cond:
            return self._active_dispatches

    # ------------------------------------------------------------------
    # Submission and dispatch
    # ------------------------------------------------------------------
    def submit(
        self,
        query: RankingQuery,
        default: FrogWildConfig,
        payload: object = None,
    ) -> None:
        """Enqueue one query; dispatches inline if its batch fills."""
        self.dispatch_filled(self.enqueue(query, default, payload))

    def enqueue(self, query, default, payload: object = None):
        """Add one query *without* dispatching; returns filled batches.

        Split from :meth:`submit` so the service can enqueue under its
        own lock (making "registered in-flight" and "visible to a
        flush" one atomic step) and run the returned filled batches
        after releasing it via :meth:`dispatch_filled`.
        """
        with self._cond:
            self.coalescer.add(
                query, default, arrival=self._clock(), payload=payload
            )
            full = (
                [] if self.hold_filled else self.coalescer.pop_full_entries()
            )
            self._cond.notify_all()
        return full

    def dispatch_filled(self, batches) -> int:
        """Dispatch batches returned by :meth:`enqueue`."""
        return self._run_batches(batches, "fill")

    def pending_count(self) -> int:
        with self._cond:
            return self.coalescer.pending_count()

    def next_deadline(self) -> float | None:
        """When the oldest pending group becomes due (None: never)."""
        if self.max_delay_s is None:
            return None
        with self._cond:
            return self.coalescer.next_deadline(self.max_delay_s)

    def next_ready(self, now: float | None = None) -> float | None:
        """Earliest instant *any* batch is dispatchable, or ``None``.

        A full batch is dispatchable immediately (returns ``now``);
        otherwise the oldest pending group's deadline, if a deadline
        policy exists.  The traffic harness uses this to interleave
        dispatch events with arrivals in strict virtual-time order.
        """
        with self._cond:
            if self.coalescer.has_full():
                return self._clock() if now is None else now
            if self.max_delay_s is None:
                return None
            return self.coalescer.next_deadline(self.max_delay_s)

    def dispatch_next(self, now: float | None = None) -> int:
        """Dispatch at most **one** ready batch; returns its size.

        Full batches first, then the earliest-due partial group's
        oldest slice; 0 when nothing is dispatchable at ``now``.  This
        is the serialized companion of :meth:`poll` for callers
        modelling a single busy server (the traffic harness).
        """
        now = self._clock() if now is None else now
        with self._cond:
            popped = self.coalescer.pop_next_entries(now, self.max_delay_s)
        if popped is None:
            return 0
        config, entries, kind = popped
        self._run_batches([(config, entries)], kind)
        return len(entries)

    def poll(self, now: float | None = None) -> int:
        """Dispatch every group whose deadline has expired.

        Returns the number of batches dispatched.  Virtual-clock users
        call this after advancing time; the background thread calls it
        on every wake-up.
        """
        if self.max_delay_s is None:
            return 0
        with self._cond:
            due = self.coalescer.pop_due_entries(
                self._clock() if now is None else now, self.max_delay_s
            )
        return self._run_batches(due, "deadline")

    def flush(self) -> int:
        """Dispatch everything pending, deadlines notwithstanding."""
        with self._cond:
            batches = self.coalescer.drain_entries()
        return self._run_batches(batches, "flush")

    def discard_payloads(self, payloads) -> list[PendingQuery]:
        """Remove entries carrying these payloads *without* dispatching.

        The service's error paths use this to abandon a failed call's
        still-queued lanes so they never execute as ghost work on an
        unrelated caller's flush.
        """
        with self._cond:
            batches = self.coalescer.pop_payload_entries(set(payloads))
        return [entry for _, entries in batches for entry in entries]

    def flush_payloads(self, payloads) -> int:
        """Dispatch only the entries carrying these payloads.

        The synchronous service path uses this so a ``query_batch``
        call dispatches exactly what it is waiting on, without
        force-dispatching other callers' deadline-scheduled partial
        batches.
        """
        with self._cond:
            batches = self.coalescer.pop_payload_entries(set(payloads))
        return self._run_batches(batches, "flush")

    def _run_batches(self, batches, kind: str) -> int:
        """Dispatch every batch, even if an earlier one raises.

        Batches were already popped from the coalescer: skipping the
        rest on a failure would strand their submitters' futures
        forever.  Each batch dispatches (the service fails its own
        futures on error); the first error re-raises afterwards.
        """
        first_error: BaseException | None = None
        for config, entries in batches:
            with self._cond:
                self._active_dispatches += 1
            try:
                self._dispatch(config, entries)
            except BaseException as error:
                if first_error is None:
                    first_error = error
            finally:
                with self._cond:
                    self._active_dispatches -= 1
            with self._cond:
                setattr(
                    self.stats,
                    f"{kind}_dispatches",
                    getattr(self.stats, f"{kind}_dispatches") + 1,
                )
                self.stats.queries_dispatched += len(entries)
        if first_error is not None:
            raise first_error
        return len(batches)

    # ------------------------------------------------------------------
    # Background-thread lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BatchScheduler":
        """Run the deadline loop in a daemon thread (idempotent).

        Requires a real-time clock: ``Condition.wait`` elapses in real
        seconds, so deadlines anchored on a manually advanced clock
        would never fire and futures would hang.
        """
        if isinstance(self._clock, VirtualClock):
            raise ConfigError(
                "the background deadline loop needs a real-time clock; "
                "with a VirtualClock, drive dispatch explicitly via "
                "poll()/pump() after advancing time"
            )
        with self._cond:
            if self._thread is not None:
                return self
            stop_event = threading.Event()
            self._stop_event = stop_event
            self._thread = threading.Thread(
                target=self._loop,
                args=(stop_event,),
                name="ranking-batch-scheduler",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, flush: bool = True) -> None:
        """Stop the loop; by default flush whatever is still queued.

        Shutdown is serialized: the loop thread is signalled, *joined*,
        and only then unregistered — so :attr:`running` never reports
        ``False`` while the loop may still be dispatching, and the
        final flush cannot interleave with an in-flight ``poll()``
        dispatch (the loop has provably exited before it runs).
        """
        with self._cond:
            thread = self._thread
            stop_event = self._stop_event
            if stop_event is not None:
                stop_event.set()
            self._cond.notify_all()
        if thread is not None:
            thread.join()
            with self._cond:
                # Guarded identity check: a concurrent start() may have
                # installed a fresh thread already; only clear our own.
                if self._thread is thread:
                    self._thread = None
                    self._stop_event = None
        if flush:
            self.flush()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _loop(self, stop_event: threading.Event) -> None:
        while True:
            with self._cond:
                if stop_event.is_set():
                    return
                deadline = (
                    None
                    if self.max_delay_s is None
                    else self.coalescer.next_deadline(self.max_delay_s)
                )
                timeout = (
                    None
                    if deadline is None
                    else max(0.0, deadline - self._clock())
                )
                if timeout is None or timeout > 0:
                    self._cond.wait(timeout)
                if stop_event.is_set():
                    return
            # One failing batch must not kill the loop: its futures
            # already carry the error, and every other submitter still
            # needs deadline dispatches to keep happening.
            try:
                self.poll()
            except BaseException as error:
                with self._cond:
                    self.last_error = error
