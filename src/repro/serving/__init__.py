"""Top-k ranking as a service: scheduling, sharding, caching, metering.

This package is the production face of the reproduction — the answer
to "how does FrogWild serve heavy multi-user traffic?".  Its design
rests on two facts from the paper:

* **Lemma 16** (restart at the birth law): *any* birth distribution
  turns the frog process into Personalized PageRank with that teleport
  vector.  A user's top-k query is therefore nothing but a frog
  population with a personalized start law — and B concurrent queries
  are B populations that can ride **one** traversal of the partitioned
  graph (:class:`~repro.core.batched.BatchedFrogWildRunner`), paying
  the topology gather, the BSP barriers and the per-message wire
  headers once per superstep instead of once per query.  Because frogs
  are *independent* walkers, a population also shards: split a query's
  frog budget across shard sub-clusters and the per-shard counters
  merge back by exact summation.
* **Definition 5 / Theorem 1** (the counter estimate): a completed
  estimate is an immutable counter vector whose top-k answers any k
  by prefix — ideal cache material.  The service keys its TTL/LRU
  cache on ``(generation, seeds, weights, config)`` so repeated
  queries cost zero cluster work, with an injectable generation
  counter invalidating exactly on graph churn and TTL bounding
  staleness as a fallback.

Module map: :mod:`~repro.serving.cache` (TTL/LRU store),
:mod:`~repro.serving.batching` (query normalization and the
config-pure, deadline-aware coalescer), :mod:`~repro.serving.backend`
(the :class:`ExecutionBackend` seam: :class:`LocalBackend` single
cluster, :class:`ShardedBackend` shard fan-out with exact cost
partitioning), :mod:`~repro.serving.process_backend`
(:class:`ProcessPoolBackend`: the same shard fan-out on one OS process
per shard over shared-memory graph state, for real multi-core
scale-out), :mod:`~repro.serving.supervisor`
(:class:`WorkerSupervisor`: liveness heartbeats, crash respawn and
shared-memory hygiene behind the pool's fail-soft
``on_shard_failure`` policies), :mod:`~repro.serving.scheduler`
(fill-or-deadline
:class:`BatchScheduler`, virtual-clock or background-thread driven),
:mod:`~repro.serving.service` (the :class:`RankingService` façade
tying cache → coalescer → scheduler → backend together, with per-query
cost attribution for honest metering).

Benchmarked by ``benchmarks/bench_serving.py``; demonstrated end to
end by ``examples/ranking_service.py``, ``examples/sharded_service.py``
and the ``repro serve-bench`` CLI command.
"""

from .backend import (
    BatchOutcome,
    ExecutionBackend,
    LocalBackend,
    QueryOutcome,
    ShardCost,
    ShardedBackend,
    choose_num_shards,
)
from .batching import PendingQuery, QueryCoalescer, RankingQuery
from .cache import CacheStats, TTLCache
from .config import ServiceConfig
from .process_backend import ProcessPoolBackend
from .scheduler import BatchScheduler, SchedulerStats, VirtualClock
from .supervisor import SupervisorStats, WorkerSupervisor
from .service import (
    RankingAnswer,
    RankingFuture,
    RankingService,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "TTLCache",
    "QueryCoalescer",
    "PendingQuery",
    "RankingQuery",
    "BatchOutcome",
    "QueryOutcome",
    "ShardCost",
    "ExecutionBackend",
    "LocalBackend",
    "ShardedBackend",
    "ProcessPoolBackend",
    "WorkerSupervisor",
    "SupervisorStats",
    "choose_num_shards",
    "BatchScheduler",
    "SchedulerStats",
    "VirtualClock",
    "RankingAnswer",
    "RankingFuture",
    "RankingService",
    "ServiceConfig",
    "ServiceStats",
]
