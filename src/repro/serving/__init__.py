"""Top-k ranking as a service: batching, caching, cost attribution.

This package is the production face of the reproduction — the answer
to "how does FrogWild serve heavy multi-user traffic?".  Its design
rests on two facts from the paper:

* **Lemma 16** (restart at the birth law): *any* birth distribution
  turns the frog process into Personalized PageRank with that teleport
  vector.  A user's top-k query is therefore nothing but a frog
  population with a personalized start law — and B concurrent queries
  are B populations that can ride **one** traversal of the partitioned
  graph (:class:`~repro.core.batched.BatchedFrogWildRunner`), paying
  the topology gather, the BSP barriers and the per-message wire
  headers once per superstep instead of once per query.
* **Definition 5 / Theorem 1** (the counter estimate): a completed
  estimate is an immutable counter vector whose top-k answers any k
  by prefix — ideal cache material.  The service keys its TTL/LRU
  cache on ``(seeds, weights, config)`` so repeated queries cost zero
  cluster work, with TTL bounding staleness on churning graphs.

Module map: :mod:`~repro.serving.cache` (TTL/LRU store),
:mod:`~repro.serving.batching` (query normalization and the
config-pure coalescer), :mod:`~repro.serving.service` (the
:class:`RankingService` façade tying cache → coalescer → batched
runner together, with per-query cost attribution for honest metering).

Benchmarked by ``benchmarks/bench_serving.py``; demonstrated end to
end by ``examples/ranking_service.py`` and the ``repro serve-bench``
CLI command.
"""

from .batching import QueryCoalescer, RankingQuery
from .cache import CacheStats, TTLCache
from .service import RankingAnswer, RankingService, ServiceStats

__all__ = [
    "CacheStats",
    "TTLCache",
    "QueryCoalescer",
    "RankingQuery",
    "RankingAnswer",
    "RankingService",
    "ServiceStats",
]
