"""Worker supervision for the fail-soft process pool.

The :class:`~repro.serving.ProcessPoolBackend` owns shard *processes*;
this module owns their *lifecycle*.  A :class:`WorkerSupervisor` is
attached to every pool at construction and does three jobs:

* **liveness** — ``check()`` pings every worker over its control pipe
  (``ping``/``pong`` with a nonce, so stale replies can't satisfy a
  fresh probe) and treats a dead process or a silent pipe as a crash;
  with ``heartbeat_s`` set on the backend, a daemon thread runs the
  check periodically so crashes between batches are healed off the
  batch critical path;
* **respawn** — ``revive_locked()`` replaces one worker: kill whatever
  is left of the old process, close its pipes, start a fresh process
  with fresh pipes and re-attach it to every epoch the pool currently
  serves (the worker protocol's normal ``attach`` handshake against
  the *existing* shared arenas — nothing is recomputed or copied);
* **hygiene** — after every respawn the pool's shared-memory namespace
  is swept (:meth:`~repro.cluster.SharedArena.sweep_orphans`), so a
  worker killed mid-attach can't leak ``/dev/shm`` segments.

Locking contract: the backend's ``_lock`` serializes batches,
refreshes and supervision.  Methods suffixed ``_locked`` assume the
caller already holds it (``run_batch`` revives crashed shards inline);
the public ``check()``/``start()``/``stop()`` entry points acquire it
themselves.  The supervisor never touches a control pipe outside the
lock — a heartbeat racing a batch's ``_collect`` would steal its
replies.

Respawn uses exponential backoff per shard (``respawn_backoff_s *
2**(consecutive_crashes - 1)``, capped at ``max_backoff_s``): a shard
that dies the moment it is revived — a poisoned core, a cgroup OOM
loop — slows down instead of burning CPU in a fork storm.  A healthy
batch result resets the shard's streak.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from ..cluster import SharedArena
from ..errors import ConfigError, EngineError, WorkerCrashError

__all__ = ["SupervisorStats", "WorkerSupervisor"]


@dataclass
class SupervisorStats:
    """Lifetime counters and event logs of one supervisor.

    The logs carry ``time.monotonic()`` stamps so recovery latency
    (kill observed → worker serving again) can be measured externally,
    e.g. by the chaos bench.
    """

    crashes_detected: int = 0
    respawns: int = 0
    respawn_failures: int = 0
    heartbeats: int = 0
    heartbeat_failures: int = 0
    segments_swept: int = 0
    #: ``(monotonic_stamp, shard, cause)`` per detected crash.
    crash_log: list[tuple[float, int, str]] = field(default_factory=list)
    #: ``(monotonic_stamp, shard, respawn_seconds)`` per successful
    #: respawn; the stamp marks the moment the new worker finished its
    #: attach handshake (i.e. is serving again).
    respawn_log: list[tuple[float, int, float]] = field(
        default_factory=list
    )

    def as_dict(self) -> dict[str, float]:
        return {
            "crashes_detected": float(self.crashes_detected),
            "respawns": float(self.respawns),
            "respawn_failures": float(self.respawn_failures),
            "heartbeats": float(self.heartbeats),
            "heartbeat_failures": float(self.heartbeat_failures),
            "segments_swept": float(self.segments_swept),
        }


class WorkerSupervisor:
    """Liveness, respawn and shm hygiene for one process pool's workers.

    Parameters
    ----------
    backend:
        The owning :class:`~repro.serving.ProcessPoolBackend`.  The
        supervisor reaches into its worker table and spawn/attach
        machinery; the two objects are one component split across two
        files, not an abstraction boundary.
    heartbeat_s:
        Period of the background liveness thread; ``None`` disables
        the thread (``check()`` can still be called explicitly, and
        in-batch revival always works).
    heartbeat_timeout_s:
        How long one ping may take before the worker is declared
        silently hung.  Deliberately much shorter than the backend's
        batch ``timeout_s`` — a ping costs the worker microseconds.
    respawn_backoff_s / max_backoff_s:
        Exponential-backoff base and cap for consecutive crashes of
        the same shard.
    """

    def __init__(
        self,
        backend,
        heartbeat_s: float | None = None,
        heartbeat_timeout_s: float = 5.0,
        respawn_backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
    ) -> None:
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ConfigError("heartbeat_s must be positive (or None)")
        if heartbeat_timeout_s <= 0:
            raise ConfigError("heartbeat_timeout_s must be positive")
        if respawn_backoff_s < 0:
            raise ConfigError("respawn_backoff_s must be non-negative")
        if max_backoff_s < respawn_backoff_s:
            raise ConfigError(
                "max_backoff_s must be >= respawn_backoff_s"
            )
        self.backend = backend
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.stats = SupervisorStats()
        #: Last exception a background heartbeat swallowed (the thread
        #: must survive anything), for post-mortems.
        self.last_error: BaseException | None = None
        self._consecutive: dict[int, int] = {}
        self._nonce = itertools.count(1)
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------
    # Lock-held primitives (callers hold ``backend._lock``)
    # ------------------------------------------------------------------
    def note_healthy_locked(self, shard: int) -> None:
        """Reset a shard's crash streak after a healthy interaction."""
        self._consecutive[shard] = 0

    def revive_locked(self, shard: int, cause: str = "died") -> None:
        """Replace one shard's worker and re-attach it to the live epochs.

        Raises :class:`~repro.errors.WorkerCrashError` (``cause=
        "respawn"``) if the replacement itself fails to come up; the
        dead handle stays in the slot so a later attempt can try again.
        """
        backend = self.backend
        self.stats.crashes_detected += 1
        self.stats.crash_log.append((time.monotonic(), shard, cause))
        started = time.monotonic()
        old = backend._workers[shard]
        if old.process.is_alive():
            old.process.kill()
        old.process.join(timeout=5.0)
        for endpoint in (old.control, old.channel):
            try:
                endpoint.close()
            except OSError:
                pass
        streak = self._consecutive.get(shard, 0)
        if streak > 0:
            time.sleep(
                min(
                    self.respawn_backoff_s * (2.0 ** (streak - 1)),
                    self.max_backoff_s,
                )
            )
        self._consecutive[shard] = streak + 1
        try:
            worker = backend._spawn_worker(shard)
            backend._workers[shard] = worker
            for epoch in sorted(backend._arenas):
                backend._attach_worker(worker, epoch)
        except EngineError as error:
            self.stats.respawn_failures += 1
            raise WorkerCrashError(
                f"shard {shard} respawn failed: {error}",
                shard=shard,
                epoch=backend._epoch,
                cause="respawn",
            ) from error
        # The crash may have interrupted an attach or left the old
        # worker's segments behind on exotic paths; sweeping here keeps
        # /dev/shm clean without waiting for close().
        self.stats.segments_swept += len(
            SharedArena.sweep_orphans(
                backend.arena_prefix, live=backend._live_segment_names()
            )
        )
        self.stats.respawns += 1
        now = time.monotonic()
        self.stats.respawn_log.append((now, shard, now - started))

    def ping_locked(self, shard: int) -> bool:
        """One liveness probe: does this worker answer a fresh ping?"""
        backend = self.backend
        worker = backend._workers[shard]
        nonce = next(self._nonce)
        self.stats.heartbeats += 1
        try:
            worker.control.send(("ping", nonce))
            deadline = time.monotonic() + self.heartbeat_timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerCrashError(
                        f"shard {shard} ping timed out",
                        shard=shard,
                        epoch=backend._epoch,
                        cause="timeout",
                    )
                message = backend._control_reply(
                    worker, "pong", timeout_s=remaining
                )
                # A stale pong (from a probe that timed out earlier)
                # must not vouch for the worker now.
                if len(message) > 1 and message[1] == nonce:
                    return True
        except (OSError, ValueError, EngineError):
            self.stats.heartbeat_failures += 1
            return False

    # ------------------------------------------------------------------
    # Public entry points (acquire ``backend._lock``)
    # ------------------------------------------------------------------
    def check(self) -> int:
        """Probe every worker, revive the dead; returns revivals done.

        Safe to call at any time from any thread; skips silently when
        the pool is closed (or not yet populated).  A respawn that
        itself fails is recorded and retried on the next check rather
        than propagated — background supervision must not kill its own
        thread.
        """
        revived = 0
        backend = self.backend
        with backend._lock:
            if backend._closed or not backend._workers:
                return 0
            for shard in range(len(backend._workers)):
                worker = backend._workers[shard]
                if worker.process.is_alive() and self.ping_locked(shard):
                    self.note_healthy_locked(shard)
                    continue
                cause = (
                    "timeout" if worker.process.is_alive() else "died"
                )
                try:
                    self.revive_locked(shard, cause=cause)
                except EngineError as error:
                    self.last_error = error
                    continue
                revived += 1
        return revived

    def start(self) -> None:
        """Run :meth:`check` every ``heartbeat_s`` on a daemon thread."""
        if self.heartbeat_s is None:
            raise ConfigError(
                "start() needs heartbeat_s; pass it to the backend (or "
                "call check() explicitly)"
            )
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()

        def _loop() -> None:
            while not self._stop_event.wait(self.heartbeat_s):
                try:
                    self.check()
                except BaseException as error:  # pragma: no cover
                    self.last_error = error

        self._thread = threading.Thread(
            target=_loop, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the heartbeat thread (idempotent; respawns stay usable)."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)
        self._thread = None
