"""Execution backends: where a drained batch of ranking queries runs.

The serving layer is split at an :class:`ExecutionBackend` seam: the
:class:`~repro.serving.RankingService` owns caching, coalescing and
scheduling, while a backend owns *cluster layout* — how a config-pure
batch of queries turns into traversals of the partitioned graph.  Two
backends ship:

* :class:`LocalBackend` — the original single-cluster path: one
  :class:`~repro.core.batched.BatchedFrogWildRunner` traversal over one
  partitioned ingress (paid once, reused by every batch).
* :class:`ShardedBackend` — a scale-out tier: the machine fleet is
  split into ``num_shards`` sub-clusters, each holding its own
  partitioned ingress of the graph (per-shard masters and replication
  tables, built once).  Because frogs are independent walkers, the
  shardable unit is the *population*: each query's frog budget is split
  across shards, every shard advances its slice of every population
  through its own batched traversal, and the per-shard surviving-frog
  counters merge by exact summation before top-k
  (:func:`~repro.core.batched.merge_shard_results`).  Per-query cost
  attribution merges the same way — shard ledgers add, so the billed
  bytes partition exactly across shards.

Both expose the same contract, so the service, the scheduler, the CLI
and the benchmarks are layout-agnostic.  The seam is also where the
live layer plugs in: :class:`repro.live.EpochManager` is an
atomically swappable backend *proxy* that lets a refreshed graph
replace either layout between batches.  The kernel tiers plug in here
too: both backends run the lane-major fused batch kernel by default,
and ``kernel=`` selects either the pre-fusion ``"lane-loop"``
reference or the Numba ``"compiled"`` tier (single-pass loops over
int32-narrowed tables; bitwise identical to fused, falls back to it
with a warning when numba is absent — see
:mod:`repro.core.kernels`).  The config's ``sync_mode`` /
``wire_dedupe`` fields flow through ``run_batch`` unchanged — a
sharded deployment dedupes frog records within each shard's wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..cluster import (
    CostModel,
    MessageSizeModel,
    ReplicationTable,
    make_partitioner,
)
from ..core import (
    BatchQuery,
    FrogWildConfig,
    PageRankEstimate,
    merge_shard_results,
    run_frogwild_batch,
    seed_distribution,
)
from ..engine import RunReport, build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from .batching import RankingQuery

__all__ = [
    "QueryOutcome",
    "ShardCost",
    "BatchOutcome",
    "ExecutionBackend",
    "LocalBackend",
    "ShardedBackend",
    "choose_num_shards",
]


def choose_num_shards(
    num_machines: int,
    replication: int = 4,
    num_frogs: int | None = None,
    min_frogs_per_shard: int = 2_000,
    min_machines_per_shard: int = 2,
) -> int:
    """Pick a shard count from fleet size, ingress budget and frog budget.

    Three ceilings, the smallest wins (floored at one shard):

    * **fleet** — each shard needs at least ``min_machines_per_shard``
      machines to be a meaningful sub-cluster (a one-machine shard has
      no network to amortize);
    * **replication** — every shard holds a *complete* partitioned
      replica of the graph (the shardable unit is the frog population,
      not the edge set), so ingress memory grows linearly in the shard
      count; ``replication`` caps how many full copies the deployment
      tolerates;
    * **frogs** — each query's budget splits across shards
      (cf. :meth:`ShardedBackend._shares`); shards whose share rounds
      to a trivial population sit batches out while still paying their
      ingress, so tiny budgets should not fan out at all.
    """
    if num_machines < 1:
        raise ConfigError("num_machines must be positive")
    if replication < 1:
        raise ConfigError("replication must be positive")
    bound = min(num_machines // max(min_machines_per_shard, 1), replication)
    if num_frogs is not None:
        bound = min(bound, num_frogs // max(min_frogs_per_shard, 1))
    return max(1, bound)


@dataclass(frozen=True)
class QueryOutcome:
    """One query's executed estimate plus its attributed report."""

    estimate: PageRankEstimate
    report: RunReport


@dataclass(frozen=True)
class ShardCost:
    """What one shard spent executing its slice of a batch."""

    shard: int
    num_machines: int
    shared_network_bytes: int
    attributed_network_bytes: int
    cpu_seconds: float
    simulated_time_s: float


@dataclass(frozen=True)
class BatchOutcome:
    """Result of executing one config-pure batch through a backend.

    ``lanes[i]`` answers ``queries[i]``; ``shared_network_bytes`` is
    what actually crossed the wire (summed over shards when sharded);
    ``simulated_time_s`` is the batch's wall time on the simulated
    cluster (the slowest shard when sharded, since shards run
    concurrently); ``shards`` carries the per-shard cost breakdown and
    is empty for single-cluster execution.

    ``degraded_shards`` names the shards whose frog slice was *lost*
    to a worker crash under a fail-soft backend's ``"partial"`` policy
    (empty for healthy batches and for backends that cannot lose
    shards); ``lost_frogs`` is the frog budget those shards would have
    run.  The lanes of a degraded batch are still exact merges of the
    surviving shards — their estimates' ``num_frogs`` already reflect
    the smaller population, which is what widens the reported
    Theorem-1 bound downstream.
    """

    lanes: tuple[QueryOutcome, ...]
    shared_network_bytes: int
    simulated_time_s: float
    shards: tuple[ShardCost, ...] = ()
    degraded_shards: tuple[int, ...] = ()
    lost_frogs: int = 0


@runtime_checkable
class ExecutionBackend(Protocol):
    """The seam between the serving layer and cluster layout.

    A backend turns one config-pure batch of queries into per-query
    estimates with honest cost attribution.  It owns its ingress
    (partitioning + replication tables, paid once at construction) and
    must answer ``queries[i]`` in ``lanes[i]``.
    """

    num_shards: int

    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        """Execute ``queries`` under ``config``; answers in order."""
        ...


def _checked_store(store):
    """Validate an optional ``store=`` argument against the protocol."""
    if store is None:
        return None
    from ..store import as_graph_store

    return as_graph_store(store)


def _store_snapshot(store) -> DiGraph:
    """The served CSR snapshot of a store (a DiGraph serves itself)."""
    if isinstance(store, DiGraph):
        return store
    return store.snapshot()


def _out_of_core_tables(store, tag: str, build, fresh: bool = False):
    """Serving tables of an out-of-core store, spilled once per layout.

    ``build()`` constructs the RAM ``(graph, replications)`` pair; the
    result is written to ``<store dir>/serving/<tag>-v<version>`` via
    :func:`~repro.store.spill_serving_tables` and every subsequent
    backend with the same layout tag and store version skips the build
    entirely — it maps the spilled tables back and serves from the
    mapped views (the bounded-RSS path: a fresh process never holds the
    RAM copies).  ``fresh`` forces a rebuild (caller-supplied tables
    may differ from what the tag describes).
    """
    from pathlib import Path

    from ..store.spill import load_serving_tables, spill_serving_tables

    directory = (
        Path(store.directory) / "serving" / f"{tag}-v{store.version}"
    )
    if fresh or not (directory / "meta.json").exists():
        graph, replications = build()
        spill_serving_tables(directory, graph, replications)
    return load_serving_tables(directory)


def _batch_queries(
    graph: DiGraph, queries: Sequence[RankingQuery]
) -> list[np.ndarray]:
    """Per-query personalized birth laws (Lemma 16 teleport vectors)."""
    return [
        seed_distribution(
            graph.num_vertices,
            np.asarray(query.seeds, dtype=np.int64),
            None
            if query.weights is None
            else np.asarray(query.weights, dtype=np.float64),
        )
        for query in queries
    ]


class LocalBackend:
    """Single-cluster execution: one batched traversal per batch.

    This is exactly the execution path :class:`RankingService` inlined
    before the backend seam existed: the ingress (partition + derived
    replication tables) is paid once here and shared by every batch,
    while each batch gets a fresh accounting state so per-batch
    traffic/CPU/time numbers stay clean.
    """

    num_shards = 1

    def __init__(
        self,
        graph: DiGraph | None = None,
        num_machines: int = 16,
        partitioner: str = "random",
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        replication: ReplicationTable | None = None,
        kernel: str = "fused",
        store=None,
    ) -> None:
        self.num_machines = num_machines
        self.cost_model = cost_model
        self.size_model = size_model
        self.seed = seed
        self.kernel = kernel
        self.store = _checked_store(store)
        if graph is None and self.store is None:
            raise ConfigError("LocalBackend needs a graph or a store")

        def build() -> tuple[DiGraph, list[ReplicationTable]]:
            snapshot = (
                graph if graph is not None else _store_snapshot(self.store)
            )
            if snapshot.num_vertices == 0:
                raise ConfigError("cannot serve an empty graph")
            table = replication
            if table is None:
                partition = make_partitioner(partitioner, seed).partition(
                    snapshot, num_machines
                )
                table = ReplicationTable(snapshot, partition, seed=seed)
            return snapshot, [table]

        if self.store is not None and getattr(
            self.store, "out_of_core", False
        ):
            # Out-of-core serving: build the tables once (or reuse the
            # spill a previous backend with this layout left), then
            # serve from the mapped views only.
            tag = f"local-m{num_machines}-p{partitioner}-s{seed}"
            self.graph, (self.replication,) = _out_of_core_tables(
                self.store, tag, build, fresh=replication is not None
            )
        else:
            self.graph, (self.replication,) = build()

    def fresh_state(self):
        """A fresh accounting state over the shared ingress."""
        return build_cluster(
            self.graph,
            self.num_machines,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
            replication=self.replication,
        )

    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        distributions = _batch_queries(self.graph, queries)
        result = run_frogwild_batch(
            self.graph,
            [BatchQuery(start_distribution=d) for d in distributions],
            config,
            state=self.fresh_state(),
            kernel=self.kernel,
        )
        return BatchOutcome(
            lanes=tuple(
                QueryOutcome(lane.estimate, lane.report)
                for lane in result.results
            ),
            shared_network_bytes=result.report.network_bytes,
            simulated_time_s=result.report.total_time_s,
        )


class ShardedBackend:
    """Shard fan-out execution with exact counter and ledger merging.

    The fleet is split into ``num_shards`` sub-clusters of
    ``machines_per_shard`` machines; each shard partitions the graph
    across its own machines at construction (its own per-partition
    masters and replication tables, seeded distinctly so shard layouts
    are independent).  ``run_batch`` splits every query's frog budget
    across the shards — remainder frogs go to the lowest-numbered
    shards, and shards whose share is zero sit the batch out — derives a
    distinct per-shard rng seed so shard populations are independent
    samples, runs one batched traversal per shard, and merges:

    * per-query counters by summation (exact — frogs are independent,
      see :meth:`~repro.core.PageRankEstimate.merge`);
    * per-query cost attribution by summation of shard ledgers, wall
      time by max (shards run concurrently), via
      :func:`~repro.core.batched.merge_shard_results`.

    Consequently ``sum(lane.report.network_bytes)`` over the merged
    lanes equals ``sum(shard.attributed_network_bytes)`` over the shard
    breakdown — the billed bytes partition exactly across shards.

    Design note: each shard holds a *complete* replica of the graph,
    partitioned (per-partition masters + replication tables) across its
    own sub-cluster — the shardable unit is the frog population, not
    the edge set.  Cutting the graph itself across shards would break
    walk semantics (frogs cross any cut), which is exactly what the
    within-shard vertex-cut machinery already simulates.  The price is
    ingress memory proportional to ``num_shards``; the payoff is
    fleet-level parallelism with exactly mergeable counters/ledgers.
    """

    def __init__(
        self,
        graph: DiGraph | None = None,
        num_shards: int | None = 4,
        machines_per_shard: int | None = None,
        num_machines: int | None = None,
        partitioner: str = "random",
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        num_frogs: int | None = None,
        replications: Sequence[ReplicationTable] | None = None,
        kernel: str = "fused",
        store=None,
    ) -> None:
        self.kernel = kernel
        self.store = _checked_store(store)
        if graph is None and self.store is None:
            raise ConfigError("ShardedBackend needs a graph or a store")
        fleet = num_machines if num_machines is not None else 16
        if num_shards is None:
            # Shard-count autotuning: size the fan-out to the fleet, the
            # ingress budget and the (optional) frog-budget hint so tiny
            # budgets stop wasting sub-clusters.
            num_shards = (
                len(replications)
                if replications is not None
                else choose_num_shards(fleet, num_frogs=num_frogs)
            )
        if num_shards < 1:
            raise ConfigError("num_shards must be positive")
        if machines_per_shard is None:
            if num_shards > fleet:
                raise ConfigError(
                    f"cannot split a {fleet}-machine fleet into "
                    f"{num_shards} shards: each shard needs at least "
                    "one machine (grow the fleet or reduce the shard "
                    "count)"
                )
            # Remainder machines (fleet % num_shards) are left idle;
            # callers see the effective layout via num_shards x
            # machines_per_shard.
            machines_per_shard = fleet // num_shards
        if machines_per_shard < 1:
            raise ConfigError("machines_per_shard must be positive")
        self.num_shards = num_shards
        self.machines_per_shard = machines_per_shard
        self.cost_model = cost_model
        self.size_model = size_model
        self.seed = seed

        def build() -> tuple[DiGraph, list[ReplicationTable]]:
            snapshot = (
                graph if graph is not None else _store_snapshot(self.store)
            )
            if snapshot.num_vertices == 0:
                raise ConfigError("cannot serve an empty graph")
            if replications is not None:
                # Prebuilt per-shard ingress (e.g. maintained
                # incrementally by repro.live.IncrementalIngress across
                # graph epochs).
                tables = list(replications)
                if len(tables) != num_shards:
                    raise ConfigError(
                        f"{len(tables)} replication tables supplied "
                        f"for {num_shards} shards"
                    )
                for shard, table in enumerate(tables):
                    if table.num_machines != machines_per_shard:
                        raise ConfigError(
                            f"shard {shard} replication targets "
                            f"{table.num_machines} machines, expected "
                            f"{machines_per_shard}"
                        )
                    if table.graph.num_vertices != snapshot.num_vertices:
                        raise ConfigError(
                            f"shard {shard} replication was built for a "
                            "different graph"
                        )
                return snapshot, tables
            # Ingress paid once per shard: each sub-cluster partitions
            # the graph across its own machines under a distinct seed.
            return snapshot, [
                ReplicationTable(
                    snapshot,
                    make_partitioner(
                        partitioner, self._shard_seed(seed, shard)
                    ).partition(snapshot, machines_per_shard),
                    seed=seed,
                )
                for shard in range(num_shards)
            ]

        if self.store is not None and getattr(
            self.store, "out_of_core", False
        ):
            tag = (
                f"sharded-n{num_shards}-m{machines_per_shard}"
                f"-p{partitioner}-s{seed}"
            )
            self.graph, self.replications = _out_of_core_tables(
                self.store, tag, build, fresh=replications is not None
            )
        else:
            self.graph, self.replications = build()

    @staticmethod
    def _shard_seed(base: int | None, shard: int) -> int | None:
        """Deterministic distinct stream per shard (None stays None)."""
        return None if base is None else base + 7919 * (shard + 1)

    def _shares(self, num_frogs: int) -> list[int]:
        """Split a frog budget across shards; remainder to low shards."""
        base, extra = divmod(num_frogs, self.num_shards)
        return [
            base + (1 if shard < extra else 0)
            for shard in range(self.num_shards)
        ]

    def fresh_state(self, shard: int):
        """A fresh accounting state over one shard's shared ingress."""
        return build_cluster(
            self.graph,
            self.machines_per_shard,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
            replication=self.replications[shard],
        )

    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        distributions = _batch_queries(self.graph, queries)
        shares = self._shares(config.num_frogs)
        per_query_lanes: list[list] = [[] for _ in queries]
        shard_costs: list[ShardCost] = []
        for shard, share in enumerate(shares):
            if share == 0:
                continue
            result = run_frogwild_batch(
                self.graph,
                [
                    BatchQuery(
                        num_frogs=share,
                        start_distribution=distribution,
                        seed=self._shard_seed(config.seed, shard),
                    )
                    for distribution in distributions
                ],
                config,
                state=self.fresh_state(shard),
                kernel=self.kernel,
            )
            for lanes, shard_lane in zip(per_query_lanes, result.results):
                lanes.append(shard_lane)
            shard_costs.append(
                ShardCost(
                    shard=shard,
                    num_machines=self.machines_per_shard,
                    shared_network_bytes=result.report.network_bytes,
                    attributed_network_bytes=(
                        result.attributed_network_bytes()
                    ),
                    cpu_seconds=sum(
                        lane.report.cpu_seconds for lane in result.results
                    ),
                    simulated_time_s=result.report.total_time_s,
                )
            )
        merged = [merge_shard_results(lanes) for lanes in per_query_lanes]
        return BatchOutcome(
            lanes=tuple(
                QueryOutcome(lane.estimate, lane.report) for lane in merged
            ),
            shared_network_bytes=sum(
                cost.shared_network_bytes for cost in shard_costs
            ),
            simulated_time_s=max(
                (cost.simulated_time_s for cost in shard_costs), default=0.0
            ),
            shards=tuple(shard_costs),
        )
