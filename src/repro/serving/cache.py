"""TTL + LRU result cache for the ranking service.

Completed PageRank estimates are immutable and cheap to keep (one int64
counter vector per query), so the service caches them keyed by
``(teleport seeds, weights, config)``.  Two independent staleness
controls compose:

* **LRU capacity** bounds memory: inserting into a full cache evicts
  the least-recently-used entry;
* **TTL** bounds semantic staleness: on a churning graph yesterday's
  top-k is stale no matter how popular, so entries older than ``ttl_s``
  are dropped at lookup time.

The clock is injectable for deterministic tests (and for callers that
want logical time, e.g. graph-update counters instead of seconds).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable
import time

from ..errors import ConfigError

__all__ = ["CacheStats", "TTLCache"]


@dataclass
class CacheStats:
    """Counters of one cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "expirations": float(self.expirations),
            "hit_rate": self.hit_rate(),
        }


class TTLCache:
    """An LRU mapping whose entries also expire after ``ttl_s``.

    Parameters
    ----------
    capacity:
        Maximum number of live entries; the least-recently-used entry
        is evicted to make room.
    ttl_s:
        Entry lifetime in clock units; ``None`` disables expiry.
    clock:
        Zero-argument callable returning the current time.  Defaults to
        :func:`time.monotonic`; tests inject a fake.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_s: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError("cache capacity must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigError("ttl_s must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock or time.monotonic
        self._entries: OrderedDict[Hashable, tuple[float, object]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        """Number of *live* entries (expired ones are purged first)."""
        self._purge_expired()
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Non-mutating membership test (no LRU touch, no stats)."""
        entry = self._entries.get(key)
        if entry is None:
            return False
        return not self._expired(entry[0])

    def _expired(self, stored_at: float) -> bool:
        return self.ttl_s is not None and (
            self._clock() - stored_at > self.ttl_s
        )

    def _purge_expired(self) -> int:
        """Drop every expired entry, counting each as an expiration."""
        if self.ttl_s is None or not self._entries:
            return 0
        horizon = self._clock() - self.ttl_s
        dead = [
            key
            for key, (stored_at, _) in self._entries.items()
            if stored_at < horizon
        ]
        for key in dead:
            del self._entries[key]
        self.stats.expirations += len(dead)
        return len(dead)

    def get(self, key: Hashable):
        """Return the cached value or ``None``; touches LRU recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_at, value = entry
        if self._expired(stored_at):
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh ``key``, evicting LRU entries over capacity.

        Expired entries are purged (and counted as expirations, the
        overwritten key's included) *before* capacity is enforced, so a
        full-looking cache of dead entries never evicts a live LRU
        entry; evictions only ever remove live entries.
        """
        self._purge_expired()
        if key in self._entries:
            # Live overwrite: a refresh, neither eviction nor expiry.
            del self._entries[key]
        self._entries[key] = (self._clock(), value)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()
