"""Query normalization and batch coalescing.

A :class:`RankingQuery` is the service's wire format: seed vertices, an
optional restart-weight vector, the wanted ``k`` and an optional
config override.  The :class:`QueryCoalescer` groups pending queries
into batches the batched runner can execute — with one hard rule:
**mixed configs never share a batch**.  All populations of one
:class:`~repro.core.batched.BatchedFrogWildRunner` share ``iterations``,
``p_teleport``, ``scatter_mode`` and ``erasure_model``, so a query that
overrides any of them must ride a different traversal; coalescing them
anyway would silently change the semantics of its batchmates' answers.

The coalescer was always meant to be drained by a scheduler rather
than synchronously: every entry may carry an *arrival* timestamp and an
opaque *payload* (the service attaches the caller's future), and the
deadline-aware pop methods — :meth:`QueryCoalescer.pop_full_entries`,
:meth:`QueryCoalescer.pop_due_entries`, :meth:`QueryCoalescer.next_deadline`
— implement the two dispatch triggers of
:class:`~repro.serving.scheduler.BatchScheduler`: a batch fills, or the
oldest pending query's max-delay deadline expires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..core import FrogWildConfig
from ..errors import ConfigError

__all__ = ["RankingQuery", "PendingQuery", "QueryCoalescer"]


@dataclass(frozen=True)
class RankingQuery:
    """One personalized top-k request.

    ``seeds`` are the teleport vertices (the walk restarts there, per
    Lemma 16); ``weights`` optionally skews the restart law; ``k`` is
    the answer length; ``config`` overrides the service default — a
    query carrying its own config is never batched with queries of a
    different one.
    """

    seeds: tuple[int, ...]
    k: int = 10
    weights: tuple[float, ...] | None = None
    config: FrogWildConfig | None = None

    def __post_init__(self) -> None:
        seeds = tuple(int(s) for s in np.atleast_1d(np.asarray(self.seeds)))
        if not seeds:
            raise ConfigError("a ranking query needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ConfigError("seed ids must be distinct")
        if min(seeds) < 0:
            raise ConfigError("seed ids must be non-negative")
        object.__setattr__(self, "seeds", seeds)
        if self.weights is not None:
            weights = tuple(
                float(w) for w in np.atleast_1d(np.asarray(self.weights))
            )
            if len(weights) != len(seeds):
                raise ConfigError("weights must align with seeds")
            # Mirror seed_distribution's checks here so a bad restart
            # law fails at construction, not mid-dispatch inside a
            # batch that its batchmates are riding.  Written so NaN
            # fails every comparison into the error branch.
            if not all(np.isfinite(weights)):
                raise ConfigError("weights must be finite")
            if min(weights) < 0 or not sum(weights) > 0:
                raise ConfigError(
                    "weights must be non-negative with positive mass"
                )
            object.__setattr__(self, "weights", weights)
        if self.k < 1:
            raise ConfigError("k must be positive")

    def effective_config(self, default: FrogWildConfig) -> FrogWildConfig:
        """The config this query actually runs under."""
        return self.config if self.config is not None else default

    def cache_key(self, default: FrogWildConfig) -> Hashable:
        """Identity of this query's *estimate* (k excluded: any k is a
        prefix of the same cached counter vector)."""
        return (self.seeds, self.weights, self.effective_config(default))


@dataclass(frozen=True)
class PendingQuery:
    """One enqueued query plus its scheduling metadata.

    ``arrival`` is the clock reading at enqueue time (the deadline
    anchor; ``None`` means "due immediately"); ``payload`` is opaque to
    the coalescer — the service threads the caller's future through it.
    """

    query: RankingQuery
    arrival: float | None = None
    payload: object = None


class QueryCoalescer:
    """Groups pending queries into config-pure, size-bounded batches.

    Queries accumulate via :meth:`add` and leave via :meth:`drain`,
    which yields ``(config, queries)`` batches: FIFO within a config,
    never mixing configs, never exceeding ``max_batch_size`` (the
    batched runner's sweet spot — beyond it per-population work
    dominates and latency grows without amortization gains).

    A scheduler drains selectively instead: :meth:`pop_full_entries`
    removes only batches that reached ``max_batch_size`` and
    :meth:`pop_due_entries` removes groups whose oldest entry has waited
    past its deadline, both returning the full :class:`PendingQuery`
    entries so payloads survive the trip.
    """

    def __init__(self, max_batch_size: int = 16) -> None:
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be positive")
        self.max_batch_size = max_batch_size
        self._pending: dict[FrogWildConfig, list[PendingQuery]] = {}

    def add(
        self,
        query: RankingQuery,
        default: FrogWildConfig,
        arrival: float | None = None,
        payload: object = None,
    ) -> None:
        """Enqueue one query under its effective config."""
        config = query.effective_config(default)
        self._pending.setdefault(config, []).append(
            PendingQuery(query, arrival, payload)
        )

    def pending_count(self) -> int:
        return sum(len(entries) for entries in self._pending.values())

    def drain(self) -> list[tuple[FrogWildConfig, list[RankingQuery]]]:
        """Empty the queue as a list of ready-to-run batches."""
        return [
            (config, [entry.query for entry in entries])
            for config, entries in self.drain_entries()
        ]

    def drain_entries(
        self,
    ) -> list[tuple[FrogWildConfig, list[PendingQuery]]]:
        """Empty the queue, keeping per-entry scheduling metadata."""
        batches: list[tuple[FrogWildConfig, list[PendingQuery]]] = []
        for config, entries in self._pending.items():
            for lo in range(0, len(entries), self.max_batch_size):
                batches.append((config, entries[lo:lo + self.max_batch_size]))
        self._pending.clear()
        return batches

    def pop_full_entries(
        self,
    ) -> list[tuple[FrogWildConfig, list[PendingQuery]]]:
        """Remove and return only the batches that reached full size.

        Partial remainders stay queued (their deadline keeps running).
        """
        batches: list[tuple[FrogWildConfig, list[PendingQuery]]] = []
        for config in list(self._pending):
            entries = self._pending[config]
            while len(entries) >= self.max_batch_size:
                batches.append((config, entries[: self.max_batch_size]))
                entries = entries[self.max_batch_size:]
            if entries:
                self._pending[config] = entries
            else:
                del self._pending[config]
        return batches

    def has_full(self) -> bool:
        """Whether any config group has a full batch ready."""
        return any(
            len(entries) >= self.max_batch_size
            for entries in self._pending.values()
        )

    def pop_next_entries(
        self, now: float, max_delay_s: float | None
    ) -> tuple[FrogWildConfig, list[PendingQuery], str] | None:
        """Remove and return at most **one** dispatchable batch.

        Serialized dispatch for the single-server traffic harness: a
        full slice of any group goes first (kind ``"fill"``); otherwise
        the earliest-due group contributes its oldest
        ``max_batch_size`` entries (kind ``"deadline"``), the
        remainder staying queued with arrivals intact.  ``None`` when
        nothing is dispatchable at ``now`` (with ``max_delay_s=None``
        only full batches ever qualify).
        """
        for config in list(self._pending):
            entries = self._pending[config]
            if len(entries) < self.max_batch_size:
                continue
            batch = entries[: self.max_batch_size]
            rest = entries[self.max_batch_size:]
            if rest:
                self._pending[config] = rest
            else:
                del self._pending[config]
            return config, batch, "fill"
        if max_delay_s is None:
            return None
        best: tuple[float, FrogWildConfig] | None = None
        for config, entries in self._pending.items():
            deadline = self._group_deadline(entries, max_delay_s)
            if deadline <= now and (best is None or deadline < best[0]):
                best = (deadline, config)
        if best is None:
            return None
        config = best[1]
        entries = self._pending.pop(config)
        batch = entries[: self.max_batch_size]
        rest = entries[self.max_batch_size:]
        if rest:
            self._pending[config] = rest
        return config, batch, "deadline"

    def pop_due_entries(
        self, now: float, max_delay_s: float
    ) -> list[tuple[FrogWildConfig, list[PendingQuery]]]:
        """Remove and return the groups whose deadline has expired.

        A config group is due when its *oldest* entry has waited at
        least ``max_delay_s`` (entries with no arrival are due at once);
        the whole group dispatches — queries that arrived later simply
        get lucky and ride the same traversal.
        """
        batches: list[tuple[FrogWildConfig, list[PendingQuery]]] = []
        for config in list(self._pending):
            entries = self._pending[config]
            if self._group_deadline(entries, max_delay_s) > now:
                continue
            for lo in range(0, len(entries), self.max_batch_size):
                batches.append((config, entries[lo:lo + self.max_batch_size]))
            del self._pending[config]
        return batches

    @staticmethod
    def _group_deadline(
        entries: list[PendingQuery], max_delay_s: float
    ) -> float:
        """When this group becomes due: its earliest arrival plus the
        delay; any entry without an arrival makes it due immediately."""
        arrivals = [entry.arrival for entry in entries]
        if any(arrival is None for arrival in arrivals):
            return float("-inf")
        return min(arrivals) + max_delay_s

    def pop_payload_entries(
        self, payloads: set
    ) -> list[tuple[FrogWildConfig, list[PendingQuery]]]:
        """Remove and return only the entries carrying these payloads.

        The synchronous service path flushes exactly the entries its
        own call depends on; other callers' deadline-scheduled entries
        stay queued with their deadlines intact.
        """
        batches: list[tuple[FrogWildConfig, list[PendingQuery]]] = []
        for config in list(self._pending):
            entries = self._pending[config]
            mine = [e for e in entries if e.payload in payloads]
            if not mine:
                continue
            rest = [e for e in entries if e.payload not in payloads]
            if rest:
                self._pending[config] = rest
            else:
                del self._pending[config]
            for lo in range(0, len(mine), self.max_batch_size):
                batches.append((config, mine[lo:lo + self.max_batch_size]))
        return batches

    def next_deadline(self, max_delay_s: float) -> float | None:
        """Earliest instant any pending group becomes due, or ``None``.

        Entries enqueued without an arrival timestamp are due
        immediately and report a deadline of ``-inf``.
        """
        deadlines = [
            self._group_deadline(entries, max_delay_s)
            for entries in self._pending.values()
        ]
        return min(deadlines) if deadlines else None
