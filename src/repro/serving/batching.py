"""Query normalization and batch coalescing.

A :class:`RankingQuery` is the service's wire format: seed vertices, an
optional restart-weight vector, the wanted ``k`` and an optional
config override.  The :class:`QueryCoalescer` groups pending queries
into batches the batched runner can execute — with one hard rule:
**mixed configs never share a batch**.  All populations of one
:class:`~repro.core.batched.BatchedFrogWildRunner` share ``iterations``,
``p_teleport``, ``scatter_mode`` and ``erasure_model``, so a query that
overrides any of them must ride a different traversal; coalescing them
anyway would silently change the semantics of its batchmates' answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..core import FrogWildConfig
from ..errors import ConfigError

__all__ = ["RankingQuery", "QueryCoalescer"]


@dataclass(frozen=True)
class RankingQuery:
    """One personalized top-k request.

    ``seeds`` are the teleport vertices (the walk restarts there, per
    Lemma 16); ``weights`` optionally skews the restart law; ``k`` is
    the answer length; ``config`` overrides the service default — a
    query carrying its own config is never batched with queries of a
    different one.
    """

    seeds: tuple[int, ...]
    k: int = 10
    weights: tuple[float, ...] | None = None
    config: FrogWildConfig | None = None

    def __post_init__(self) -> None:
        seeds = tuple(int(s) for s in np.atleast_1d(np.asarray(self.seeds)))
        if not seeds:
            raise ConfigError("a ranking query needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ConfigError("seed ids must be distinct")
        if min(seeds) < 0:
            raise ConfigError("seed ids must be non-negative")
        object.__setattr__(self, "seeds", seeds)
        if self.weights is not None:
            weights = tuple(
                float(w) for w in np.atleast_1d(np.asarray(self.weights))
            )
            if len(weights) != len(seeds):
                raise ConfigError("weights must align with seeds")
            object.__setattr__(self, "weights", weights)
        if self.k < 1:
            raise ConfigError("k must be positive")

    def effective_config(self, default: FrogWildConfig) -> FrogWildConfig:
        """The config this query actually runs under."""
        return self.config if self.config is not None else default

    def cache_key(self, default: FrogWildConfig) -> Hashable:
        """Identity of this query's *estimate* (k excluded: any k is a
        prefix of the same cached counter vector)."""
        return (self.seeds, self.weights, self.effective_config(default))


class QueryCoalescer:
    """Groups pending queries into config-pure, size-bounded batches.

    Queries accumulate via :meth:`add` and leave via :meth:`drain`,
    which yields ``(config, queries)`` batches: FIFO within a config,
    never mixing configs, never exceeding ``max_batch_size`` (the
    batched runner's sweet spot — beyond it per-population work
    dominates and latency grows without amortization gains).
    """

    def __init__(self, max_batch_size: int = 16) -> None:
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be positive")
        self.max_batch_size = max_batch_size
        self._pending: dict[FrogWildConfig, list[RankingQuery]] = {}

    def add(self, query: RankingQuery, default: FrogWildConfig) -> None:
        """Enqueue one query under its effective config."""
        config = query.effective_config(default)
        self._pending.setdefault(config, []).append(query)

    def pending_count(self) -> int:
        return sum(len(queries) for queries in self._pending.values())

    def drain(self) -> list[tuple[FrogWildConfig, list[RankingQuery]]]:
        """Empty the queue as a list of ready-to-run batches."""
        batches: list[tuple[FrogWildConfig, list[RankingQuery]]] = []
        for config, queries in self._pending.items():
            for lo in range(0, len(queries), self.max_batch_size):
                batches.append((config, queries[lo:lo + self.max_batch_size]))
        self._pending.clear()
        return batches
