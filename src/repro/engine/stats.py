"""Per-superstep and per-run execution statistics.

These are the quantities the paper's figures plot: time per iteration
(Fig. 1a), total time (1b), network bytes (1c) and CPU seconds (1d).
:class:`CostLedger` additionally attributes shared-execution costs to
the individual frog populations of a batched run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import EngineError

__all__ = [
    "StepRecord",
    "EngineStats",
    "RunReport",
    "CostLedger",
    "apportion_records",
]


def apportion_records(
    physical: np.ndarray, demand: np.ndarray
) -> np.ndarray:
    """Split integer record counts across lanes proportionally to demand.

    ``physical`` holds the records that actually crossed the wire (any
    shape, typically a machine-pair matrix) and ``demand[b]`` what lane
    ``b`` would have sent running alone (shape ``(B,) + physical.shape``).
    Sharing is exact largest-remainder apportionment per cell: each
    lane's share is ``floor(physical * demand_b / total_demand)`` plus
    one bonus record for the largest fractional remainders (ties broken
    toward lower lane index), so the returned integer shares satisfy

    * ``shares.sum(axis=0) == physical`` exactly (fairness bookkeeping
      never invents or drops a record), and
    * ``shares[b] <= demand[b]`` whenever ``physical <= total_demand``
      (no lane is billed more than it asked to send).

    Cells with zero total demand must carry zero physical records.
    """
    physical = np.asarray(physical, dtype=np.int64)
    demand = np.asarray(demand, dtype=np.int64)
    if demand.shape[1:] != physical.shape:
        raise EngineError(
            "demand must stack one physical-shaped matrix per lane: "
            f"{demand.shape} vs {physical.shape}"
        )
    num_lanes = demand.shape[0]
    flat_physical = physical.reshape(-1)
    flat_demand = demand.reshape(num_lanes, -1)
    totals = flat_demand.sum(axis=0)
    if np.any(flat_physical[totals == 0] != 0):
        raise EngineError("physical records present where no lane demanded")
    safe_totals = np.where(totals > 0, totals, 1)
    scaled = flat_physical * flat_demand
    shares = scaled // safe_totals
    leftover = flat_physical - shares.sum(axis=0)
    if leftover.any():
        fractions = scaled % safe_totals
        # Stable argsort on -fraction ranks lanes by fractional part,
        # ties resolved toward the lower lane index.
        order = np.argsort(-fractions, axis=0, kind="stable")
        ranks = np.empty_like(order)
        np.put_along_axis(
            ranks,
            order,
            np.broadcast_to(
                np.arange(num_lanes, dtype=np.int64)[:, None], order.shape
            ),
            axis=0,
        )
        shares += ranks < leftover
    return shares.reshape(demand.shape)


@dataclass(frozen=True)
class StepRecord:
    """Measurements for one superstep."""

    step: int
    active: int
    bytes_sent: int
    cpu_ops: int
    sim_seconds: float


@dataclass
class EngineStats:
    """Accumulates :class:`StepRecord` rows over a run."""

    steps: list[StepRecord] = field(default_factory=list)

    def record_step(
        self, active: int, bytes_sent: int, cpu_ops: int, sim_seconds: float
    ) -> None:
        self.steps.append(
            StepRecord(
                step=len(self.steps),
                active=active,
                bytes_sent=bytes_sent,
                cpu_ops=cpu_ops,
                sim_seconds=sim_seconds,
            )
        )

    @property
    def num_supersteps(self) -> int:
        return len(self.steps)

    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.steps)

    def total_cpu_ops(self) -> int:
        return sum(s.cpu_ops for s in self.steps)

    def total_seconds(self) -> float:
        return sum(s.sim_seconds for s in self.steps)

    def seconds_per_step(self) -> float:
        if not self.steps:
            return 0.0
        return self.total_seconds() / len(self.steps)


@dataclass
class CostLedger:
    """Per-population cost attribution inside a shared batched execution.

    The batched FrogWild runner charges the *physical* cluster once per
    superstep (summed over populations); each population additionally
    tallies the CPU ops, network records and per-pair messages it alone
    caused.  :meth:`standalone_network_bytes` prices those records as if
    the population had run by itself — per-message headers included — so
    ``sum(lane.standalone_network_bytes()) - fabric.total_bytes()`` is
    exactly the header amortization the batch bought.
    """

    record_bytes: int
    message_header_bytes: int
    supersteps: int = 0
    cpu_ops: int = 0
    network_records: int = 0
    network_messages: int = 0

    def charge_ops(self, ops: int) -> None:
        """Attribute ``ops`` units of CPU work to this population."""
        self.cpu_ops += int(ops)

    def charge_pair_records(self, records: np.ndarray) -> None:
        """Attribute one machine-pair record matrix (diagonal is local,
        hence free — mirroring :class:`~repro.cluster.NetworkFabric`)."""
        off_diagonal = np.asarray(records).copy()
        np.fill_diagonal(off_diagonal, 0)
        self.network_records += int(off_diagonal.sum())
        self.network_messages += int(np.count_nonzero(off_diagonal))

    def charge_counts(self, records: int, messages: int) -> None:
        """Attribute pre-counted off-diagonal records and messages.

        The fused batch kernel computes every lane's counts in one
        vectorized pass over a stacked ``(B, machines, machines)``
        record tensor; this is the per-lane sink for those counts,
        equivalent to :meth:`charge_pair_records` on the lane's slice.
        """
        self.network_records += int(records)
        self.network_messages += int(messages)

    def standalone_network_bytes(self) -> int:
        """Wire bytes this population would have paid running alone."""
        return (
            self.message_header_bytes * self.network_messages
            + self.record_bytes * self.network_records
        )

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger of the *same query* into this one.

        :func:`repro.core.batched.merge_shard_results` merges shard
        lanes through this: when one query's frog population is split
        across shard sub-clusters, each shard keeps its own ledger and
        the per-query attribution is their exact sum.  Records,
        messages and CPU ops add; ``supersteps`` takes the max because
        shards advance their barriers concurrently.
        """
        if (
            other.record_bytes != self.record_bytes
            or other.message_header_bytes != self.message_header_bytes
        ):
            raise EngineError(
                "cannot merge ledgers priced under different size models"
            )
        self.supersteps = max(self.supersteps, other.supersteps)
        self.cpu_ops += other.cpu_ops
        self.network_records += other.network_records
        self.network_messages += other.network_messages


@dataclass(frozen=True)
class RunReport:
    """Summary of one algorithm execution on the simulated cluster.

    The four headline metrics match Figure 1 of the paper; ``extra``
    carries algorithm-specific outputs (e.g. iterations to convergence).
    """

    algorithm: str
    num_machines: int
    supersteps: int
    total_time_s: float
    time_per_iteration_s: float
    network_bytes: int
    cpu_seconds: float
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {
            "algorithm": self.algorithm,
            "num_machines": self.num_machines,
            "supersteps": self.supersteps,
            "total_time_s": self.total_time_s,
            "time_per_iteration_s": self.time_per_iteration_s,
            "network_bytes": self.network_bytes,
            "cpu_seconds": self.cpu_seconds,
        }
        row.update(self.extra)
        return row
