"""Per-superstep and per-run execution statistics.

These are the quantities the paper's figures plot: time per iteration
(Fig. 1a), total time (1b), network bytes (1c) and CPU seconds (1d).
:class:`CostLedger` additionally attributes shared-execution costs to
the individual frog populations of a batched run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import EngineError

__all__ = ["StepRecord", "EngineStats", "RunReport", "CostLedger"]


@dataclass(frozen=True)
class StepRecord:
    """Measurements for one superstep."""

    step: int
    active: int
    bytes_sent: int
    cpu_ops: int
    sim_seconds: float


@dataclass
class EngineStats:
    """Accumulates :class:`StepRecord` rows over a run."""

    steps: list[StepRecord] = field(default_factory=list)

    def record_step(
        self, active: int, bytes_sent: int, cpu_ops: int, sim_seconds: float
    ) -> None:
        self.steps.append(
            StepRecord(
                step=len(self.steps),
                active=active,
                bytes_sent=bytes_sent,
                cpu_ops=cpu_ops,
                sim_seconds=sim_seconds,
            )
        )

    @property
    def num_supersteps(self) -> int:
        return len(self.steps)

    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.steps)

    def total_cpu_ops(self) -> int:
        return sum(s.cpu_ops for s in self.steps)

    def total_seconds(self) -> float:
        return sum(s.sim_seconds for s in self.steps)

    def seconds_per_step(self) -> float:
        if not self.steps:
            return 0.0
        return self.total_seconds() / len(self.steps)


@dataclass
class CostLedger:
    """Per-population cost attribution inside a shared batched execution.

    The batched FrogWild runner charges the *physical* cluster once per
    superstep (summed over populations); each population additionally
    tallies the CPU ops, network records and per-pair messages it alone
    caused.  :meth:`standalone_network_bytes` prices those records as if
    the population had run by itself — per-message headers included — so
    ``sum(lane.standalone_network_bytes()) - fabric.total_bytes()`` is
    exactly the header amortization the batch bought.
    """

    record_bytes: int
    message_header_bytes: int
    supersteps: int = 0
    cpu_ops: int = 0
    network_records: int = 0
    network_messages: int = 0

    def charge_ops(self, ops: int) -> None:
        """Attribute ``ops`` units of CPU work to this population."""
        self.cpu_ops += int(ops)

    def charge_pair_records(self, records: np.ndarray) -> None:
        """Attribute one machine-pair record matrix (diagonal is local,
        hence free — mirroring :class:`~repro.cluster.NetworkFabric`)."""
        off_diagonal = np.asarray(records).copy()
        np.fill_diagonal(off_diagonal, 0)
        self.network_records += int(off_diagonal.sum())
        self.network_messages += int(np.count_nonzero(off_diagonal))

    def standalone_network_bytes(self) -> int:
        """Wire bytes this population would have paid running alone."""
        return (
            self.message_header_bytes * self.network_messages
            + self.record_bytes * self.network_records
        )

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger of the *same query* into this one.

        :func:`repro.core.batched.merge_shard_results` merges shard
        lanes through this: when one query's frog population is split
        across shard sub-clusters, each shard keeps its own ledger and
        the per-query attribution is their exact sum.  Records,
        messages and CPU ops add; ``supersteps`` takes the max because
        shards advance their barriers concurrently.
        """
        if (
            other.record_bytes != self.record_bytes
            or other.message_header_bytes != self.message_header_bytes
        ):
            raise EngineError(
                "cannot merge ledgers priced under different size models"
            )
        self.supersteps = max(self.supersteps, other.supersteps)
        self.cpu_ops += other.cpu_ops
        self.network_records += other.network_records
        self.network_messages += other.network_messages


@dataclass(frozen=True)
class RunReport:
    """Summary of one algorithm execution on the simulated cluster.

    The four headline metrics match Figure 1 of the paper; ``extra``
    carries algorithm-specific outputs (e.g. iterations to convergence).
    """

    algorithm: str
    num_machines: int
    supersteps: int
    total_time_s: float
    time_per_iteration_s: float
    network_bytes: int
    cpu_seconds: float
    extra: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {
            "algorithm": self.algorithm,
            "num_machines": self.num_machines,
            "supersteps": self.supersteps,
            "total_time_s": self.total_time_s,
            "time_per_iteration_s": self.time_per_iteration_s,
            "network_bytes": self.network_bytes,
            "cpu_seconds": self.cpu_seconds,
        }
        row.update(self.extra)
        return row
