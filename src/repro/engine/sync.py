"""Randomized mirror synchronization — the paper's GraphLab patch.

Stock PowerGraph synchronizes *every* mirror of a changed vertex at each
barrier.  The paper's key system modification (Section 1, third
innovation; Section 3.3) exposes a scalar ``ps``: each mirror is
synchronized independently with probability ``ps``, and mirrors left
un-synchronized stay idle for the following scatter phase.  Setting
``ps = 1`` reproduces stock behaviour exactly.

:class:`MirrorSynchronizer` implements the patch against the simulated
cluster, accounting one sync record per synchronized mirror.  The
returned coin matrix tells the caller (the FrogWild runner) which
replicas may participate in scatter — the coupling that turns partial
synchronization into the edge-erasure model of Definition 8.

The coin draw and the accounting are separable (:meth:`draw_fresh`):
the batched runner of :mod:`repro.core.batched` flips coins per frog
population but aggregates the resulting sync records across the whole
batch into one physical flush per barrier.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from .state import ClusterState

__all__ = ["MirrorSynchronizer", "sync_pair_records"]


def sync_pair_records(
    masters: np.ndarray, synced: np.ndarray, num_machines: int
) -> np.ndarray:
    """Master-to-mirror record counts as a machine-pair matrix.

    ``masters[i]`` is the master machine of the i-th vertex and
    ``synced[i, p]`` marks machine ``p`` receiving a sync record for it;
    the result's ``[s, d]`` entry counts records sent from ``s`` to ``d``.
    """
    rows, cols = np.nonzero(synced)
    if rows.size == 0:
        return np.zeros((num_machines, num_machines), dtype=np.int64)
    masters = np.asarray(masters, dtype=np.int64)
    return np.bincount(
        masters[rows] * num_machines + cols,
        minlength=num_machines**2,
    ).reshape(num_machines, num_machines)


class MirrorSynchronizer:
    """Per-barrier randomized master-to-mirror synchronization.

    Parameters
    ----------
    state:
        The simulated cluster.
    ps:
        Probability of synchronizing each mirror (paper's ``ps``).
    rng:
        Source of the per-mirror coins.
    mirror_matrix:
        Optional prebuilt mirror bitmap (from :meth:`build_mirror_matrix`
        or the per-ingress cache of :meth:`shared_mirror_matrix`) shared
        across synchronizers running on the same cluster — the bitmap is
        the only per-instance O(n·machines) state.  Sharers of a plain
        (non-``copy_on_disable``) matrix observe each other's
        :meth:`disable_machine` calls; with ``copy_on_disable`` each
        synchronizer forks privately on its first disable, so machine
        crashes are per-run state (fault injection currently drives the
        single-query runner only — the batched runners read the shared
        bitmap for coin draws and do not expose a crash path).
    copy_on_disable:
        Mark ``mirror_matrix`` as a read-shared structure (the
        per-ingress cache of :meth:`shared_mirror_matrix`): the first
        :meth:`disable_machine` call forks a private copy instead of
        mutating the shared bitmap, so fault injection in one run can
        never leak crashed machines into later runs on the same
        ingress.  Sharers of a *batch-local* matrix (the coupling
        described above) should leave this False.
    """

    def __init__(
        self,
        state: ClusterState,
        ps: float,
        rng: np.random.Generator,
        mirror_matrix: np.ndarray | None = None,
        copy_on_disable: bool = False,
    ) -> None:
        if not 0.0 <= ps <= 1.0:
            raise EngineError(f"ps must lie in [0, 1], got {ps}")
        self.state = state
        self.ps = ps
        self.rng = rng
        repl = state.replication
        self._masters = repl.masters
        self._replicas = repl.replica_matrix
        num_machines = state.num_machines
        if mirror_matrix is None:
            mirror_matrix = self.build_mirror_matrix(state)
        elif mirror_matrix.shape != repl.replica_matrix.shape:
            raise EngineError(
                "mirror_matrix shape does not match the cluster's "
                f"replica table: {mirror_matrix.shape} vs "
                f"{repl.replica_matrix.shape}"
            )
        # mirror_matrix[v, p]: machine p holds a *mirror* (non-master
        # replica) of vertex v.
        self._mirror_matrix = mirror_matrix
        self._copy_on_disable = copy_on_disable
        self._num_machines = num_machines

    @staticmethod
    def mirror_matrix_for(replication) -> np.ndarray:
        """Mirror bitmap of one replication table: replicas minus masters.

        The single definition of "mirror" shared by the lazy per-state
        build below and the live refresh pipeline's off-query-path cache
        pre-seeding (:func:`repro.core.frogwild.prime_ingress_caches`).
        """
        matrix = replication.replica_matrix.copy()
        matrix[np.arange(replication.masters.size), replication.masters] = False
        return matrix

    @classmethod
    def build_mirror_matrix(cls, state: ClusterState) -> np.ndarray:
        """Mirror bitmap of the cluster: replicas minus masters."""
        return cls.mirror_matrix_for(state.replication)

    @classmethod
    def shared_mirror_matrix(cls, state: ClusterState) -> np.ndarray:
        """The per-ingress cached mirror bitmap (built once, reused).

        Pass the result as ``mirror_matrix`` together with
        ``copy_on_disable=True``: reads share the cached array across
        every run on the same ingress, while :meth:`disable_machine`
        forks a private copy before writing.
        """
        return state.ingress_cache(
            "mirror_matrix", lambda: cls.build_mirror_matrix(state)
        )

    def draw_fresh(
        self, vertices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flip the sync coins for ``vertices`` without any accounting.

        Returns ``(fresh, synced_mirrors)``: ``fresh`` marks machines
        whose replica is fresh after the barrier (master always, each
        mirror with probability ``ps``); ``synced_mirrors`` is the
        mirror-only subset that a caller must account for (one sync
        record each).  :meth:`synchronize` is this plus the accounting;
        the batched runner uses the split to aggregate records across
        populations before charging the fabric.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        k = vertices.size
        mirrors = self._mirror_matrix[vertices]
        if self.ps >= 1.0:
            synced_mirrors = mirrors.copy()
        elif self.ps <= 0.0:
            synced_mirrors = np.zeros_like(mirrors)
        else:
            coins = self.rng.random((k, self._num_machines)) < self.ps
            synced_mirrors = mirrors & coins

        fresh = synced_mirrors.copy()
        if k:
            fresh[np.arange(k), self._masters[vertices]] = True
        return fresh, synced_mirrors

    def synchronize(self, vertices: np.ndarray) -> np.ndarray:
        """Synchronize the mirrors of ``vertices``; returns fresh-replica map.

        The result is a boolean matrix of shape ``(len(vertices),
        num_machines)`` marking machines whose replica of the vertex is
        fresh after the barrier: the master always, each mirror with
        probability ``ps``.  One sync record per synchronized mirror is
        charged to the network, batched per machine pair.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        fresh, synced_mirrors = self.draw_fresh(vertices)
        self._account(vertices, synced_mirrors)
        return fresh

    def disable_machine(self, machine: int) -> None:
        """Permanently exclude a machine's mirrors from synchronization.

        Used by fault injection (:mod:`repro.faults`): a crashed machine
        stops receiving master updates, so its replicas can never be
        fresh again and the scatter phase routes around it.
        """
        if not 0 <= machine < self._num_machines:
            raise EngineError(
                f"machine {machine} out of range [0, {self._num_machines})"
            )
        if self._copy_on_disable:
            self._mirror_matrix = self._mirror_matrix.copy()
            self._copy_on_disable = False
        self._mirror_matrix[:, machine] = False

    def force_sync(self, vertices: np.ndarray, machines: np.ndarray) -> None:
        """Synchronize one extra (vertex, mirror) pair each — erasure repair.

        Used by the "At Least One Out-Edge Per Node" model (Example 10):
        when every mirror coin failed for a vertex that must scatter, one
        uniformly chosen mirror is synchronized after all.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        machines = np.asarray(machines, dtype=np.int64)
        if vertices.shape != machines.shape:
            raise EngineError("vertices/machines misaligned in force_sync")
        if vertices.size == 0:
            return
        extra = np.zeros((vertices.size, self._num_machines), dtype=bool)
        extra[np.arange(vertices.size), machines] = True
        # Master-hosted groups need no sync; don't bill them.
        extra[machines == self._masters[vertices]] = False
        self._account(vertices, extra)

    def _account(self, vertices: np.ndarray, synced: np.ndarray) -> None:
        """Charge sync records (master -> mirror) batched per machine pair."""
        if vertices.size == 0 or not synced.any():
            return
        state = self.state
        records = sync_pair_records(
            self._masters[vertices], synced, self._num_machines
        )
        state.send_pair_matrix(records, kind="sync")
        state.charge_many(records.sum(axis=0), phase="sync")
