"""Simulated GAS/BSP graph engine with byte-exact traffic accounting."""

from .async_engine import AsyncEngine, AsyncVertexProgram
from .breakdown import PhaseBreakdown, traffic_breakdown
from .bsp import BSPEngine
from .program import ApplyResult, BulkVertexProgram
from .state import ClusterState, build_cluster
from .stats import EngineStats, RunReport, StepRecord
from .sync import MirrorSynchronizer

__all__ = [
    "ApplyResult",
    "BulkVertexProgram",
    "BSPEngine",
    "AsyncVertexProgram",
    "AsyncEngine",
    "ClusterState",
    "build_cluster",
    "EngineStats",
    "RunReport",
    "StepRecord",
    "MirrorSynchronizer",
    "PhaseBreakdown",
    "traffic_breakdown",
]
