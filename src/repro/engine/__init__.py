"""Simulated GAS/BSP graph engine with byte-exact traffic accounting."""

from .async_engine import AsyncEngine, AsyncVertexProgram
from .breakdown import PhaseBreakdown, traffic_breakdown
from .bsp import BSPEngine
from .program import ApplyResult, BulkVertexProgram
from .state import ClusterState, build_cluster
from .stats import (
    CostLedger,
    EngineStats,
    RunReport,
    StepRecord,
    apportion_records,
)
from .sync import MirrorSynchronizer, sync_pair_records

__all__ = [
    "ApplyResult",
    "BulkVertexProgram",
    "BSPEngine",
    "AsyncVertexProgram",
    "AsyncEngine",
    "ClusterState",
    "build_cluster",
    "CostLedger",
    "apportion_records",
    "EngineStats",
    "RunReport",
    "StepRecord",
    "MirrorSynchronizer",
    "sync_pair_records",
    "PhaseBreakdown",
    "traffic_breakdown",
]
