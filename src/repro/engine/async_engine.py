"""GraphLab's asynchronous execution engine, simulated.

The paper (Section 1) notes that PowerGraph *does* support an
asynchronous mode, but that "the design of asynchronous graph
algorithms is highly nontrivial and involves locking protocols and
other complications" — FrogWild's randomized synchronization is pitched
as the simple alternative.  To make that comparison concrete the
simulator includes the asynchronous baseline:

* a FIFO scheduler holds pending vertex updates (deduplicated, like
  GraphLab's ``fifo`` scheduler);
* each update runs gather → apply → sync → scatter for **one** vertex
  against the *current* global state — no barriers anywhere;
* consistency is bought with distributed locking: before an update the
  vertex's write lock is acquired on every machine holding a replica
  (charged ``lock_ops`` CPU per replica plus one lock-protocol record
  per *remote* replica) — the locking engine of Low et al.;
* changed vertices synchronize **all** mirrors (the stock engine has no
  ``ps``) and signal their successors, which re-enter the queue.

Because there are no barriers, simulated wall-clock is the busiest
machine's communication + compute time (machines progress in parallel)
plus per-message overheads — the natural asynchronous analogue of the
BSP cost model.
"""

from __future__ import annotations

import abc
from collections import deque

import numpy as np

from ..errors import EngineError
from .state import ClusterState
from .stats import RunReport

__all__ = ["AsyncVertexProgram", "AsyncEngine"]


class AsyncVertexProgram(abc.ABC):
    """Per-vertex update program for the asynchronous engine."""

    #: Human-readable name used in reports.
    name: str = "async_program"

    @abc.abstractmethod
    def initial_data(self, state: ClusterState) -> np.ndarray:
        """Initial per-vertex data (float array of length n)."""

    def initial_schedule(self, state: ClusterState) -> np.ndarray:
        """Vertices scheduled at start; defaults to every vertex."""
        return np.arange(state.num_vertices, dtype=np.int64)

    def gather_contribution(
        self, sources: np.ndarray, data: np.ndarray, state: ClusterState
    ) -> np.ndarray:
        """Per-in-edge contribution (default: random-surfer share).

        The out-degree vector is cached on first use — this runs once
        per vertex update, millions of times per run.
        """
        out_deg = getattr(self, "_out_deg_cache", None)
        if out_deg is None or out_deg.size != state.num_vertices:
            out_deg = np.maximum(
                np.asarray(state.graph.out_degree(), dtype=np.float64), 1.0
            )
            self._out_deg_cache = out_deg
        return data[sources] / out_deg[sources]

    @abc.abstractmethod
    def update(
        self,
        vertex: int,
        gather_sum: float,
        data: np.ndarray,
        state: ClusterState,
    ) -> tuple[float, bool]:
        """One asynchronous update of ``vertex``.

        Returns ``(new_value, signal)``: the vertex's new data and
        whether its out-neighbours should be (re)scheduled.
        """


class AsyncEngine:
    """Runs an :class:`AsyncVertexProgram` to convergence or a cap.

    Parameters
    ----------
    state:
        The simulated cluster.
    program:
        The per-vertex program.
    lock_ops:
        CPU ops charged per replica machine per update for the
        distributed locking protocol (0 models an unsafe lock-free
        execution; GraphLab's locking engine is the default 1).
    """

    def __init__(
        self,
        state: ClusterState,
        program: AsyncVertexProgram,
        lock_ops: int = 1,
    ) -> None:
        if lock_ops < 0:
            raise EngineError("lock_ops must be non-negative")
        self.state = state
        self.program = program
        self.lock_ops = lock_ops
        self.data: np.ndarray | None = None
        self.updates_executed = 0
        self.converged = False

    # ------------------------------------------------------------------
    def run(self, max_updates: int = 1_000_000) -> RunReport:
        """Drain the scheduler; returns the execution report."""
        if max_updates < 1:
            raise EngineError("max_updates must be positive")
        state = self.state
        program = self.program
        n = state.num_vertices
        repl = state.replication
        masters = repl.masters

        data = program.initial_data(state)
        if data.shape != (n,):
            raise EngineError(f"initial_data must have shape ({n},)")
        data = data.astype(np.float64, copy=True)

        queue: deque[int] = deque()
        queued = np.zeros(n, dtype=bool)
        for v in program.initial_schedule(state):
            v = int(v)
            if not queued[v]:
                queue.append(v)
                queued[v] = True

        num_machines = state.num_machines
        lock_records = np.zeros((num_machines, num_machines), dtype=np.int64)
        gather_records = np.zeros_like(lock_records)
        sync_records = np.zeros_like(lock_records)
        scatter_records = np.zeros_like(lock_records)
        ops = np.zeros(num_machines, dtype=np.int64)

        self.updates_executed = 0
        while queue and self.updates_executed < max_updates:
            v = queue.popleft()
            queued[v] = False
            self.updates_executed += 1
            master = int(masters[v])

            # ---- locking: acquire v's lock on every replica ----------
            replicas = repl.replicas_of(v)
            if self.lock_ops:
                for machine in replicas:
                    ops[machine] += self.lock_ops
                    if machine != master:
                        lock_records[master, machine] += 1

            # ---- gather over in-edges, one partial per machine -------
            gather_sum = 0.0
            machines, source_groups = repl.in_edge_groups(v)
            for machine, sources in zip(machines, source_groups):
                contribution = program.gather_contribution(
                    sources, data, state
                )
                gather_sum += float(contribution.sum())
                ops[machine] += sources.size
                if machine != master:
                    gather_records[machine, master] += 1

            # ---- apply ----------------------------------------------
            new_value, signal = program.update(v, gather_sum, data, state)
            changed = new_value != data[v]
            data[v] = new_value
            ops[master] += 1

            # ---- sync: master pushes to every mirror -----------------
            if changed:
                for machine in replicas:
                    if machine != master:
                        sync_records[master, machine] += 1
                        ops[machine] += 1

            # ---- scatter: signal successors --------------------------
            if signal:
                out_machines, target_groups = repl.out_edge_groups(v)
                for machine, targets in zip(out_machines, target_groups):
                    ops[machine] += targets.size
                    target_masters = masters[targets].astype(np.int64)
                    remote = target_masters != machine
                    if remote.any():
                        np.add.at(
                            scatter_records[machine],
                            target_masters[remote],
                            1,
                        )
                    fresh = targets[~queued[targets]]
                    if fresh.size:
                        queued[fresh] = True
                        queue.extend(fresh.tolist())

        self.converged = not queue
        self.data = data

        # Flush accounting in one "epoch": async has no barriers, so the
        # epoch cost (busiest machine's comm + compute) is the natural
        # wall-clock estimate.
        state.charge_many(ops, phase="async")
        state.send_pair_matrix(lock_records, kind="lock")
        state.send_pair_matrix(gather_records, kind="gather")
        state.send_pair_matrix(sync_records, kind="sync")
        state.send_pair_matrix(scatter_records, kind="scatter")
        state.end_superstep(active_vertices=self.updates_executed)
        return self.report()

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        state = self.state
        stats = state.stats
        total = stats.total_seconds()
        updates = max(self.updates_executed, 1)
        return RunReport(
            algorithm=self.program.name,
            num_machines=state.num_machines,
            supersteps=stats.num_supersteps,
            total_time_s=total,
            time_per_iteration_s=total / updates,
            network_bytes=state.fabric.total_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
            extra={
                "updates": float(self.updates_executed),
                "converged": float(self.converged),
            },
        )
