"""Vertex-program API for the simulated PowerGraph engine.

The real PowerGraph expresses computations as per-vertex
Gather/Apply/Scatter (GAS) programs.  This simulator keeps the same
phase structure and accounting but lets programs process the whole
active frontier at once with numpy (a *bulk* program) — idiomatic and
three orders of magnitude faster in Python, while charging exactly the
same per-machine work the per-vertex execution would.

Phases of one superstep for a :class:`BulkVertexProgram`:

1. **Gather** (if ``gather_edges == "in"``): every machine hosting
   in-edges of an active vertex computes a partial sum of
   :meth:`gather_contribution` over its local edges and sends one record
   to the vertex master (free if it *is* the master).
2. **Apply**: masters call :meth:`apply_bulk` on the frontier.
3. **Sync**: every changed vertex pushes one record to each of its
   mirrors — the traffic FrogWild's ``ps`` patch randomizes.
4. **Scatter**: vertices flagged in ``signal_mask`` signal all their
   out-neighbours, activating them next superstep; signal records are
   combined per (hosting machine, target vertex).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["ApplyResult", "BulkVertexProgram"]


@dataclass
class ApplyResult:
    """Outcome of one apply phase.

    Attributes
    ----------
    new_values:
        Updated vertex data aligned with the active frontier.
    signal_mask:
        Which frontier vertices scatter signals to their out-neighbours,
        aligned with the frontier.  ``None`` means none do.
    changed_mask:
        Which frontier vertices actually changed (and therefore must
        synchronize their mirrors).  ``None`` means all of them.
    done:
        Set to stop the run after this superstep (global convergence).
    """

    new_values: np.ndarray
    signal_mask: np.ndarray | None = None
    changed_mask: np.ndarray | None = None
    done: bool = False


class BulkVertexProgram(abc.ABC):
    """Base class for engine computations (see module docstring)."""

    #: "in" to run the gather phase over in-edges, "none" to skip it.
    gather_edges: str = "in"
    #: Human-readable name used in reports.
    name: str = "program"

    @abc.abstractmethod
    def initial_data(self, state) -> np.ndarray:
        """Initial per-vertex data (float array of length n)."""

    def initial_active(self, state) -> np.ndarray:
        """Initial frontier; defaults to all vertices active."""
        return np.ones(state.num_vertices, dtype=bool)

    def gather_contribution(
        self, sources: np.ndarray, data: np.ndarray, state
    ) -> np.ndarray:
        """Per-in-edge contribution given the edge's source vertices.

        Default: the random-surfer share ``data[u] / d_out(u)`` used by
        PageRank.  Only called when ``gather_edges == "in"``.
        """
        out_deg = np.asarray(state.graph.out_degree(), dtype=np.float64)
        return data[sources] / np.maximum(out_deg[sources], 1.0)

    @abc.abstractmethod
    def apply_bulk(
        self,
        active: np.ndarray,
        gather_sums: np.ndarray,
        data: np.ndarray,
        state,
        step: int,
    ) -> ApplyResult:
        """Update the frontier; see :class:`ApplyResult`."""

    def apply_ops_per_vertex(self) -> int:
        """CPU ops charged per applied vertex (default 1)."""
        return 1
