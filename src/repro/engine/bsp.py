"""Bulk-synchronous-parallel driver for :class:`BulkVertexProgram`.

Each superstep runs gather → apply → sync → scatter with byte-exact
traffic accounting (see :mod:`repro.engine.program` for phase
semantics).  The driver is fully vectorized: per-superstep work is a
fixed number of numpy passes over the edge-group tables, independent of
the frontier size.
"""

from __future__ import annotations

import numpy as np

from ..errors import EngineError
from .program import BulkVertexProgram
from .state import ClusterState
from .stats import RunReport

__all__ = ["BSPEngine"]


class BSPEngine:
    """Runs one program to completion on a simulated cluster."""

    def __init__(self, state: ClusterState, program: BulkVertexProgram) -> None:
        if program.gather_edges not in ("in", "none"):
            raise EngineError(
                f"gather_edges must be 'in' or 'none', got "
                f"{program.gather_edges!r}"
            )
        self.state = state
        self.program = program
        self.data: np.ndarray | None = None
        repl = state.replication
        # Static tables reused every superstep.
        self._masters = repl.masters
        self._out_edge_anchor = repl.out_groups.edge_anchor()
        self._out_edge_host = repl.out_groups.edge_machine_sorted
        self._out_edge_target = repl.out_groups.sorted_other
        self._in_group_anchor = repl.in_groups.group_anchor
        self._in_group_machine = repl.in_groups.group_machine
        self._in_group_sizes = repl.in_groups.group_sizes()

    # ------------------------------------------------------------------
    def run(self, max_supersteps: int = 1000) -> RunReport:
        """Execute until the program reports done, the frontier empties,
        or ``max_supersteps`` barriers have elapsed."""
        state = self.state
        program = self.program
        n = state.num_vertices
        data = program.initial_data(state)
        if data.shape != (n,):
            raise EngineError(f"initial_data must have shape ({n},)")
        active_mask = program.initial_active(state).astype(bool)

        for step in range(max_supersteps):
            active_idx = np.flatnonzero(active_mask)
            if active_idx.size == 0:
                break

            gather_sums = self._gather(active_mask, data)
            result = program.apply_bulk(
                active_idx, gather_sums[active_idx], data, state, step
            )
            if result.new_values.shape != active_idx.shape:
                raise EngineError("apply_bulk returned misaligned new_values")
            data = data.copy()
            data[active_idx] = result.new_values
            state.charge_many(
                np.bincount(
                    self._masters[active_idx], minlength=state.num_machines
                )
                * program.apply_ops_per_vertex(),
                phase="apply",
            )

            changed_mask = np.zeros(n, dtype=bool)
            if result.changed_mask is None:
                changed_mask[active_idx] = True
            else:
                changed_mask[active_idx[result.changed_mask]] = True
            self._sync(changed_mask)

            active_mask = self._scatter(active_idx, result.signal_mask)
            state.end_superstep(int(active_idx.size))
            if result.done:
                break

        self.data = data
        return self.report()

    # ------------------------------------------------------------------
    def _gather(self, active_mask: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Distributed gather over in-edges of the active frontier."""
        state = self.state
        n = state.num_vertices
        if self.program.gather_edges == "none":
            return np.zeros(n, dtype=np.float64)
        in_groups = state.replication.in_groups
        if in_groups.num_groups == 0:
            return np.zeros(n, dtype=np.float64)

        weights = self.program.gather_contribution(
            in_groups.sorted_other, data, state
        )
        partials = np.add.reduceat(weights, in_groups.group_start)
        group_active = active_mask[self._in_group_anchor]

        gather_sums = np.zeros(n, dtype=np.float64)
        if group_active.any():
            np.add.at(
                gather_sums,
                self._in_group_anchor[group_active],
                partials[group_active],
            )
            # CPU: one op per local in-edge scanned, on the hosting machine.
            state.charge_many(
                np.bincount(
                    self._in_group_machine[group_active],
                    weights=self._in_group_sizes[group_active],
                    minlength=state.num_machines,
                ).astype(np.int64),
                phase="gather",
            )
            # Network: one partial-sum record per remote (vertex, machine).
            remote = group_active & (
                self._in_group_machine
                != self._masters[self._in_group_anchor]
            )
            if remote.any():
                pair = (
                    self._in_group_machine[remote].astype(np.int64)
                    * state.num_machines
                    + self._masters[self._in_group_anchor[remote]]
                )
                counts = np.bincount(
                    pair, minlength=state.num_machines**2
                ).reshape(state.num_machines, state.num_machines)
                state.send_pair_matrix(counts, kind="gather")
        return gather_sums

    def _sync(self, changed_mask: np.ndarray) -> None:
        """Master-to-mirror synchronization of changed vertices."""
        state = self.state
        if not changed_mask.any():
            return
        records = state.replication.sync_record_matrix(changed_mask)
        state.send_pair_matrix(records, kind="sync")
        # Mirrors apply the cached update: 1 op per record received.
        state.charge_many(records.sum(axis=0), phase="sync")

    def _scatter(
        self, active_idx: np.ndarray, signal_mask: np.ndarray | None
    ) -> np.ndarray:
        """Deliver activation signals along out-edges; return next frontier."""
        state = self.state
        n = state.num_vertices
        next_active = np.zeros(n, dtype=bool)
        if signal_mask is None:
            return next_active
        if signal_mask.shape != active_idx.shape:
            raise EngineError("signal_mask misaligned with frontier")
        signalers = active_idx[signal_mask]
        if signalers.size == 0:
            return next_active

        signaling_vertex = np.zeros(n, dtype=bool)
        signaling_vertex[signalers] = True
        edge_on = signaling_vertex[self._out_edge_anchor]
        if not edge_on.any():
            return next_active
        hosts = self._out_edge_host[edge_on].astype(np.int64)
        targets = self._out_edge_target[edge_on]
        next_active[targets] = True

        # Signals to the same target from the same machine combine into
        # one record (PowerGraph's message combiner).
        pair_keys = np.unique(hosts * n + targets)
        host_u = pair_keys // n
        target_u = pair_keys % n
        dest = self._masters[target_u].astype(np.int64)
        remote = host_u != dest
        if remote.any():
            counts = np.bincount(
                host_u[remote] * state.num_machines + dest[remote],
                minlength=state.num_machines**2,
            ).reshape(state.num_machines, state.num_machines)
            state.send_pair_matrix(counts, kind="scatter")
        # CPU: one op per scanned out-edge on its hosting machine.
        state.charge_many(
            np.bincount(hosts, minlength=state.num_machines).astype(np.int64),
            phase="scatter",
        )
        return next_active

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """Summarize the completed run."""
        state = self.state
        stats = state.stats
        return RunReport(
            algorithm=self.program.name,
            num_machines=state.num_machines,
            supersteps=stats.num_supersteps,
            total_time_s=stats.total_seconds(),
            time_per_iteration_s=stats.seconds_per_step(),
            network_bytes=state.fabric.total_bytes(),
            cpu_seconds=state.cost_model.cpu_seconds(stats.total_cpu_ops()),
        )
