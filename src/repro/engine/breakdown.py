"""Per-phase traffic and CPU breakdown of a completed run.

The paper's mechanism is specific: the ``ps`` patch attacks the *mirror
synchronization* component of each superstep.  Aggregate byte counts
can't show that; this module decomposes a run's bill by record kind
(sync / gather / scatter / lock) and CPU by phase, so experiments can
assert not just *that* traffic fell but that it fell *where the paper
says it falls*.
"""

from __future__ import annotations

from dataclasses import dataclass

from .state import ClusterState

__all__ = ["PhaseBreakdown", "traffic_breakdown"]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Byte/message/op totals keyed by record kind and CPU phase."""

    bytes_by_kind: dict[str, int]
    messages_by_kind: dict[str, int]
    ops_by_phase: dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    @property
    def total_ops(self) -> int:
        return sum(self.ops_by_phase.values())

    def byte_share(self, kind: str) -> float:
        """Fraction of all network bytes carried by ``kind`` records."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return self.bytes_by_kind.get(kind, 0) / total

    def op_share(self, phase: str) -> float:
        """Fraction of all CPU ops charged to ``phase``."""
        total = self.total_ops
        if total == 0:
            return 0.0
        return self.ops_by_phase.get(phase, 0) / total

    def to_text(self) -> str:
        """Aligned two-section summary for reports."""
        lines = ["network bytes by record kind:"]
        for kind in sorted(self.bytes_by_kind):
            share = self.byte_share(kind)
            lines.append(
                f"  {kind:<10s} {self.bytes_by_kind[kind]:>14,}  "
                f"({share:6.1%})"
            )
        lines.append("cpu ops by phase:")
        for phase in sorted(self.ops_by_phase):
            share = self.op_share(phase)
            lines.append(
                f"  {phase:<10s} {self.ops_by_phase[phase]:>14,}  "
                f"({share:6.1%})"
            )
        return "\n".join(lines)


def traffic_breakdown(state: ClusterState) -> PhaseBreakdown:
    """Decompose everything a run charged to ``state`` so far."""
    snapshot = state.fabric.snapshot()
    ops: dict[str, int] = {}
    for machine in state.machines:
        for phase, count in machine.ops_by_phase.items():
            ops[phase] = ops.get(phase, 0) + count
    return PhaseBreakdown(
        bytes_by_kind=dict(snapshot.bytes_by_kind),
        messages_by_kind=dict(snapshot.messages_by_kind),
        ops_by_phase=ops,
    )
