"""Shared mutable state of a running simulated-cluster computation.

A :class:`ClusterState` bundles the graph, its replication tables, the
network fabric, the machine group and the simulated clock, and provides
the accounting primitives every algorithm uses:

* :meth:`charge` — CPU work on one machine (vectorized variant
  :meth:`charge_many`),
* :meth:`send_batched` — one batched message of N records between two
  machines,
* :meth:`end_superstep` — close the BSP barrier: convert this step's
  traffic and work into simulated time, append a stats row, reset the
  per-step accumulators.

Both the generic BSP engine and the FrogWild runner (which patches the
synchronization behaviour) are built on these primitives, so their
network/CPU/time numbers are directly comparable — the property the
paper's evaluation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import (
    CostModel,
    EdgePartition,
    MachineGroup,
    MessageSizeModel,
    NetworkFabric,
    ReplicationTable,
    SimulatedClock,
    make_partitioner,
)
from ..errors import EngineError
from ..graph import DiGraph
from .stats import EngineStats

__all__ = ["ClusterState", "build_cluster"]


@dataclass
class ClusterState:
    """All state shared by machines during one computation."""

    graph: DiGraph
    replication: ReplicationTable
    fabric: NetworkFabric
    machines: MachineGroup
    cost_model: CostModel
    clock: SimulatedClock
    stats: EngineStats

    def __post_init__(self) -> None:
        self._step_ops = np.zeros(self.num_machines, dtype=np.int64)
        self._step_messages = 0

    @property
    def num_machines(self) -> int:
        return self.fabric.num_machines

    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    # ------------------------------------------------------------------
    # Derived-structure cache (per ingress, not per state)
    # ------------------------------------------------------------------
    def ingress_cache(self, key: str, build):
        """Memoize a derived read-only structure on this state's ingress.

        The serving layer builds a *fresh* :class:`ClusterState` per
        dispatched batch (clean traffic/CPU/time accounting) while
        sharing one :class:`~repro.cluster.ReplicationTable`; anything
        derived purely from that ingress — the FrogWild kernel tables,
        the mirror bitmap — is therefore identical across those states.
        This memo lives on the replication table itself, so it is built
        once per ingress and reused by every batch, and is dropped
        automatically when a live-graph refresh replaces the table.

        The live refresh pipeline *pre-seeds* this cache: when
        :class:`~repro.live.IncrementalReplication` patches a table to a
        new snapshot it calls
        :func:`repro.core.frogwild.prime_ingress_caches` off the query
        path, so the entries are already warm when the first batch of
        the new epoch arrives — built from spliced group arrays rather
        than recomputed per epoch.

        Callers must treat cached values as immutable (or copy-on-write
        them, as :meth:`~repro.engine.MirrorSynchronizer.disable_machine`
        does): they are shared across executions.
        """
        cache = getattr(self.replication, "_ingress_cache", None)
        if cache is None:
            cache = {}
            self.replication._ingress_cache = cache
        if key not in cache:
            cache[key] = build()
        return cache[key]

    # ------------------------------------------------------------------
    # Accounting primitives
    # ------------------------------------------------------------------
    def charge(self, machine: int, ops: int, phase: str = "compute") -> None:
        """Charge CPU ops to one machine within the current superstep."""
        self.machines[machine].charge(ops, phase)
        self._step_ops[machine] += ops

    def charge_many(self, ops_per_machine: np.ndarray, phase: str = "compute") -> None:
        """Charge an ops vector (length ``num_machines``) at once."""
        ops_per_machine = np.asarray(ops_per_machine, dtype=np.int64)
        if ops_per_machine.shape != (self.num_machines,):
            raise EngineError(
                f"ops vector must have shape ({self.num_machines},), "
                f"got {ops_per_machine.shape}"
            )
        for machine_id in np.flatnonzero(ops_per_machine):
            self.machines[machine_id].charge(
                int(ops_per_machine[machine_id]), phase
            )
        self._step_ops += ops_per_machine

    def send_batched(self, src: int, dst: int, num_records: int, kind: str) -> None:
        """Send one batched message; no-ops for local or empty batches."""
        self.fabric.send(src, dst, num_records, kind)
        if src != dst and num_records > 0:
            self._step_messages += 1

    def send_pair_matrix(self, records: np.ndarray, kind: str) -> None:
        """Send batched messages for a full (src, dst) record-count matrix.

        ``records[s, d]`` is the number of records machine ``s`` sends to
        machine ``d`` this superstep (diagonal ignored: local is free).
        Delegates to the fabric's vectorized matrix send — one pass over
        the pair matrix instead of a Python call per machine pair.
        """
        records = np.asarray(records)
        if records.shape != (self.num_machines, self.num_machines):
            raise EngineError("record matrix shape mismatch")
        _, messages = self.fabric.send_matrix(records, kind)
        self._step_messages += messages

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def end_superstep(self, active_vertices: int) -> None:
        """Close the superstep: time accounting + stats row + reset."""
        sent, received = self.fabric.step_traffic()
        cost = self.cost_model.superstep_time(
            sent, received, self._step_ops, self._step_messages
        )
        self.clock.advance(cost)
        self.stats.record_step(
            active=active_vertices,
            bytes_sent=int(sent.sum()),
            cpu_ops=int(self._step_ops.sum()),
            sim_seconds=cost.total_s,
        )
        self.fabric.end_superstep()
        self._step_ops[:] = 0
        self._step_messages = 0


def build_cluster(
    graph: DiGraph,
    num_machines: int,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    seed: int | None = 0,
    partition: EdgePartition | None = None,
    replication: ReplicationTable | None = None,
) -> ClusterState:
    """Construct a ready-to-run simulated cluster for ``graph``.

    ``partition`` may be supplied to reuse an ingress across runs (the
    paper excludes ingress from all measurements, and so do we);
    ``replication`` additionally reuses the derived master/mirror tables
    — the serving layer's per-batch states share one such ingress while
    keeping fresh traffic/CPU/time accounting per batch.
    """
    if replication is not None:
        if replication.num_machines != num_machines:
            raise EngineError(
                f"supplied replication targets {replication.num_machines} "
                f"machines, requested {num_machines}"
            )
        if replication.graph.num_vertices != graph.num_vertices:
            raise EngineError(
                "supplied replication was built for a different graph"
            )
    else:
        if partition is None:
            partition = make_partitioner(partitioner, seed).partition(
                graph, num_machines
            )
        elif partition.num_machines != num_machines:
            raise EngineError(
                f"supplied partition targets {partition.num_machines} machines, "
                f"requested {num_machines}"
            )
        replication = ReplicationTable(graph, partition, seed=seed)
    return ClusterState(
        graph=graph,
        replication=replication,
        fabric=NetworkFabric(num_machines, size_model),
        machines=MachineGroup(num_machines),
        cost_model=cost_model or CostModel(),
        clock=SimulatedClock(),
        stats=EngineStats(),
    )
