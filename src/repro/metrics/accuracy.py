"""Top-k accuracy metrics (Section 2.1.1 of the paper).

Two headline metrics:

* **Mass captured** (Definition 2): take the k vertices the estimate
  ranks highest and sum their *true* PageRank.  Maximized by the true
  vector itself, so the normalized form divides by ``mu_k(pi)`` — the
  quantity plotted in Figures 2a, 3, 5, 6 and 7.
* **Exact identification**: fraction of the estimated top-k that belong
  to the true top-k (Figure 2b).
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import top_k_indices
from ..errors import ConfigError

__all__ = [
    "mass_captured",
    "optimal_mass",
    "normalized_mass_captured",
    "exact_identification",
    "l1_error",
    "linf_error",
]


def _validate(estimate: np.ndarray, truth: np.ndarray, k: int) -> None:
    if estimate.shape != truth.shape:
        raise ConfigError(
            f"estimate and truth must align, got {estimate.shape} vs "
            f"{truth.shape}"
        )
    if k < 1:
        raise ConfigError("k must be positive")


def mass_captured(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """mu_k(v): true mass of the estimate's top-k set (Definition 2)."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    _validate(estimate, truth, k)
    chosen = top_k_indices(estimate, k)
    return float(truth[chosen].sum())


def optimal_mass(truth: np.ndarray, k: int) -> float:
    """mu_k(pi): the best mass any k-set can capture."""
    truth = np.asarray(truth, dtype=np.float64)
    if k < 1:
        raise ConfigError("k must be positive")
    return float(truth[top_k_indices(truth, k)].sum())


def normalized_mass_captured(
    estimate: np.ndarray, truth: np.ndarray, k: int
) -> float:
    """mu_k(v) / mu_k(pi) in [0, 1]; the paper's accuracy axis."""
    best = optimal_mass(truth, k)
    if best <= 0:
        raise ConfigError("true distribution has no mass in its top-k")
    return mass_captured(estimate, truth, k) / best


def exact_identification(
    estimate: np.ndarray, truth: np.ndarray, k: int
) -> float:
    """|top-k(estimate) ∩ top-k(truth)| / k (Figure 2b's metric)."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    _validate(estimate, truth, k)
    found = np.intersect1d(
        top_k_indices(estimate, k), top_k_indices(truth, k)
    )
    return found.size / float(min(k, truth.size))


def l1_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Total-variation-style l1 distance between the distributions."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ConfigError("estimate and truth must align")
    return float(np.abs(estimate - truth).sum())


def linf_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Largest per-vertex deviation."""
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ConfigError("estimate and truth must align")
    return float(np.abs(estimate - truth).max())
