"""Ranking-comparison utilities beyond the paper's two headline metrics.

Useful when analysing *how* an approximation degrades: overlap of the
top-k sets, rank correlation among the vertices both rankings place in
their top-k, and the average true rank of the reported list.
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import top_k_indices
from ..errors import ConfigError

__all__ = [
    "topk_jaccard",
    "topk_kendall_tau",
    "mean_true_rank",
]


def topk_jaccard(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Jaccard similarity of the two top-k sets."""
    if k < 1:
        raise ConfigError("k must be positive")
    a = set(top_k_indices(np.asarray(estimate), k).tolist())
    b = set(top_k_indices(np.asarray(truth), k).tolist())
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def topk_kendall_tau(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Kendall tau between the orderings on the *common* top-k vertices.

    Returns 1.0 when fewer than two vertices are common (no discordance
    is observable).
    """
    if k < 1:
        raise ConfigError("k must be positive")
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    common = np.intersect1d(
        top_k_indices(estimate, k), top_k_indices(truth, k)
    )
    if common.size < 2:
        return 1.0
    est_order = np.argsort(-estimate[common], kind="stable")
    true_scores = truth[common][est_order]
    concordant = 0
    discordant = 0
    for i in range(true_scores.size - 1):
        later = true_scores[i + 1 :]
        concordant += int((true_scores[i] > later).sum())
        discordant += int((true_scores[i] < later).sum())
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total


def mean_true_rank(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Average (1-based) true rank of the estimate's top-k vertices.

    A perfect estimate scores ``(k + 1) / 2``.
    """
    if k < 1:
        raise ConfigError("k must be positive")
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    true_rank = np.empty(truth.size, dtype=np.int64)
    true_rank[np.argsort(-truth, kind="stable")] = np.arange(1, truth.size + 1)
    chosen = top_k_indices(estimate, k)
    return float(true_rank[chosen].mean())
