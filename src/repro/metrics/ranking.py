"""Graded ranking metrics: NDCG and rank-biased overlap.

The paper's two metrics (mass captured, exact identification) treat the
top-k as a *set*.  When analysing how an approximation orders the head
— which the telecom/OSN applications care about, since budget is spent
top-down — position-aware metrics complete the picture:

* **NDCG@k** grades the estimate's top-k by the true PageRank values
  with logarithmic position discounting (a near-miss at rank 2 costs
  more than one at rank 100);
* **RBO** (rank-biased overlap, Webber et al. 2010) compares two
  *indefinite* rankings by the expected overlap seen by a persistent
  reader, parameterized by persistence ``p`` — robust to the unstable
  tails that make Kendall tau noisy on near-ties.
"""

from __future__ import annotations

import numpy as np

from ..core.estimator import top_k_indices
from ..errors import ConfigError

__all__ = ["ndcg_at_k", "rank_biased_overlap"]


def ndcg_at_k(estimate: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Normalized discounted cumulative gain of the estimated top-k.

    Gains are the *true* PageRank values of the vertices the estimate
    ranks at positions 1..k, discounted by ``1 / log2(position + 1)``,
    normalized by the ideal (truth-ordered) DCG.  1.0 means the
    estimate's head ordering is value-perfect.
    """
    if k < 1:
        raise ConfigError("k must be positive")
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ConfigError("estimate and truth must have equal shape")
    if truth.min() < 0:
        raise ConfigError("truth must be non-negative (a score vector)")
    k = min(k, truth.size)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((truth[top_k_indices(estimate, k)] * discounts).sum())
    ideal = float((truth[top_k_indices(truth, k)] * discounts).sum())
    if ideal == 0:
        return 1.0
    return dcg / ideal


def rank_biased_overlap(
    estimate: np.ndarray,
    truth: np.ndarray,
    p: float = 0.9,
    depth: int | None = None,
) -> float:
    """Rank-biased overlap of the two induced rankings.

    ``RBO = (1 - p) * sum_{d>=1} p^(d-1) * |A_d ∩ B_d| / d`` where
    ``A_d``/``B_d`` are the depth-``d`` prefixes.  Evaluated to
    ``depth`` (default: the full vector) and extrapolated with the
    final agreement for the truncated tail, keeping the value in
    [0, 1].  ``p`` close to 1 weights deep agreement; small ``p``
    concentrates on the very top.
    """
    if not 0.0 < p < 1.0:
        raise ConfigError(f"persistence p must lie in (0, 1), got {p}")
    estimate = np.asarray(estimate, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimate.shape != truth.shape:
        raise ConfigError("estimate and truth must have equal shape")
    n = truth.size
    if n == 0:
        raise ConfigError("cannot compare empty rankings")
    depth = n if depth is None else min(depth, n)
    if depth < 1:
        raise ConfigError("depth must be positive")

    order_a = top_k_indices(estimate, depth)
    order_b = top_k_indices(truth, depth)
    seen_a: set[int] = set()
    seen_b: set[int] = set()
    overlap = 0
    score = 0.0
    weight = 1.0 - p
    agreement = 0.0
    for d in range(1, depth + 1):
        a, b = int(order_a[d - 1]), int(order_b[d - 1])
        if a == b:
            overlap += 1
        else:
            if a in seen_b:
                overlap += 1
            if b in seen_a:
                overlap += 1
        seen_a.add(a)
        seen_b.add(b)
        agreement = overlap / d
        score += weight * agreement
        weight *= p
    # Tail extrapolation: assume the final agreement persists.
    score += agreement * p**depth
    return float(min(score, 1.0))
