"""Accuracy metrics for top-k PageRank approximations."""

from .accuracy import (
    exact_identification,
    l1_error,
    linf_error,
    mass_captured,
    normalized_mass_captured,
    optimal_mass,
)
from .comparison import mean_true_rank, topk_jaccard, topk_kendall_tau
from .ranking import ndcg_at_k, rank_biased_overlap

__all__ = [
    "mass_captured",
    "optimal_mass",
    "normalized_mass_captured",
    "exact_identification",
    "l1_error",
    "linf_error",
    "topk_jaccard",
    "topk_kendall_tau",
    "mean_true_rank",
    "ndcg_at_k",
    "rank_biased_overlap",
]
