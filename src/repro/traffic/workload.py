"""Synthetic user populations and the query streams they generate.

The workload layer turns arrival *instants* (:mod:`repro.traffic.arrivals`)
into arrival *queries*: each event is attributed to a user drawn from a
Zipf popularity law, and each user owns a persistent personalized seed
set (their "interests"), itself drawn from a Zipf law over vertices.

That double-Zipf structure is what makes the stream realistic for a
caching service: a heavy-tailed user law means the same hot users (and
hence the same cache keys) recur often enough for the TTL/LRU cache and
the in-flight coalescer to matter, while the long tail keeps producing
cold queries that must ride the cluster — the mixture every production
cache sees.  Everything is deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..serving.batching import RankingQuery
from .arrivals import ArrivalProcess

__all__ = ["UserPopulation", "QueryEvent", "TrafficWorkload"]


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


@dataclass(frozen=True)
class QueryEvent:
    """One scheduled arrival: when, who, and what they ask."""

    time_s: float
    user_id: int
    query: RankingQuery


class UserPopulation:
    """A fixed population of users with persistent Zipf interests.

    Parameters
    ----------
    num_users:
        Population size.  User ``u``'s query is a pure function of
        ``(seed, u)`` — ask twice, get the identical
        :class:`~repro.serving.RankingQuery` (and hence cache key).
    num_vertices:
        Vertex-id range queries may seed from (the served graph's
        ``num_vertices``).
    seeds_per_user:
        Size of each user's personalized seed set.
    vertex_exponent:
        Zipf exponent of vertex popularity: interests concentrate on a
        small popular core (vertex ids are rank-shuffled first so
        popularity is not correlated with graph construction order).
    k:
        Answer length every generated query requests.
    seed:
        Master seed for all population randomness.
    """

    def __init__(
        self,
        num_users: int,
        num_vertices: int,
        seeds_per_user: int = 1,
        vertex_exponent: float = 1.1,
        k: int = 10,
        seed: int = 0,
    ) -> None:
        if num_users < 1:
            raise ConfigError("num_users must be positive")
        if num_vertices < 1:
            raise ConfigError("num_vertices must be positive")
        if not 1 <= seeds_per_user <= num_vertices:
            raise ConfigError(
                "seeds_per_user must lie in [1, num_vertices]"
            )
        if vertex_exponent <= 0:
            raise ConfigError("vertex_exponent must be positive")
        if k < 1:
            raise ConfigError("k must be positive")
        self.num_users = int(num_users)
        self.num_vertices = int(num_vertices)
        self.seeds_per_user = int(seeds_per_user)
        self.vertex_exponent = float(vertex_exponent)
        self.k = int(k)
        self.seed = int(seed)
        rng = np.random.default_rng([37, self.seed])
        # Popularity rank r maps to a random vertex id; weight ~ r^-s.
        self._ranked_vertices = rng.permutation(self.num_vertices)
        self._vertex_weights = _zipf_weights(
            self.num_vertices, self.vertex_exponent
        )
        # Draw every user's interest set up front (one vectorizable
        # pass, then per-user slices) so query_for stays O(seeds).
        self._user_seeds = np.empty(
            (self.num_users, self.seeds_per_user), dtype=np.int64
        )
        for user in range(self.num_users):
            user_rng = np.random.default_rng([37, self.seed, user])
            ranks = user_rng.choice(
                self.num_vertices,
                size=self.seeds_per_user,
                replace=False,
                p=self._vertex_weights,
            )
            self._user_seeds[user] = self._ranked_vertices[ranks]

    def query_for(self, user_id: int) -> RankingQuery:
        """The (deterministic) query user ``user_id`` always issues."""
        if not 0 <= user_id < self.num_users:
            raise ConfigError(
                f"user_id must lie in [0, {self.num_users}), got {user_id}"
            )
        seeds = tuple(int(v) for v in sorted(self._user_seeds[user_id]))
        return RankingQuery(seeds=seeds, k=self.k)

    def distinct_queries(self) -> int:
        """Number of distinct cache keys the population can generate."""
        return len(
            {tuple(sorted(row.tolist())) for row in self._user_seeds}
        )


class TrafficWorkload:
    """An arrival process crossed with a user population.

    ``events(duration_s)`` materializes the full open-loop schedule:
    arrival instants from the process, each attributed to a user drawn
    from a Zipf law over the population (``user_exponent`` controls how
    heavy the heavy users are), each carrying that user's persistent
    query.
    """

    def __init__(
        self,
        population: UserPopulation,
        arrivals: ArrivalProcess,
        user_exponent: float = 1.0,
        seed: int = 0,
    ) -> None:
        if user_exponent <= 0:
            raise ConfigError("user_exponent must be positive")
        self.population = population
        self.arrivals = arrivals
        self.user_exponent = float(user_exponent)
        self.seed = int(seed)

    def events(self, duration_s: float) -> list[QueryEvent]:
        """The deterministic arrival schedule on ``[0, duration_s)``."""
        times = self.arrivals.times(duration_s)
        rng = np.random.default_rng([41, self.seed])
        weights = _zipf_weights(
            self.population.num_users, self.user_exponent
        )
        users = rng.choice(
            self.population.num_users, size=len(times), p=weights
        )
        return [
            QueryEvent(
                time_s=float(t),
                user_id=int(u),
                query=self.population.query_for(int(u)),
            )
            for t, u in zip(times, users)
        ]
