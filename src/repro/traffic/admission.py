"""Admission control and the backlog-triggered degradation ladder.

FrogWild's whole point is a *tunable* accuracy-for-cost knob: fewer
frogs and earlier stopping give a cheaper answer whose error Theorem 1
still bounds.  Under backlog that knob is exactly what a service should
turn — instead of letting the queue grow without bound (latency →
infinity for everyone) it serves *bounded-error* answers faster, and
only when even the cheapest rung cannot keep up does it shed load
outright with a typed :class:`~repro.errors.OverloadError`.

:class:`AdmissionController` makes that policy explicit and auditable:

* a hard ``max_pending`` bound on the scheduler queue — at or beyond
  it, new work is **shed** (fail-fast, never silently dropped);
* a :class:`DegradationLadder` of rungs engaged at increasing
  queue-depth fractions, each shrinking the frog budget and/or capping
  supersteps;
* every degraded config's implied error bound, computed through
  :func:`repro.theory.bounds.theorem1_epsilon` with the intersection
  probability of Theorem 2, so the accuracy given up is *reported*
  alongside the answer, never silently lost.

The controller is pure policy: it never touches the queue itself.  The
:class:`~repro.serving.RankingService` consults it under its own lock
(see ``admission=`` in the service constructor), which is why the
counters here need no locking of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import FrogWildConfig
from ..errors import ConfigError
from ..theory.bounds import config_error_bound

__all__ = [
    "DegradeRung",
    "DegradationLadder",
    "AdmissionDecision",
    "AdmissionStats",
    "AdmissionController",
]


@dataclass(frozen=True)
class DegradeRung:
    """One rung of the ladder: how much fidelity to give up.

    ``frog_fraction`` scales the query's frog budget (N); a
    ``max_iterations`` of ``None`` leaves the cut-off t alone.  Both
    knobs map one-to-one onto the terms of Theorem 1: fewer frogs grow
    the sampling loss, a smaller t grows the mixing loss.
    """

    frog_fraction: float
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.frog_fraction <= 1.0:
            raise ConfigError("frog_fraction must lie in (0, 1]")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ConfigError("max_iterations must be positive (or None)")


@dataclass(frozen=True)
class DegradationLadder:
    """Backlog thresholds mapped to degrade rungs.

    ``rungs[i]`` engages once queue depth reaches
    ``trigger_fractions[i] * max_pending``; fractions must be strictly
    increasing and the rungs monotonically cheaper, so deeper backlog
    never buys *more* work per query.
    """

    rungs: tuple[DegradeRung, ...] = (
        DegradeRung(frog_fraction=0.5, max_iterations=3),
        DegradeRung(frog_fraction=0.25, max_iterations=2),
    )
    trigger_fractions: tuple[float, ...] = (0.5, 0.75)

    def __post_init__(self) -> None:
        if len(self.rungs) != len(self.trigger_fractions):
            raise ConfigError(
                "rungs and trigger_fractions must align one-to-one"
            )
        if any(not 0.0 < f < 1.0 for f in self.trigger_fractions):
            raise ConfigError("trigger_fractions must lie in (0, 1)")
        if list(self.trigger_fractions) != sorted(
            set(self.trigger_fractions)
        ):
            raise ConfigError(
                "trigger_fractions must be strictly increasing"
            )
        for earlier, later in zip(self.rungs, self.rungs[1:]):
            if later.frog_fraction > earlier.frog_fraction:
                raise ConfigError(
                    "rungs must degrade monotonically (frog_fraction "
                    "must not increase down the ladder)"
                )

    def level_for(self, depth: int, max_pending: int) -> int:
        """The rung engaged at this queue depth (0: full fidelity)."""
        level = 0
        for i, fraction in enumerate(self.trigger_fractions):
            if depth >= fraction * max_pending:
                level = i + 1
        return level


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller ruled for one arriving query."""

    action: str  # "admit" | "degrade" | "shed"
    level: int = 0
    depth: int = 0
    limit: int = 0


@dataclass
class AdmissionStats:
    """Lifetime decision counters of one controller."""

    offered: int = 0
    admitted: int = 0
    degraded: int = 0
    shed: int = 0
    # Decisions per ladder rung, keyed by level (>= 1).
    degraded_by_level: dict[int, int] = field(default_factory=dict)

    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def degraded_rate(self) -> float:
        return self.degraded / self.offered if self.offered else 0.0

    def as_dict(self) -> dict[str, float]:
        row = {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "degraded": float(self.degraded),
            "shed": float(self.shed),
            "shed_rate": self.shed_rate(),
            "degraded_rate": self.degraded_rate(),
        }
        for level, count in sorted(self.degraded_by_level.items()):
            row[f"degraded_level{level}"] = float(count)
        return row


class AdmissionController:
    """Queue-bound admission with an SLO ladder of degraded modes.

    Parameters
    ----------
    max_pending:
        Hard bound on scheduler queue depth.  A query arriving at
        depth >= ``max_pending`` is shed.
    ladder:
        The degradation policy; ``None`` uses the two-rung default
        (half frogs / t<=3, then quarter frogs / t<=2).
    delta:
        Confidence parameter of Theorem 1's guarantee (the reported
        bound holds with probability >= 1 - delta).
    pi_max:
        Upper bound on the personalized PageRank vector's largest
        entry, feeding Theorem 2's intersection-probability bound.
        The conservative default (0.01) reflects the top-entry mass
        typical of power-law graphs; callers who know their graph can
        tighten it (e.g. from an exact run's ``pi.max()``).
    """

    def __init__(
        self,
        max_pending: int = 64,
        ladder: DegradationLadder | None = None,
        delta: float = 0.1,
        pi_max: float = 0.01,
    ) -> None:
        if max_pending < 1:
            raise ConfigError("max_pending must be positive")
        if not 0.0 < delta < 1.0:
            raise ConfigError("delta must lie in (0, 1)")
        if not 0.0 <= pi_max <= 1.0:
            raise ConfigError("pi_max must lie in [0, 1]")
        self.max_pending = int(max_pending)
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.delta = float(delta)
        self.pi_max = float(pi_max)
        self.stats = AdmissionStats()

    def decide(self, depth: int) -> AdmissionDecision:
        """Rule on one arriving query given the current queue depth.

        Not independently thread-safe: the owning service calls this
        under the same lock that guards its queue and stats.
        """
        self.stats.offered += 1
        if depth >= self.max_pending:
            self.stats.shed += 1
            return AdmissionDecision(
                action="shed", depth=depth, limit=self.max_pending
            )
        level = self.ladder.level_for(depth, self.max_pending)
        if level > 0:
            self.stats.degraded += 1
            self.stats.degraded_by_level[level] = (
                self.stats.degraded_by_level.get(level, 0) + 1
            )
            return AdmissionDecision(
                action="degrade",
                level=level,
                depth=depth,
                limit=self.max_pending,
            )
        self.stats.admitted += 1
        return AdmissionDecision(
            action="admit", depth=depth, limit=self.max_pending
        )

    def degraded_config(
        self, config: FrogWildConfig, level: int
    ) -> FrogWildConfig:
        """The config rung ``level`` (>= 1) turns ``config`` into."""
        if not 1 <= level <= len(self.ladder.rungs):
            raise ConfigError(
                f"level must lie in [1, {len(self.ladder.rungs)}], "
                f"got {level}"
            )
        rung = self.ladder.rungs[level - 1]
        num_frogs = max(1, int(config.num_frogs * rung.frog_fraction))
        iterations = config.iterations
        if rung.max_iterations is not None:
            iterations = min(iterations, rung.max_iterations)
        if num_frogs == config.num_frogs and iterations == config.iterations:
            return config
        return config.with_updates(
            num_frogs=num_frogs, iterations=iterations
        )

    def error_bound(
        self, config: FrogWildConfig, k: int, num_vertices: int
    ) -> float:
        """Theorem 1's epsilon for answers served under ``config``.

        The intersection probability comes from Theorem 2 with the
        controller's ``pi_max``; the result is the accuracy actually
        promised by a degraded (or full-fidelity) answer.  Delegates to
        :func:`repro.theory.bounds.config_error_bound` — the same
        machinery the process backend uses to widen partial answers'
        bounds after a shard loss.
        """
        return config_error_bound(
            config,
            k,
            num_vertices,
            delta=self.delta,
            pi_max=self.pi_max,
        )
