"""Folding a traffic run into one flat, machine-checkable metric row.

A :class:`TrafficReport` is the single artifact a traffic run leaves
behind: arrival volume, queue behavior, utilization, the tracer's
latency/shed/degrade summary, the admission controller's decision
counters and the service's own lifetime stats — flattened into the
``str -> float`` row that :func:`repro.experiments.perf.record_perf`
lands in ``BENCH_serving.json`` and the CI traffic lane asserts
against (shed rate bounded, p99 finite, degraded answers carrying
bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrafficReport"]


@dataclass(frozen=True)
class TrafficReport:
    """Summary of one traffic run (virtual or wall-clock)."""

    duration_s: float
    arrivals: int
    queue_depth_max: int
    queue_depth_mean: float
    utilization: float
    busy_s: float
    traffic: dict[str, float] = field(default_factory=dict)
    admission: dict[str, float] = field(default_factory=dict)
    service: dict[str, float] = field(default_factory=dict)
    scheduler: dict[str, float] = field(default_factory=dict)
    cache: dict[str, float] = field(default_factory=dict)

    @property
    def offered_rate_qps(self) -> float:
        return self.arrivals / self.duration_s if self.duration_s else 0.0

    def as_dict(self) -> dict[str, float]:
        """One flat row: run scalars plus prefixed component summaries."""
        row: dict[str, float] = {
            "duration_s": self.duration_s,
            "arrivals": float(self.arrivals),
            "offered_rate_qps": self.offered_rate_qps,
            "queue_depth_max": float(self.queue_depth_max),
            "queue_depth_mean": self.queue_depth_mean,
            "utilization": self.utilization,
            "busy_s": self.busy_s,
        }
        row.update(self.traffic)
        row.update({f"admission_{k}": v for k, v in self.admission.items()})
        row.update({f"service_{k}": v for k, v in self.service.items()})
        row.update(
            {f"scheduler_{k}": v for k, v in self.scheduler.items()}
        )
        row.update({f"cache_{k}": v for k, v in self.cache.items()})
        return row
