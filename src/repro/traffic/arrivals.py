"""Open-loop arrival processes for the traffic harness.

Open-loop means arrivals do **not** wait for the service: the process
emits query instants from its own law, and a slow server simply watches
its queue grow — exactly the regime where admission control earns its
keep.  (A closed-loop driver, where each user waits for their answer
before asking again, self-throttles and can never overload anything.)

Three processes cover the shapes production traffic actually takes:

* :class:`PoissonArrivals` — homogeneous Poisson at a constant rate,
  the memoryless baseline;
* :class:`DiurnalArrivals` — a sinusoidally modulated rate (day/night
  cycle), the slow envelope real services provision for;
* :class:`BurstArrivals` — a flash crowd: baseline rate with a
  rectangular burst window at a multiple of it, the overload scenario
  the degradation ladder is designed around.

All processes are inhomogeneous-Poisson under the hood and sample via
Lewis–Shedler thinning against their peak rate, so a fixed seed yields
a bit-identical arrival sequence on every run — the property the
deterministic virtual-clock harness and CI lane rely on.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstArrivals",
]


class ArrivalProcess:
    """Base class: an intensity function sampled by thinning.

    Subclasses define :meth:`rate` (the instantaneous intensity in
    queries/second) and :attr:`peak_rate` (a finite upper bound on it);
    :meth:`times` then draws one realization of the process.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    @property
    def peak_rate(self) -> float:
        raise NotImplementedError

    def rate(self, t: float) -> float:
        """Instantaneous arrival intensity at time ``t`` (queries/s)."""
        raise NotImplementedError

    def times(self, duration_s: float) -> np.ndarray:
        """One arrival realization on ``[0, duration_s)``, sorted.

        Lewis–Shedler thinning: candidate points from a homogeneous
        Poisson process at ``peak_rate`` are kept with probability
        ``rate(t) / peak_rate``.  Deterministic for a fixed seed.
        """
        if duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        lam = self.peak_rate
        rng = np.random.default_rng([31, self.seed])
        out: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / lam)
            if t >= duration_s:
                break
            if rng.random() * lam <= self.rate(t):
                out.append(t)
        return np.asarray(out, dtype=np.float64)

    def expected_count(self, duration_s: float, steps: int = 1024) -> float:
        """Trapezoidal integral of the rate (capacity-planning aid)."""
        grid = np.linspace(0.0, duration_s, steps)
        return float(np.trapezoid([self.rate(t) for t in grid], grid))


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_qps`` queries/second."""

    def __init__(self, rate_qps: float, seed: int = 0) -> None:
        super().__init__(seed)
        if rate_qps <= 0:
            raise ConfigError("rate_qps must be positive")
        self.rate_qps = float(rate_qps)

    @property
    def peak_rate(self) -> float:
        return self.rate_qps

    def rate(self, t: float) -> float:
        return self.rate_qps


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night modulation between a trough and a peak.

    ``rate(t) = mid + amp * sin(2π t / period_s + phase)`` with
    ``mid = (trough + peak) / 2`` — the classic diurnal envelope,
    compressed to whatever ``period_s`` the test or benchmark can
    afford to simulate.
    """

    def __init__(
        self,
        trough_qps: float,
        peak_qps: float,
        period_s: float,
        phase: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if trough_qps <= 0 or peak_qps <= 0:
            raise ConfigError("rates must be positive")
        if peak_qps < trough_qps:
            raise ConfigError("peak_qps must be >= trough_qps")
        if period_s <= 0:
            raise ConfigError("period_s must be positive")
        self.trough_qps = float(trough_qps)
        self.peak_qps = float(peak_qps)
        self.period_s = float(period_s)
        self.phase = float(phase)

    @property
    def peak_rate(self) -> float:
        return self.peak_qps

    def rate(self, t: float) -> float:
        mid = 0.5 * (self.trough_qps + self.peak_qps)
        amp = 0.5 * (self.peak_qps - self.trough_qps)
        return mid + amp * math.sin(
            2.0 * math.pi * t / self.period_s + self.phase
        )


class BurstArrivals(ArrivalProcess):
    """A flash crowd: baseline rate with one rectangular burst window.

    Inside ``[burst_start_s, burst_start_s + burst_duration_s)`` the
    rate jumps to ``burst_qps``; outside it stays at ``base_qps``.
    The deterministic overload scenario drives the burst far beyond
    service capacity and watches the queue.
    """

    def __init__(
        self,
        base_qps: float,
        burst_qps: float,
        burst_start_s: float,
        burst_duration_s: float,
        seed: int = 0,
    ) -> None:
        super().__init__(seed)
        if base_qps <= 0 or burst_qps <= 0:
            raise ConfigError("rates must be positive")
        if burst_qps < base_qps:
            raise ConfigError("burst_qps must be >= base_qps")
        if burst_start_s < 0 or burst_duration_s <= 0:
            raise ConfigError("burst window must be non-degenerate")
        self.base_qps = float(base_qps)
        self.burst_qps = float(burst_qps)
        self.burst_start_s = float(burst_start_s)
        self.burst_duration_s = float(burst_duration_s)

    @property
    def peak_rate(self) -> float:
        return self.burst_qps

    def rate(self, t: float) -> float:
        lo = self.burst_start_s
        if lo <= t < lo + self.burst_duration_s:
            return self.burst_qps
        return self.base_qps

    def in_burst(self, t: float) -> bool:
        lo = self.burst_start_s
        return lo <= t < lo + self.burst_duration_s
