"""Chaos schedules: real-process fault injection under live traffic.

:mod:`repro.faults` *simulates* failures inside the BSP engine — a
:class:`~repro.faults.MachineCrash` deletes frogs from arrays.  This
module injects the same scenarios into the **real** multi-process
serving stack: a :class:`ChaosEvent` of kind ``"kill"`` sends an
actual ``SIGKILL`` to a shard worker's OS pid, ``"hang"`` parks a
worker's control loop, ``"delay"`` stalls its next batch reply.  Both
layers speak the one taxonomy of
:data:`repro.faults.FAULT_KINDS`, and schedules convert both ways
(:meth:`ChaosSchedule.from_fault_schedule` /
:meth:`ChaosSchedule.to_fault_schedule`) — which is what makes the
paper's robustness claim *cross-checkable*: the accuracy dent a
simulated machine loss predicts can be compared against what a real
SIGKILL'd worker costs a partial-mode pool at the same lost-frog
fraction.

:class:`ChaosInjector` arms a schedule against a running target
(a :class:`~repro.serving.ProcessPoolBackend`, a
:class:`~repro.serving.RankingService` over one, or a live
:class:`~repro.live.EpochManager`) on daemon timers, so the events
land while the :class:`~repro.traffic.TrafficHarness` drives load —
see ``run_threaded(chaos=...)`` and the ``repro chaos-bench`` CLI.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..faults.schedule import FaultSchedule, MachineCrash

__all__ = ["ChaosEvent", "ChaosSchedule", "ChaosInjector"]

#: The subset of :data:`repro.faults.FAULT_KINDS` an injector can
#: deliver to real processes.  ``drop`` has no real-process analogue
#: here (pipes are reliable transports); simulated schedules carrying
#: message drop convert with that component documentedly ignored.
CHAOS_KINDS = ("kill", "hang", "delay")


@dataclass(frozen=True)
class ChaosEvent:
    """One real fault, scheduled relative to the run's start.

    ``shard`` addresses the target pool's shard (its worker process);
    ``duration_s`` is meaningful for ``hang``/``delay`` only.
    """

    time_s: float
    kind: str
    shard: int
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("event time_s must be non-negative")
        if self.kind not in CHAOS_KINDS:
            raise ConfigError(
                f"unknown chaos kind {self.kind!r}: expected one of "
                f"{CHAOS_KINDS}"
            )
        if self.shard < 0:
            raise ConfigError("shard id must be non-negative")
        if self.duration_s < 0:
            raise ConfigError("duration_s must be non-negative")


@dataclass(frozen=True)
class ChaosSchedule:
    """A time-ordered set of real faults for one traffic run."""

    events: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: e.time_s)),
        )

    @property
    def is_empty(self) -> bool:
        return not self.events

    def kills(self) -> tuple[ChaosEvent, ...]:
        """The schedule's hard kills (the events that lose frogs)."""
        return tuple(e for e in self.events if e.kind == "kill")

    # ------------------------------------------------------------------
    # Taxonomy bridge to the simulated layer
    # ------------------------------------------------------------------
    @classmethod
    def from_fault_schedule(
        cls, schedule: FaultSchedule, step_time_s: float = 1.0
    ) -> "ChaosSchedule":
        """A simulated scenario replayed against real processes.

        Each :class:`~repro.faults.MachineCrash` at superstep ``s``
        becomes a ``kill`` of shard ``machine`` at ``s * step_time_s``
        — superstep indices are the simulated layer's clock, so the
        caller chooses how much wall time one superstep is worth.  A
        ``message_drop`` component has no real-process analogue (the
        worker pipes are reliable) and is ignored.
        """
        if step_time_s <= 0:
            raise ConfigError("step_time_s must be positive")
        return cls(
            events=tuple(
                ChaosEvent(
                    time_s=crash.step * step_time_s,
                    kind=crash.chaos_kind,
                    shard=crash.machine,
                )
                for crash in schedule.crashes
            )
        )

    def to_fault_schedule(
        self, step_time_s: float = 1.0, rebirth: bool = False
    ) -> FaultSchedule:
        """This schedule's simulated twin, for cross-checking accuracy.

        ``kill`` events become :class:`~repro.faults.MachineCrash`\\ es
        at superstep ``floor(time_s / step_time_s)`` (duplicates on the
        same (step, machine) collapse); ``hang``/``delay`` are
        latency-only and carry no simulated-accuracy analogue, so they
        are dropped.  ``rebirth=False`` by default: a real partial
        merge loses the dead worker's frogs outright, so the matching
        simulation must too.
        """
        if step_time_s <= 0:
            raise ConfigError("step_time_s must be positive")
        crashes: list[MachineCrash] = []
        seen: set[tuple[int, int]] = set()
        for event in self.kills():
            key = (int(event.time_s // step_time_s), event.shard)
            if key in seen:
                continue
            seen.add(key)
            crashes.append(
                MachineCrash(
                    step=key[0], machine=key[1], rebirth=rebirth
                )
            )
        return FaultSchedule(crashes=tuple(crashes))


def _resolve_pool(target):
    """The process pool behind whatever object the caller handed us."""
    seen = set()
    obj = target
    while obj is not None and id(obj) not in seen:
        seen.add(id(obj))
        if hasattr(obj, "worker_pid") and hasattr(obj, "inject_chaos"):
            return obj
        if hasattr(obj, "current"):  # EpochManager
            obj = obj.current.backend
            continue
        obj = getattr(obj, "backend", None)  # RankingService / Live
    raise ConfigError(
        "chaos needs a process-pool target (a ProcessPoolBackend, or "
        "a service/epoch manager running on one); got "
        f"{type(target).__name__}"
    )


@dataclass
class ChaosInjector:
    """Arms a :class:`ChaosSchedule` against a live process pool.

    Every event runs on its own daemon :class:`threading.Timer`:
    ``kill`` resolves the shard's *current* worker pid at fire time
    and SIGKILLs it directly (no locks — a kill must land even while a
    batch holds the backend lock, that being the whole point);
    ``hang``/``delay`` go through the pool's ``inject_chaos`` control
    op, which serializes with batches.  Fired events are recorded in
    ``fired`` as ``(elapsed_s, event)``; injection errors (e.g. a
    worker already gone) land in ``errors`` instead of propagating —
    chaos must never crash the experiment that measures it.
    """

    target: object
    schedule: ChaosSchedule
    fired: list[tuple[float, ChaosEvent]] = field(default_factory=list)
    errors: list[tuple[ChaosEvent, BaseException]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        self.pool = _resolve_pool(self.target)
        self._timers: list[threading.Timer] = []
        self._start: float | None = None
        self._lock = threading.Lock()

    def _fire(self, event: ChaosEvent) -> None:
        try:
            if event.kind == "kill":
                os.kill(self.pool.worker_pid(event.shard), signal.SIGKILL)
            else:
                self.pool.inject_chaos(
                    event.shard, event.kind, event.duration_s
                )
        except BaseException as error:
            with self._lock:
                self.errors.append((event, error))
            return
        with self._lock:
            self.fired.append(
                (time.monotonic() - (self._start or 0.0), event)
            )

    def arm(self, time_scale: float = 1.0) -> "ChaosInjector":
        """Start one timer per event (idempotent per arm/disarm cycle).

        ``time_scale`` matches the harness's schedule compression, so
        chaos stays aligned with the workload it is injected under.
        """
        if time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        self.disarm()
        self._start = time.monotonic()
        for event in self.schedule.events:
            timer = threading.Timer(
                event.time_s * time_scale, self._fire, (event,)
            )
            timer.daemon = True
            timer.start()
            self._timers.append(timer)
        return self

    def disarm(self) -> None:
        """Cancel every not-yet-fired timer."""
        for timer in self._timers:
            timer.cancel()
        self._timers = []
