"""Traffic: open-loop load generation, admission control, degraded modes.

The serving stack (:mod:`repro.serving`) answers *how* a query is
executed cheaply — cache, coalesce, batch, shard.  This package
answers what happens when **more queries arrive than the cluster can
execute**, which is where FrogWild's accuracy-for-cost knob becomes an
operational lever rather than a benchmark curiosity:

* :mod:`~repro.traffic.arrivals` / :mod:`~repro.traffic.workload` —
  open-loop arrival processes (Poisson, diurnal, flash-crowd burst)
  over a Zipf-popular user population, deterministic per seed;
* :mod:`~repro.traffic.admission` — a bounded pending queue with
  typed shedding (:class:`~repro.errors.OverloadError`) and a
  backlog-triggered :class:`DegradationLadder` that shrinks frog
  budgets / early-stops supersteps, each degraded answer carrying the
  Theorem-1 error bound it implies (:mod:`repro.theory.bounds`);
* :mod:`~repro.traffic.trace` / :mod:`~repro.traffic.report` —
  per-query traces (enqueue → dispatch → resolve, with degrade
  decisions) folded into streaming p50/p95/p99 latency, shed-rate and
  batch-occupancy summaries that land in ``BENCH_serving.json``;
* :mod:`~repro.traffic.harness` — the drivers: a deterministic
  virtual-time single-server queue (tests, CI) and a wall-clock
  threaded replay (demos);
* :mod:`~repro.traffic.chaos` — real-process fault injection under
  load: :class:`ChaosSchedule` speaks the same event taxonomy as the
  simulated :mod:`repro.faults` layer but its ``kill`` events SIGKILL
  actual shard workers (``hang``/``delay`` stall them), exercising the
  fail-soft process pool's supervision and partial-answer paths
  (``repro chaos-bench``, the CI ``chaos`` lane).

Exercised by ``benchmarks/bench_traffic.py``, the ``repro
traffic-bench`` CLI command and the CI ``traffic`` lane.
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
    DegradationLadder,
    DegradeRung,
)
from .arrivals import (
    ArrivalProcess,
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from .chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from .harness import TrafficHarness, TrafficRunResult
from .report import TrafficReport
from .trace import QueryTrace, QueryTracer, StreamingReservoir
from .workload import QueryEvent, TrafficWorkload, UserPopulation

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "BurstArrivals",
    "UserPopulation",
    "QueryEvent",
    "TrafficWorkload",
    "DegradeRung",
    "DegradationLadder",
    "AdmissionDecision",
    "AdmissionStats",
    "AdmissionController",
    "StreamingReservoir",
    "QueryTrace",
    "QueryTracer",
    "TrafficReport",
    "TrafficHarness",
    "TrafficRunResult",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosInjector",
]
