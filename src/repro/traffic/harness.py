"""Driving a :class:`~repro.serving.RankingService` with real traffic.

Two drivers over the same workload:

* :meth:`TrafficHarness.run_virtual` — the deterministic mode tests
  and CI use.  It models the service as a **single-server queue over
  virtual time**: the simulated cluster's own batch makespan (the
  ``simulated_time_s`` every backend already reports) is the service
  time, so while a batch "runs" the server is busy and arrivals pile
  up in the scheduler queue.  The harness interleaves arrival events
  and server-free dispatch events in strict time order on the
  service's :class:`~repro.serving.VirtualClock` — no threads, no
  sleeps, bit-identical on every run.  This is what makes overload
  *observable* under a virtual clock at all: without the busy gate,
  dispatch would be instantaneous and no queue could ever form.
* :meth:`TrafficHarness.run_threaded` — the wall-clock mode: the same
  event schedule replayed with real sleeps against a *started*
  service (background scheduler thread), for demos and smoke runs on
  a real clock.

Both return a :class:`TrafficRunResult` carrying every future, the
queue-depth time series and the folded :class:`TrafficReport`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..errors import ConfigError, OverloadError
from ..serving.scheduler import VirtualClock
from ..serving.service import RankingAnswer, RankingFuture, RankingService
from .report import TrafficReport
from .trace import QueryTracer
from .workload import QueryEvent, TrafficWorkload

__all__ = ["TrafficRunResult", "TrafficHarness"]


@dataclass
class TrafficRunResult:
    """Everything one traffic run produced."""

    report: TrafficReport
    events: list[QueryEvent]
    futures: list[RankingFuture]
    #: (clock reading, scheduler queue depth) samples, one after every
    #: arrival and every dispatch — the series the overload acceptance
    #: test asserts monotone growth / boundedness on.
    depth_samples: list[tuple[float, int]] = field(default_factory=list)
    #: Chaos events that actually fired during the run, as
    #: ``(elapsed_s, event)`` (threaded mode with ``chaos=`` only).
    chaos_fired: list = field(default_factory=list)

    def answers(self) -> list[RankingAnswer]:
        """All successfully served answers, in arrival order."""
        out: list[RankingAnswer] = []
        for future in self.futures:
            try:
                out.append(future.result(timeout=0))
            except (OverloadError, TimeoutError):
                continue
        return out

    def shed_count(self) -> int:
        count = 0
        for future in self.futures:
            try:
                future.result(timeout=0)
            except OverloadError:
                count += 1
            except TimeoutError:
                continue
        return count


class TrafficHarness:
    """Replays a :class:`TrafficWorkload` against a ranking service.

    The service should be constructed with a
    :class:`~repro.traffic.QueryTracer` (``tracer=``) — the harness
    attaches one itself if it is missing — and, for the admission /
    degraded-mode behavior under test, an
    :class:`~repro.traffic.AdmissionController` (``admission=``).
    """

    def __init__(
        self,
        service: RankingService,
        workload: TrafficWorkload,
        service_time_scale: float = 1.0,
    ) -> None:
        if service_time_scale <= 0:
            raise ConfigError("service_time_scale must be positive")
        self.service = service
        self.workload = workload
        #: Calibration factor from simulated batch makespan to harness
        #: service time.  The cost model's absolute seconds are
        #: arbitrary units; this factor places offered load relative
        #: to modeled capacity (rho = arrival rate x scaled service
        #: time / batch size), which is how the overload tests pin
        #: rho > 1 deterministically.  Propagated onto the service so
        #: trace resolve stamps use the same time base as the busy
        #: gate.
        self.service_time_scale = float(service_time_scale)
        service.service_time_scale = self.service_time_scale
        if service.tracer is None:
            service.tracer = QueryTracer()
        self.tracer = service.tracer

    # ------------------------------------------------------------------
    # Deterministic virtual-time mode
    # ------------------------------------------------------------------
    def run_virtual(self, duration_s: float) -> TrafficRunResult:
        """Replay the workload on the service's virtual clock.

        Requires a :class:`~repro.serving.VirtualClock` service and a
        deadline policy (``max_delay_s``), so every enqueued query is
        guaranteed to become dispatchable; fill dispatch is held back
        for the run (``hold_filled``) because a full batch must still
        wait for the single server to free up.
        """
        service = self.service
        clock = service.clock
        if not isinstance(clock, VirtualClock):
            raise ConfigError(
                "run_virtual needs a service built on a VirtualClock; "
                "use run_threaded for wall-clock services"
            )
        if service.scheduler.max_delay_s is None:
            raise ConfigError(
                "run_virtual needs a deadline policy (max_delay_s) so "
                "partial batches eventually dispatch"
            )
        scheduler = service.scheduler
        events = self.workload.events(duration_s)
        futures: list[RankingFuture] = []
        depth_samples: list[tuple[float, int]] = []
        start = clock.now
        busy_until = start
        busy_s = 0.0
        held = scheduler.hold_filled
        scheduler.hold_filled = True
        try:
            i = 0
            while True:
                ready = scheduler.next_ready()
                next_dispatch = (
                    math.inf if ready is None else max(ready, busy_until)
                )
                next_arrival = (
                    events[i].time_s + start if i < len(events) else math.inf
                )
                if next_arrival is math.inf and next_dispatch is math.inf:
                    break
                if next_arrival <= next_dispatch:
                    clock.advance(next_arrival - clock.now)
                    futures.append(service.submit_query(events[i].query))
                    i += 1
                    depth_samples.append(
                        (clock.now, scheduler.pending_count())
                    )
                else:
                    clock.advance(next_dispatch - clock.now)
                    before = service.stats.simulated_time_s
                    if scheduler.dispatch_next() == 0:
                        continue
                    service_time = (
                        service.stats.simulated_time_s - before
                    ) * self.service_time_scale
                    busy_until = clock.now + service_time
                    busy_s += service_time
                    depth_samples.append(
                        (clock.now, scheduler.pending_count())
                    )
            # Let the last batch's virtual service time elapse so end
            # timestamps (and utilization) cover it.
            if busy_until > clock.now:
                clock.advance(busy_until - clock.now)
        finally:
            scheduler.hold_filled = held
        elapsed = max(clock.now - start, duration_s)
        report = self._collect(
            duration_s=duration_s,
            arrivals=len(events),
            depth_samples=depth_samples,
            busy_s=busy_s,
            elapsed_s=elapsed,
        )
        return TrafficRunResult(
            report=report,
            events=events,
            futures=futures,
            depth_samples=depth_samples,
        )

    # ------------------------------------------------------------------
    # Wall-clock mode
    # ------------------------------------------------------------------
    def run_threaded(
        self,
        duration_s: float,
        time_scale: float = 1.0,
        result_timeout_s: float = 30.0,
        chaos=None,
    ) -> TrafficRunResult:
        """Replay the schedule in real time against a started service.

        ``time_scale`` compresses the schedule (0.1 replays a 10 s
        workload in 1 s of wall time).  The service's background
        scheduler must be running (:meth:`RankingService.start`).

        ``chaos`` optionally injects real faults while the load runs:
        a :class:`~repro.traffic.ChaosSchedule` (armed against the
        service's process pool on the same ``time_scale``) or a
        pre-built :class:`~repro.traffic.ChaosInjector`.  The events
        that actually fired come back on the result's
        ``chaos_fired`` list.
        """
        if time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        service = self.service
        if isinstance(service.clock, VirtualClock):
            raise ConfigError(
                "run_threaded needs a real-time service; "
                "use run_virtual for VirtualClock services"
            )
        if not service.scheduler.running:
            raise ConfigError(
                "run_threaded needs a started service "
                "(call service.start() first)"
            )
        injector = None
        if chaos is not None:
            from .chaos import ChaosInjector, ChaosSchedule

            if isinstance(chaos, ChaosSchedule):
                injector = ChaosInjector(service, chaos)
            elif isinstance(chaos, ChaosInjector):
                injector = chaos
            else:
                raise ConfigError(
                    "chaos must be a ChaosSchedule or ChaosInjector, "
                    f"got {type(chaos).__name__}"
                )
        events = self.workload.events(duration_s)
        futures: list[RankingFuture] = []
        depth_samples: list[tuple[float, int]] = []
        sim_before = service.stats.simulated_time_s
        start = time.monotonic()
        if injector is not None:
            injector.arm(time_scale)
        try:
            for event in events:
                target = start + event.time_s * time_scale
                delay = target - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                futures.append(service.submit_query(event.query))
                depth_samples.append(
                    (
                        time.monotonic() - start,
                        service.scheduler.pending_count(),
                    )
                )
            service.flush()
            deadline = time.monotonic() + result_timeout_s
            for future in futures:
                remaining = deadline - time.monotonic()
                try:
                    future.result(timeout=max(0.0, remaining))
                except Exception:
                    # Shed / failed futures already carry their error;
                    # the report counts them through the tracer.
                    continue
        finally:
            if injector is not None:
                injector.disarm()
        elapsed = time.monotonic() - start
        busy_s = (
            service.stats.simulated_time_s - sim_before
        ) * self.service_time_scale
        report = self._collect(
            duration_s=duration_s,
            arrivals=len(events),
            depth_samples=depth_samples,
            busy_s=busy_s,
            elapsed_s=max(elapsed, 1e-9),
        )
        return TrafficRunResult(
            report=report,
            events=events,
            futures=futures,
            depth_samples=depth_samples,
            chaos_fired=(
                [] if injector is None else list(injector.fired)
            ),
        )

    # ------------------------------------------------------------------
    # Report folding
    # ------------------------------------------------------------------
    def _collect(
        self,
        duration_s: float,
        arrivals: int,
        depth_samples: list[tuple[float, int]],
        busy_s: float,
        elapsed_s: float,
    ) -> TrafficReport:
        depths = [depth for _, depth in depth_samples]
        admission = self.service.admission
        return TrafficReport(
            duration_s=duration_s,
            arrivals=arrivals,
            queue_depth_max=max(depths) if depths else 0,
            queue_depth_mean=(
                sum(depths) / len(depths) if depths else 0.0
            ),
            utilization=busy_s / elapsed_s if elapsed_s else 0.0,
            busy_s=busy_s,
            traffic=self.tracer.summary(),
            admission=(
                {} if admission is None else admission.stats.as_dict()
            ),
            service=self.service.stats.as_dict(),
            scheduler=self.service.scheduler.stats.as_dict(),
            cache=self.service.cache_stats(),
        )
