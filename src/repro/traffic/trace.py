"""Per-query tracing and O(1)-memory streaming latency statistics.

Every query the service touches while a :class:`QueryTracer` is
attached gets one :class:`QueryTrace` following it through its life:
enqueue → (admission ruling) → dispatch → resolve, with the batch it
rode, the supersteps and frogs it actually ran, and — when the
degradation ladder engaged — the rung and the Theorem-1 error bound
its answer carries.

The tracer itself is built for sustained load: counters are plain
integers, completed traces land in a bounded ring (most recent wins),
and latency quantiles come from a fixed-size uniform reservoir
(Vitter's Algorithm R with a seeded generator, so summaries are
deterministic under the virtual clock).  Nothing here grows with the
number of queries served.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError

__all__ = ["StreamingReservoir", "QueryTrace", "QueryTracer"]


class StreamingReservoir:
    """Fixed-size uniform sample of a stream, plus exact moments.

    ``count``/``total``/``min``/``max`` are exact over the whole
    stream; quantiles are computed from the reservoir (exact until the
    stream outgrows ``capacity``, a uniform sample after).  Algorithm R
    with a seeded generator keeps replacement decisions deterministic.
    """

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be positive")
        self.capacity = int(capacity)
        self._rng = np.random.default_rng([53, seed])
        self._sample: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        # Algorithm R: the new value displaces a uniform victim with
        # probability capacity / count.
        slot = int(self._rng.integers(0, self.count))
        if slot < self.capacity:
            self._sample[slot] = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile of the sampled stream (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError("q must lie in [0, 1]")
        if not self._sample:
            return 0.0
        return float(np.quantile(np.asarray(self._sample), q))

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        return {
            f"{prefix}count": float(self.count),
            f"{prefix}mean": self.mean(),
            f"{prefix}p50": self.quantile(0.50),
            f"{prefix}p95": self.quantile(0.95),
            f"{prefix}p99": self.quantile(0.99),
            f"{prefix}max": self.max if self.max is not None else 0.0,
        }


@dataclass
class QueryTrace:
    """The life of one query through the service, timestamped.

    Timestamps are clock readings from the service's (possibly
    virtual) clock; under the deterministic harness the resolve stamp
    of an executed query is its dispatch stamp plus the simulated
    batch time, so latencies are simulated-cluster latencies, not
    host-process ones.
    """

    query_id: int
    seeds: tuple[int, ...]
    k: int
    enqueue_s: float
    status: str = "pending"  # -> "served" | "shed" | "failed"
    dispatch_s: float | None = None
    resolve_s: float | None = None
    cached: bool = False
    coalesced: bool = False
    batch_size: int = 0
    supersteps: int = 0
    frogs: int = 0
    degrade_level: int = 0
    error_bound: float | None = None
    shed_depth: int | None = None

    @property
    def queue_delay_s(self) -> float | None:
        if self.dispatch_s is None:
            return None
        return self.dispatch_s - self.enqueue_s

    @property
    def latency_s(self) -> float | None:
        if self.resolve_s is None:
            return None
        return self.resolve_s - self.enqueue_s

    @property
    def degraded(self) -> bool:
        return self.degrade_level > 0

    def as_dict(self) -> dict[str, object]:
        return {
            "query_id": self.query_id,
            "seeds": list(self.seeds),
            "k": self.k,
            "status": self.status,
            "enqueue_s": self.enqueue_s,
            "dispatch_s": self.dispatch_s,
            "resolve_s": self.resolve_s,
            "latency_s": self.latency_s,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "batch_size": self.batch_size,
            "supersteps": self.supersteps,
            "frogs": self.frogs,
            "degrade_level": self.degrade_level,
            "error_bound": self.error_bound,
            "shed_depth": self.shed_depth,
        }


@dataclass
class _TracerCounters:
    offered: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    degraded: int = 0
    degraded_with_bound: int = 0


class QueryTracer:
    """Collects per-query traces with bounded memory.

    ``recent(n)`` returns the last completed traces (up to the ring
    capacity) for debugging and tests; :meth:`summary` folds the whole
    stream into the flat metric row the benchmarks and the CI lane
    assert against.
    """

    def __init__(
        self,
        recent_capacity: int = 1024,
        reservoir_capacity: int = 2048,
        seed: int = 0,
    ) -> None:
        if recent_capacity < 1:
            raise ConfigError("recent_capacity must be positive")
        self._lock = threading.Lock()
        self._next_id = 0
        self._recent: deque[QueryTrace] = deque(maxlen=recent_capacity)
        self.latency = StreamingReservoir(reservoir_capacity, seed)
        self.queue_delay = StreamingReservoir(reservoir_capacity, seed + 1)
        self.batch_occupancy = StreamingReservoir(
            reservoir_capacity, seed + 2
        )
        self.counters = _TracerCounters()
        self.max_error_bound = 0.0

    def begin(
        self, seeds: tuple[int, ...], k: int, now: float
    ) -> QueryTrace:
        """Open a trace for one arriving query."""
        with self._lock:
            self.counters.offered += 1
            trace = QueryTrace(
                query_id=self._next_id,
                seeds=tuple(seeds),
                k=k,
                enqueue_s=now,
            )
            self._next_id += 1
        return trace

    def complete(self, trace: QueryTrace) -> None:
        """Close a trace; folds it into counters and reservoirs."""
        with self._lock:
            counters = self.counters
            if trace.status == "served":
                counters.served += 1
                if trace.cached:
                    counters.cache_hits += 1
                if trace.coalesced:
                    counters.coalesced += 1
                if trace.degraded:
                    counters.degraded += 1
                    if trace.error_bound is not None:
                        counters.degraded_with_bound += 1
                        self.max_error_bound = max(
                            self.max_error_bound, trace.error_bound
                        )
                if trace.latency_s is not None:
                    self.latency.add(trace.latency_s)
                if trace.queue_delay_s is not None:
                    self.queue_delay.add(trace.queue_delay_s)
                if trace.batch_size:
                    self.batch_occupancy.add(float(trace.batch_size))
            elif trace.status == "shed":
                counters.shed += 1
            elif trace.status == "failed":
                counters.failed += 1
            else:
                raise ConfigError(
                    f"cannot complete a trace in status {trace.status!r}"
                )
            self._recent.append(trace)

    def recent(self, n: int | None = None) -> list[QueryTrace]:
        """The most recently completed traces, oldest first."""
        with self._lock:
            traces = list(self._recent)
        return traces if n is None else traces[-n:]

    def summary(self) -> dict[str, float]:
        """The flat metric row: rates, latency quantiles, occupancy."""
        with self._lock:
            c = self.counters
            offered = c.offered
            row: dict[str, float] = {
                "offered": float(offered),
                "served": float(c.served),
                "shed": float(c.shed),
                "failed": float(c.failed),
                "cache_hits": float(c.cache_hits),
                "coalesced": float(c.coalesced),
                "degraded": float(c.degraded),
                "degraded_with_bound": float(c.degraded_with_bound),
                "shed_rate": c.shed / offered if offered else 0.0,
                "degraded_rate": c.degraded / offered if offered else 0.0,
                "cache_hit_rate": (
                    c.cache_hits / c.served if c.served else 0.0
                ),
                "max_error_bound": self.max_error_bound,
            }
            row.update(self.latency.as_dict("latency_"))
            row.update(self.queue_delay.as_dict("queue_delay_"))
            row.update(self.batch_occupancy.as_dict("batch_occupancy_"))
        return row
