"""FrogWild! — fast top-k PageRank approximation on graph engines.

Reproduction of Mitliagkas, Borokhovich, Dimakis & Caramanis,
*FrogWild! – Fast PageRank Approximations on Graph Engines*, VLDB 2015.

Quickstart::

    from repro import FrogWildConfig, run_frogwild, twitter_like
    from repro import exact_pagerank, normalized_mass_captured

    graph = twitter_like(n=5000)
    result = run_frogwild(graph, FrogWildConfig(num_frogs=20_000, ps=0.7))
    truth = exact_pagerank(graph)
    print(result.estimate.top_k(10))
    print(normalized_mass_captured(result.estimate.vector(), truth, k=100))

Subpackages: :mod:`repro.graph` (CSR graphs and generators),
:mod:`repro.cluster` (the simulated PowerGraph cluster),
:mod:`repro.engine` (the GAS/BSP engine and the ``ps`` sync patch),
:mod:`repro.core` (FrogWild itself), :mod:`repro.pagerank` (baselines),
:mod:`repro.metrics`, :mod:`repro.theory`,
:mod:`repro.experiments` (per-figure reproduction harness),
:mod:`repro.apps` (keyword extraction, influencer and churn analyses),
:mod:`repro.serving` (the batched/sharded top-k ranking service),
:mod:`repro.dynamic` (churn generation and tracking) and
:mod:`repro.live` (incremental ingress maintenance and epoch-swapped
serving of a churning graph).
"""

from .cluster import CostModel, MessageSizeModel
from .core import (
    AdaptiveConfig,
    AdaptiveResult,
    run_adaptive_frogwild,
    BatchQuery,
    BatchedFrogWildResult,
    BatchedFrogWildRunner,
    FrogWildConfig,
    FrogWildResult,
    FrogWildRunner,
    PageRankEstimate,
    run_frogwild,
    run_frogwild_batch,
    run_personalized_frogwild,
    run_personalized_frogwild_batch,
    seed_distribution,
    top_k_indices,
)
from .engine import BSPEngine, build_cluster
from .errors import (
    ConfigError,
    EngineError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    PartitionError,
    ReproError,
)
from .graph import (
    DiGraph,
    GraphBuilder,
    from_edges,
    livejournal_like,
    read_edge_list,
    twitter_like,
)
from .metrics import (
    exact_identification,
    mass_captured,
    normalized_mass_captured,
    optimal_mass,
)
from .pagerank import (
    exact_pagerank,
    forward_push_pagerank,
    graphlab_pagerank,
    monte_carlo_pagerank,
    sparsified_pagerank,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "twitter_like",
    "livejournal_like",
    "read_edge_list",
    "AdaptiveConfig",
    "AdaptiveResult",
    "run_adaptive_frogwild",
    "BatchQuery",
    "BatchedFrogWildResult",
    "BatchedFrogWildRunner",
    "FrogWildConfig",
    "FrogWildResult",
    "FrogWildRunner",
    "run_frogwild",
    "run_frogwild_batch",
    "run_personalized_frogwild",
    "run_personalized_frogwild_batch",
    "seed_distribution",
    "PageRankEstimate",
    "top_k_indices",
    "BSPEngine",
    "build_cluster",
    "CostModel",
    "MessageSizeModel",
    "exact_pagerank",
    "graphlab_pagerank",
    "sparsified_pagerank",
    "monte_carlo_pagerank",
    "forward_push_pagerank",
    "mass_captured",
    "optimal_mass",
    "normalized_mass_captured",
    "exact_identification",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "PartitionError",
    "EngineError",
    "ConfigError",
    "ExperimentError",
]
