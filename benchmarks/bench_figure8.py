"""Figure 8: network usage vs number of initial walkers (LiveJournal).

Paper: traffic grows linearly in the number of walkers at ps=1 —
the basis for the claim that o(n) walkers buy an o(n) network bill.
"""

import numpy as np

from conftest import run_once, write_figure_text
from repro.experiments import figure8

_CACHE = {}


def _result(workload):
    if "fig8" not in _CACHE:
        _CACHE["fig8"] = figure8(workload, seed=0)
    return _CACHE["fig8"]


def test_fig8_network_vs_walkers(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    write_figure_text(result)
    rows = sorted(result.rows, key=lambda r: r.params["num_frogs"])
    frogs = np.array([r.params["num_frogs"] for r in rows], dtype=float)
    nbytes = np.array([r.network_bytes for r in rows], dtype=float)

    # Strictly increasing.
    assert np.all(np.diff(nbytes) > 0)

    # Near-linear: a straight-line fit explains almost all variance.
    slope, intercept = np.polyfit(frogs, nbytes, 1)
    predicted = slope * frogs + intercept
    ss_res = float(((nbytes - predicted) ** 2).sum())
    ss_tot = float(((nbytes - nbytes.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot
    assert r_squared > 0.97, f"R^2 = {r_squared:.4f}"
    assert slope > 0
