"""Engine-mode ablation: BSP vs asynchronous vs FrogWild partial sync.

The paper's Section 1 weighs three ways to run graph computations:
stock synchronous BSP, GraphLab's asynchronous engine ("highly
nontrivial ... locking protocols"), and FrogWild's randomized partial
synchronization of the synchronous engine.  This bench runs all three
on one ingress and checks the orderings the paper's argument predicts:

* both PageRank engines land comparable accuracy (same fixpoint);
* the async engine's locking protocol is a real network cost;
* FrogWild undercuts both engines on network by a wide margin while
  keeping competitive top-k accuracy.
"""

import pytest

from conftest import run_once
from repro.cluster import make_partitioner
from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import async_pagerank, exact_pagerank, graphlab_pagerank

_CACHE = {}
_MACHINES = 8


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=8_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


@pytest.fixture(scope="module")
def partition(graph):
    if "partition" not in _CACHE:
        _CACHE["partition"] = make_partitioner("random", 0).partition(
            graph, _MACHINES
        )
    return _CACHE["partition"]


def _state(graph, partition):
    return build_cluster(graph, _MACHINES, seed=0, partition=partition)


def test_engines_reach_same_fixpoint(benchmark, graph, truth, partition):
    """Sync and async PageRank agree with the exact solver."""

    def run_both():
        sync = graphlab_pagerank(
            graph, tolerance=1e-5, state=_state(graph, partition),
            max_supersteps=300,
        )
        asynchronous = async_pagerank(
            graph, tolerance=1e-5, state=_state(graph, partition)
        )
        return sync, asynchronous

    sync, asynchronous = run_once(benchmark, run_both)
    for result in (sync, asynchronous):
        mass = normalized_mass_captured(result.distribution(), truth, 100)
        assert mass > 0.97


def test_locking_overhead_is_visible(benchmark, graph, partition):
    """The distributed-locking protocol costs real traffic: the async
    engine with locks sends strictly more bytes than lock-free."""

    def run_both():
        locked = async_pagerank(
            graph, tolerance=1e-3, lock_ops=1,
            state=_state(graph, partition),
        )
        free = async_pagerank(
            graph, tolerance=1e-3, lock_ops=0,
            state=_state(graph, partition),
        )
        return locked, free

    locked, free = run_once(benchmark, run_both)
    assert locked.report.network_bytes > free.report.network_bytes
    locked_lock_bytes = locked.state.fabric.snapshot().bytes_for("lock")
    assert locked_lock_bytes > 0
    assert free.state.fabric.snapshot().bytes_for("lock") == 0


def test_frogwild_undercuts_both_engines(benchmark, graph, truth, partition):
    """FrogWild's network bill is a small fraction of either engine's,
    at usable top-100 accuracy — the paper's core claim extended to the
    asynchronous alternative."""

    def run_all():
        sync = graphlab_pagerank(
            graph, tolerance=1e-3, state=_state(graph, partition),
            max_supersteps=300,
        )
        asynchronous = async_pagerank(
            graph, tolerance=1e-3, state=_state(graph, partition)
        )
        frog = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=12_000, iterations=4, ps=0.7, seed=0),
            state=_state(graph, partition),
        )
        return sync, asynchronous, frog

    sync, asynchronous, frog = run_once(benchmark, run_all)
    frog_bytes = frog.report.network_bytes
    assert frog_bytes * 5 < sync.report.network_bytes
    assert frog_bytes * 5 < asynchronous.report.network_bytes
    mass = normalized_mass_captured(frog.estimate.vector(), truth, 100)
    assert mass > 0.85


def test_async_time_not_barrier_bound(benchmark, graph, partition):
    """Async pays one epoch barrier; BSP exact pays one per superstep.
    With many supersteps that difference is visible in the barrier
    component of total time."""

    def run_both():
        sync = graphlab_pagerank(
            graph, tolerance=1e-5, state=_state(graph, partition),
            max_supersteps=300,
        )
        asynchronous = async_pagerank(
            graph, tolerance=1e-5, state=_state(graph, partition)
        )
        return sync, asynchronous

    sync, asynchronous = run_once(benchmark, run_both)
    assert sync.report.supersteps > 10
    assert asynchronous.report.supersteps == 1
