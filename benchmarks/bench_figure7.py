"""Figure 7 (a/b): accuracy vs time / network on LiveJournal (20 nodes).

The Figure 3 trade-off analysis on the second dataset.  Paper: the
algorithm is faster and uses much less network while maintaining good
accuracy; conclusions transfer across the order-of-magnitude size gap
between the two graphs.
"""

from conftest import by_algorithm, run_once, write_figure_text
from repro.experiments import figure7, pareto_front

_CACHE = {}


def _result(workload):
    if "fig7" not in _CACHE:
        _CACHE["fig7"] = figure7(workload, seed=0)
    return _CACHE["fig7"]


def test_fig7a_accuracy_vs_time(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    write_figure_text(result)
    exact = by_algorithm(result, "GraphLab PR exact")
    one = by_algorithm(result, "GraphLab PR 1 iters")
    frows = [r for r in result.rows if r.algorithm.startswith("FrogWild")]

    dominators = [
        r
        for r in frows
        if r.mass_captured[100] >= one.mass_captured[100]
        and r.total_time_s < one.total_time_s * 1.2
    ]
    assert dominators, "no FrogWild point competitive with GL PR 1 iter"
    for row in frows:
        assert row.total_time_s * 4 < exact.total_time_s


def test_fig7b_accuracy_vs_network(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    exact = by_algorithm(result, "GraphLab PR exact")
    frows = [r for r in result.rows if r.algorithm.startswith("FrogWild")]
    for row in frows:
        assert row.network_bytes * 5 < exact.network_bytes
    front = pareto_front(result.rows, cost_attr="network_bytes", k=100)
    assert any(r.algorithm.startswith("FrogWild") for r in front)
