"""Generator robustness: do the headline shapes survive a different
graph family?

Our Twitter/LiveJournal stand-ins come from one generative process
(directed preferential attachment).  If the reproduced figure shapes
depended on that process's quirks — e.g. its in-degree/PageRank
correlation — the reproduction would be fragile.  This bench replays
the core Figure 1/2 claims on a Graph500-style R-MAT graph, whose
recursive-quadrant construction has very different structure, and
checks the same orderings hold:

* FrogWild beats GraphLab PR exact on time and network (Fig. 1 shape);
* network falls monotonically with ps (the patch works);
* FrogWild stays within a few points of GL PR 1 iteration on mass
  captured at a fraction of its cost.

One *finding* rather than assertion: on R-MAT the GL-1-iteration
baseline is nearly perfect (0.997 mass) because R-MAT's shallow
recursive structure makes in-degree ≈ PageRank — so Figure 2's
"FrogWild beats GL1 on accuracy" ordering is dataset-dependent; the
paper's real graphs (and our preferential-attachment stand-ins with
heavy out-degrees) have the deeper rank propagation that makes one
iteration insufficient.  The *cost* orderings are generator-invariant.
"""

import pytest

from conftest import run_once
from repro.experiments import ExperimentHarness, rmat_workload

_CACHE = {}


@pytest.fixture(scope="module")
def harness():
    if "harness" not in _CACHE:
        _CACHE["harness"] = ExperimentHarness(
            rmat_workload(scale=14, edge_factor=12), seed=0
        )
    return _CACHE["harness"]


@pytest.fixture(scope="module")
def rows(harness):
    if "rows" not in _CACHE:
        rows = {
            "exact": harness.run_graphlab(tolerance=1e-6, ks=(100,)),
            "gl1": harness.run_graphlab(iterations=1, ks=(100,)),
            "gl2": harness.run_graphlab(iterations=2, ks=(100,)),
        }
        # Keep frogs sublinear in the 16k-vertex R-MAT graph (the
        # paper's regime): 0.5 frogs/vertex, not the Twitter default.
        for ps in (1.0, 0.7, 0.4, 0.1):
            rows[f"fw{ps:g}"] = harness.run_frogwild(
                ks=(100,), ps=ps, num_frogs=8_000
            )
        _CACHE["rows"] = rows
    return _CACHE["rows"]


def test_figure1_shape_holds_on_rmat(benchmark, rows):
    """FrogWild ≪ GL PR exact on total time and network bytes."""

    def collect():
        return rows

    rows = run_once(benchmark, collect)
    exact = rows["exact"]
    for ps in (1.0, 0.1):
        frog = rows[f"fw{ps:g}"]
        assert frog.total_time_s * 3 < exact.total_time_s
        assert frog.network_bytes * 5 < exact.network_bytes


def test_network_monotone_in_ps_on_rmat(benchmark, rows):
    def collect():
        return rows

    rows = run_once(benchmark, collect)
    bytes_by_ps = [
        rows[f"fw{ps:g}"].network_bytes for ps in (1.0, 0.7, 0.4, 0.1)
    ]
    assert all(b > a for a, b in zip(bytes_by_ps[1:], bytes_by_ps))


def test_accuracy_competitive_on_rmat(benchmark, rows):
    """FrogWild lands within a few points of GL PR 1 iteration at a
    fraction of the cost.  (On R-MAT, GL1 is nearly perfect — see the
    module docstring for why the accuracy *ordering* is dataset-
    dependent while the cost orderings are not.)"""

    def collect():
        return rows

    rows = run_once(benchmark, collect)
    gl1 = rows["gl1"]
    for ps in (1.0, 0.7, 0.4, 0.1):
        frog = rows[f"fw{ps:g}"]
        # Usable accuracy at sublinear frogs; on R-MAT GL1 is nearly
        # exact (in-degree ~ PageRank), so no relative-ordering claim.
        assert frog.mass_captured[100] > 0.85
        # Cost domination is generator-invariant.
        assert frog.network_bytes < gl1.network_bytes
