"""Generality of the ps patch: gossip on the patched engine.

Section 3.3 of the paper: "any random walk or 'gossip' style algorithm
(that sends a single message to a random subset of its neighbors) can
benefit by exploiting ps".  This bench runs push-gossip to 90% coverage
on the largest SCC of the Twitter workload and checks the trade-off:
lower ps cuts per-round synchronization traffic, the rumor still
completes, and the total-byte bill at moderate ps undercuts stock
full synchronization.
"""

import pytest

from conftest import run_once
from repro.core import run_gossip
from repro.graph import largest_scc, twitter_like

_CACHE = {}


@pytest.fixture(scope="module")
def scc():
    if "scc" not in _CACHE:
        _CACHE["scc"] = largest_scc(twitter_like(n=20_000, seed=5))
    return _CACHE["scc"]


def test_gossip_ps_tradeoff(benchmark, scc):
    def run_all():
        return {
            ps: run_gossip(
                scc,
                ps=ps,
                target_fraction=0.9,
                max_rounds=600,
                num_machines=16,
                seed=0,
            )
            for ps in (1.0, 0.5, 0.2)
        }

    results = run_once(benchmark, run_all)
    for ps, result in results.items():
        assert result.informed_fraction >= 0.9, f"ps={ps} failed to spread"

    per_round = {
        ps: r.report.network_bytes / r.rounds for ps, r in results.items()
    }
    assert per_round[0.2] < per_round[0.5] < per_round[1.0]

    # Moderate ps also wins on the *total* bill despite extra rounds.
    assert (
        results[0.5].report.network_bytes
        < results[1.0].report.network_bytes
    )


def test_gossip_rounds_grow_as_ps_shrinks(benchmark, scc):
    def run_two():
        return (
            run_gossip(scc, ps=1.0, target_fraction=0.9, max_rounds=600,
                       num_machines=16, seed=1),
            run_gossip(scc, ps=0.1, target_fraction=0.9, max_rounds=600,
                       num_machines=16, seed=1),
        )

    full, low = run_once(benchmark, run_two)
    assert low.rounds > full.rounds
