"""Mechanism bench: *where* the bytes go, per record kind.

Figure 1c shows FrogWild's total network bill collapsing; this bench
decomposes the bill to verify the collapse happens through the exact
mechanism the paper describes — the ``ps`` patch removing mirror-sync
records — rather than through some accounting accident:

* GraphLab PR's bill is dominated by gather partials + mirror syncs;
* FrogWild eliminates gather entirely (frogs carry the state);
* sweeping ps scales the *sync* component roughly proportionally while
  the scatter component shrinks much more slowly.
"""

import pytest

from conftest import run_once
from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster, traffic_breakdown
from repro.graph import twitter_like
from repro.pagerank import graphlab_pagerank

_CACHE = {}
_MACHINES = 16


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


def _frogwild_breakdown(graph, ps):
    result = run_frogwild(
        graph,
        FrogWildConfig(num_frogs=12_000, iterations=4, ps=ps, seed=0),
        num_machines=_MACHINES,
    )
    return traffic_breakdown(result.state)


def test_baseline_bill_is_gather_plus_sync(benchmark, graph):
    """GraphLab PR moves rank mass through gather partials and mirror
    updates — together roughly three quarters of the bill, with scatter
    activation signals the remainder."""

    def run():
        state = build_cluster(graph, _MACHINES, seed=0)
        graphlab_pagerank(graph, tolerance=1e-6, state=state)
        return traffic_breakdown(state)

    breakdown = run_once(benchmark, run)
    heavy = breakdown.byte_share("gather") + breakdown.byte_share("sync")
    assert heavy > 0.6, breakdown.to_text()
    assert breakdown.byte_share("gather") > breakdown.byte_share("scatter")


def test_frogwild_eliminates_gather(benchmark, graph):
    """Frogs carry the state with them: zero gather records."""

    def run():
        return _frogwild_breakdown(graph, ps=1.0)

    breakdown = run_once(benchmark, run)
    assert breakdown.bytes_by_kind.get("gather", 0) == 0
    assert breakdown.bytes_by_kind["scatter"] > 0


def test_ps_scales_the_sync_component(benchmark, graph):
    """Sync bytes fall close to proportionally with ps (the patch flips
    one coin per mirror); scatter bytes fall much more slowly (frogs
    still hop, just through fewer fresh mirrors)."""

    def sweep():
        return {ps: _frogwild_breakdown(graph, ps) for ps in (1.0, 0.5, 0.1)}

    breakdowns = run_once(benchmark, sweep)
    sync = {ps: b.bytes_by_kind["sync"] for ps, b in breakdowns.items()}
    scatter = {
        ps: b.bytes_by_kind["scatter"] for ps, b in breakdowns.items()
    }
    # Sync at ps=0.5 lands near half of ps=1 (repair adds a little back).
    ratio_sync = sync[0.5] / sync[1.0]
    assert 0.35 < ratio_sync < 0.7, ratio_sync
    # Sync shrinks strictly faster than scatter as ps drops to 0.1.
    assert sync[0.1] / sync[1.0] < scatter[0.1] / scatter[1.0]


def test_sync_share_shrinks_with_ps(benchmark, graph):
    """The share of the total bill attributable to synchronization is
    monotone in ps — the patch attacks exactly that component."""

    def sweep():
        return {
            ps: _frogwild_breakdown(graph, ps).byte_share("sync")
            for ps in (1.0, 0.5, 0.1)
        }

    shares = run_once(benchmark, sweep)
    assert shares[1.0] > shares[0.5] > shares[0.1]
