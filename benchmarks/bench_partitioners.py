"""Ingress-strategy ablation across all four vertex-cut partitioners.

PowerGraph's ingress choice determines the replication factor λ, and λ
multiplies every synchronization barrier's traffic — the exact quantity
FrogWild's ``ps`` patch attacks.  This bench quantifies, on the
calibrated Twitter-like workload:

* λ per partitioner (random ≫ grid > oblivious ≈ hdrf expected order),
* the grid's hard replication cap (rows + cols - 1),
* downstream FrogWild network bytes per ingress,
* edge-load balance (random best, constrained strategies close).
"""

import numpy as np
import pytest

from conftest import run_once
from repro.cluster import ReplicationTable, grid_shape, make_partitioner
from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster
from repro.graph import twitter_like

_CACHE = {}
_STRATEGIES = ("random", "oblivious", "grid", "hdrf")
_MACHINES = 16


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def partitions(graph):
    if "partitions" not in _CACHE:
        _CACHE["partitions"] = {
            name: make_partitioner(name, seed=0).partition(graph, _MACHINES)
            for name in _STRATEGIES
        }
    return _CACHE["partitions"]


def test_replication_factor_ordering(benchmark, graph, partitions):
    """Constrained/greedy ingress beats random on replication factor."""

    def build_tables():
        return {
            name: ReplicationTable(graph, part)
            for name, part in partitions.items()
        }

    tables = run_once(benchmark, build_tables)
    _CACHE["tables"] = tables
    rf = {name: table.replication_factor() for name, table in tables.items()}
    assert rf["oblivious"] < rf["random"]
    assert rf["grid"] < rf["random"]
    assert rf["hdrf"] < rf["random"]
    # All strategies replicate at least once (λ >= 1 by definition).
    assert all(value >= 1.0 for value in rf.values())


def test_grid_cap_binds(benchmark, graph, partitions):
    """Grid ingress caps per-vertex replicas at rows + cols - 1; the
    unconstrained strategies exceed that cap on hub vertices."""

    def build():
        return (
            ReplicationTable(graph, partitions["grid"]),
            ReplicationTable(graph, partitions["random"]),
        )

    grid_table, random_table = run_once(benchmark, build)
    rows, cols = grid_shape(_MACHINES)
    cap = rows + cols - 1
    assert grid_table.replica_counts.max() <= cap
    assert random_table.replica_counts.max() > cap


def test_downstream_frogwild_traffic(benchmark, graph, partitions):
    """Lower λ means fewer mirrors to sync: FrogWild network bytes
    follow the replication-factor ordering."""

    def run_all():
        results = {}
        for name, part in partitions.items():
            state = build_cluster(
                graph, _MACHINES, seed=0, partition=part
            )
            results[name] = run_frogwild(
                graph,
                FrogWildConfig(num_frogs=12_000, iterations=4, seed=0),
                state=state,
            )
        return results

    results = run_once(benchmark, run_all)
    net = {name: r.report.network_bytes for name, r in results.items()}
    assert net["oblivious"] < net["random"]
    assert net["grid"] < net["random"]
    assert net["hdrf"] < net["random"]
    # Every ingress conserves the frogs regardless of placement.
    assert all(
        r.estimate.total_stopped == 12_000 for r in results.values()
    )


def test_load_balance_tradeoff(benchmark, graph, partitions):
    """Random ingress is the balance gold standard; constrained
    strategies stay within a modest imbalance factor of it."""

    def imbalances():
        return {
            name: part.load_imbalance() for name, part in partitions.items()
        }

    imbalance = run_once(benchmark, imbalances)
    assert imbalance["random"] < 1.1
    assert all(value < 2.0 for value in imbalance.values())


def test_hdrf_concentrates_replication_on_hubs(benchmark, graph, partitions):
    """HDRF's design goal: hubs carry the replication, tails stay compact
    — strictly more skew than random placement produces."""

    def skew(table):
        degree = np.asarray(graph.out_degree()) + np.asarray(graph.in_degree())
        hubs = np.argsort(degree)[-100:]
        tail = np.argsort(degree)[: graph.num_vertices // 2]
        counts = table.replica_counts
        return counts[hubs].mean() / max(counts[tail].mean(), 1.0)

    def build():
        return (
            skew(ReplicationTable(graph, partitions["hdrf"])),
            skew(ReplicationTable(graph, partitions["random"])),
        )

    hdrf_skew, random_skew = run_once(benchmark, build)
    assert hdrf_skew > random_skew
