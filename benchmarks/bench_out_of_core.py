"""Out-of-core serving benchmark: bounded RSS, bounded slowdown.

The claim under test is the tentpole behind
:class:`~repro.store.SegmentStore` + the serving ``store=`` seam: a
ranking service can serve a graph whose serving tables are ~4x larger
than a configured working-set cap while staying **bitwise identical**
to the in-RAM construction, with

* **bounded residency** — a fresh process that opens the store (base
  segments and spilled serving tables are mmap'd, never materialized)
  and serves a windowed query stream grows its peak RSS over the
  interpreter baseline by at most the cap, because the ring-lattice
  workload's k-hop neighborhoods only touch a bounded slice of each
  mapped file;
* **bounded slowdown** — once the working set is resident (a warm-up
  pass pays the one-time minor faults), the mapped path answers the
  same batch within ``SLOWDOWN_BOUND`` of the RAM path: page-cache
  hits, not disk stalls, dominate steady-state serving.

The workload is a ring lattice (vertex ``i`` points at ``i+1 .. i+d``
mod ``n``) built inline: its CSR is written in one pass from arange
arithmetic and — unlike rmat — its frog traversals have *provably*
local working sets, which is what makes the RSS bound honest rather
than luck.  Residency is measured in a child subprocess via
``resource.getrusage`` (peak RSS is a process-lifetime high-water
mark, so the child does nothing but load-and-serve), against a
baseline child that pays interpreter + imports but never builds a
service — the delta isolates serving memory from import noise.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the graph and asserts
the parity/pruning/hygiene contract; the RSS and slowdown bounds are
asserted in the full run (where the 4x ratio is physically real) and
recorded unconditionally.

Run directly: ``python -m pytest benchmarks/bench_out_of_core.py -q``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.experiments import record_perf
from repro.graph import DiGraph
from repro.serving import RankingQuery, RankingService
from repro.store import SegmentStore, Window, scan_keys

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

N = 20_000 if SMOKE else 300_000
DEGREE = 8 if SMOKE else 12
MACHINES = 4
CONFIG = FrogWildConfig(
    num_frogs=1_000 if SMOKE else 8_000,
    iterations=3 if SMOKE else 4,
    ps=1.0,
    seed=0,
)
QUERIES = 4 if SMOKE else 8
#: The working-set cap the full run must serve under: a quarter of the
#: bytes the serving tier would otherwise hold in RAM.
CAP_RATIO = 4
SLOWDOWN_BOUND = 5.0

_CHILD = r"""
import json, resource, sys

def peak_kb():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

# Both children import the full serving stack so the RSS delta
# isolates what *serving* allocates, not what importing costs.
import numpy as np  # noqa: E402,F401
from repro.core import FrogWildConfig
from repro.serving import RankingQuery, RankingService
from repro.store import SegmentStore

mode, payload = sys.argv[1], json.loads(sys.argv[2])
if mode == "baseline":
    print(json.dumps({"rss_kb": peak_kb()}))
    sys.exit(0)

service = RankingService(
    config=FrogWildConfig(**payload["config"]),
    num_machines=payload["machines"],
    seed=payload["seed"],
    store=SegmentStore(payload["store_dir"]),
    cache_capacity=0,
)
queries = [
    RankingQuery(seeds=tuple(seeds), k=payload["k"])
    for seeds in payload["seed_sets"]
]
# First pass pays the one-time minor faults on the mapped tables and
# produces the answers; the timed second pass (cache disabled, so it
# is real work) measures steady-state serving per the bench contract.
answers = service.query_batch(queries)
start = __import__("time").perf_counter()
service.query_batch(queries)
elapsed = __import__("time").perf_counter() - start
service.close()
print(json.dumps({
    "rss_kb": peak_kb(),
    "serve_s": elapsed,
    "answers": [
        [list(map(int, a.vertices)), list(map(float, a.scores))]
        for a in answers
    ],
}))
"""


def ring_lattice(n: int, degree: int) -> DiGraph:
    """Vertex ``i`` -> ``i+1 .. i+degree`` (mod ``n``), CSR in one pass."""
    indptr = np.arange(n + 1, dtype=np.int64) * degree
    offsets = np.arange(1, degree + 1, dtype=np.int64)
    indices = (
        (np.arange(n, dtype=np.int64)[:, None] + offsets[None, :]) % n
    ).reshape(-1)
    return DiGraph(indptr, indices, validate=False)


def _run_child(mode: str, payload: dict) -> dict:
    env = dict(os.environ)
    root = Path(__file__).parent.parent
    env["PYTHONPATH"] = (
        f"{root / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, json.dumps(payload)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    graph = ring_lattice(N, DEGREE)
    store = SegmentStore.create(
        tmp_path_factory.mktemp("oocbench") / "seg",
        source=graph,
        num_machines=MACHINES,
        salt=0,
    )
    rng = np.random.default_rng(42)
    # Clustered seed sets: each query's frogs roam a bounded arc of the
    # ring (k-hop reach <= iterations * degree vertices past the seed).
    anchors = rng.choice(N, size=QUERIES, replace=False)
    seed_sets = [
        tuple(sorted(int(a + j) % N for j in range(3))) for a in anchors
    ]
    return graph, store, seed_sets


def test_out_of_core_serving_bounded_rss_and_bitwise(workload):
    graph, store, seed_sets = workload

    ram = RankingService(
        graph, CONFIG, num_machines=MACHINES, seed=0, cache_capacity=0
    )
    queries = [RankingQuery(seeds=s, k=10) for s in seed_sets]
    golden = ram.query_batch(queries)  # warm-up pass, mirrors the child
    start = time.perf_counter()
    ram.query_batch(queries)
    ram_s = time.perf_counter() - start
    ram.close()

    # Warm construction in-parent writes the spill the child reuses
    # (the child must map tables, not rebuild them).
    warm = RankingService(
        config=CONFIG, num_machines=MACHINES, seed=0, store=store
    )
    warm.close()
    spilled = sum(
        p.stat().st_size for p in (store.directory / "serving").rglob("*")
        if p.is_file()
    )
    cap_bytes = (spilled + store.nbytes_on_disk()) // CAP_RATIO

    payload = {
        "config": {
            "num_frogs": CONFIG.num_frogs,
            "iterations": CONFIG.iterations,
            "ps": CONFIG.ps,
            "seed": CONFIG.seed,
        },
        "machines": MACHINES,
        "seed": 0,
        "store_dir": str(store.directory),
        "seed_sets": [list(s) for s in seed_sets],
        "k": 10,
    }
    baseline = _run_child("baseline", {})
    served = _run_child("serve", payload)

    # Peak RSS is a lifetime high-water mark: the import transient
    # (~70 MB, mostly numpy) dominates both children identically, so
    # the *delta* isolates what mapped serving added on top of it.
    rss_delta = max(0, served["rss_kb"] - baseline["rss_kb"]) * 1024
    bitwise = all(
        list(map(int, g.vertices)) == got[0]
        and list(map(float, g.scores)) == got[1]
        for g, got in zip(golden, served["answers"])
    )
    assert bitwise, "out-of-core answers drifted from the RAM tier"

    orphans = store.sweep_orphans()
    assert orphans == [], orphans

    slowdown = served["serve_s"] / ram_s if ram_s > 0 else float("inf")
    record_perf(
        "out-of-core-serving",
        {
            "n": N,
            "degree": DEGREE,
            "smoke": SMOKE,
            "store_bytes": store.nbytes_on_disk(),
            "spill_bytes": spilled,
            "rss_cap_bytes": cap_bytes,
            "rss_peak_bytes": rss_delta,
            "rss_child_kb": served["rss_kb"],
            "rss_baseline_kb": baseline["rss_kb"],
            "rss_over_cap": rss_delta / cap_bytes if cap_bytes else 0.0,
            "ram_serve_s": ram_s,
            "mapped_serve_s": served["serve_s"],
            "slowdown": slowdown,
            "bitwise_topk_equal": 1,
            "orphaned_segments": len(orphans),
        },
    )
    if not SMOKE:
        assert rss_delta <= cap_bytes, (
            f"mapped serving RSS {rss_delta / 1e6:.1f} MB exceeds the "
            f"{cap_bytes / 1e6:.1f} MB working-set cap"
        )
        assert slowdown <= SLOWDOWN_BOUND, slowdown


def test_windowed_scans_prune_on_the_bench_workload(workload):
    graph, store, _ = workload
    full = store.edge_keys()
    window = Window(
        N // 4, N // 4 + N // 8, machine=1, num_machines=MACHINES, salt=0
    )
    got = store.scan(window)
    assert np.array_equal(got, scan_keys(full, N, window))
    stats = store.scan_stats
    assert stats.segments_pruned > 0
    assert stats.pruned_fraction() > 0.5
