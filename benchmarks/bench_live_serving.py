"""Live-serving benchmark: refresh a churning graph without re-ingress.

The claim under test is the architectural one behind ``repro/live``: a
churning graph can stay *served* — fresh epochs published, caches
invalidated exactly, queries flowing — while the refresh path pays
ingress only for the edges that actually changed.  Asserted here:

* **placement reuse** — under a 1%-per-tick churn stream every refresh
  reuses >= 80% of edge placements (in practice ~99%; the 80% bar is
  the acceptance contract with a wide safety margin);
* **epoch integrity** — every refresh publishes exactly one epoch, all
  queries of one batch carry the same epoch stamp, and none is dropped;
* **cache semantics** — replays within an epoch are free (cache hits),
  replays across a refresh re-execute exactly once.

Run directly: ``python -m pytest benchmarks/bench_live_serving.py -q``.
Headline numbers are persisted via
:func:`repro.experiments.record_perf` into ``BENCH_serving.json``.

``REPRO_BENCH_SMOKE=1`` shrinks the graph and frog budget for the CI
perf-gate lane: same assertions, same records, a fraction of the wall
clock.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.dynamic import ChurnGenerator, DynamicDiGraph
from repro.experiments import record_perf
from repro.graph import rmat
from repro.live import LiveRankingService
from repro.serving import RankingQuery

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
MACHINES = 8
TICKS = 4
CONFIG = FrogWildConfig(
    num_frogs=800 if SMOKE else 2_000, iterations=4, seed=0
)


@pytest.fixture(scope="module")
def live_setup():
    graph = rmat(scale=10 if SMOKE else 12, edge_factor=12, seed=11)
    dynamic = DynamicDiGraph.from_digraph(graph)
    service = LiveRankingService(
        dynamic, config=CONFIG, num_machines=MACHINES, seed=0
    )
    rng = np.random.default_rng(5)
    queries = [
        RankingQuery(
            seeds=tuple(np.sort(
                rng.choice(graph.num_vertices, size=2, replace=False)
            ).tolist()),
            k=10,
        )
        for _ in range(8)
    ]
    return dynamic, service, queries


def test_live_refresh_reuses_ingress_and_keeps_serving(live_setup):
    dynamic, service, queries = live_setup
    churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=3)

    refresh_times = []
    start = time.perf_counter()
    for _ in range(TICKS):
        answers = service.query_batch(queries)
        assert all(not a.cached for a in answers)
        replays = service.query_batch(queries)
        assert all(a.cached for a in replays)
        epoch_stamps = {a.report.extra["epoch"] for a in answers}
        assert len(epoch_stamps) == 1  # one batch, one epoch — never torn
        update = service.refresh(churn.step(dynamic))
        refresh_times.append(update.refresh_time_s)
        assert update.reuse_ratio >= 0.8, (
            f"refresh {update.sequence} reused only "
            f"{update.reuse_ratio:.1%} of edge placements"
        )
    wall_s = time.perf_counter() - start

    live = service.live_stats()
    assert live["epochs_published"] == TICKS + 1
    assert live["lifetime_reuse_ratio"] >= 0.8
    print(
        f"\n{TICKS} ticks in {wall_s:.3f}s; lifetime reuse "
        f"{live['lifetime_reuse_ratio']:.4f}; mean refresh "
        f"{np.mean(refresh_times):.4f}s"
    )
    history = service.refresh_history
    record_perf(
        "live-serving-refresh",
        {
            "wall_time_s": wall_s,
            "mean_refresh_s": float(np.mean(refresh_times)),
            "lifetime_reuse_ratio": live["lifetime_reuse_ratio"],
            "amortization_ratio": service.stats.amortization_ratio(),
            "epochs_published": live["epochs_published"],
            "ticks": TICKS,
            "mean_vertices_patched": float(
                np.mean([u.vertices_patched for u in history])
            ),
            "table_rebuilds": float(
                sum(u.table_rebuilds for u in history)
            ),
            "mean_publish_s": float(
                np.mean([u.publish_s for u in history])
            ),
        },
    )


def test_incremental_refresh_beats_service_rebuild(live_setup):
    """The refresh path must be cheaper than tearing the service down
    and rebuilding it from scratch — the whole point of keeping the
    placement warm.  Rebuild repartitions every edge; refresh touches
    only the churned ones and reuses the maintained placement."""
    dynamic, service, _ = live_setup
    churn = ChurnGenerator(add_rate=0.005, remove_rate=0.005, seed=9)

    delta = churn.step(dynamic)
    start = time.perf_counter()
    update = service.refresh(delta)
    refresh_s = time.perf_counter() - start

    start = time.perf_counter()
    LiveRankingService(
        dynamic, config=CONFIG, num_machines=MACHINES, seed=0
    )
    rebuild_s = time.perf_counter() - start

    print(
        f"\nrefresh {refresh_s:.4f}s (placed {update.new_placements} "
        f"of {update.num_edges} edges) vs rebuild {rebuild_s:.4f}s"
    )
    # The hard claim is about ingress work, not wall-clock (both paths
    # rebuild the in-memory replication tables): a refresh must place
    # only the churned slice of the edge set.
    assert update.new_placements <= 0.05 * update.num_edges
    record_perf(
        "live-refresh-vs-rebuild",
        {
            "refresh_s": refresh_s,
            "rebuild_s": rebuild_s,
            "new_placements": update.new_placements,
            "num_edges": update.num_edges,
        },
    )
