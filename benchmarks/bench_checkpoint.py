"""Recovery-strategy ablation: uniform rebirth vs checkpoint/restore.

Anonymous, uniformly-born walkers are FrogWild's implicit fault-
tolerance story: losing a machine's frogs and rebirthing them uniformly
is *statistically free* (the birth law was uniform anyway).  The
classic engine answer — periodic checkpointing — buys nothing here and
pays a continuous traffic tax.  This bench makes that concrete:

* same crash, both recoveries: accuracy within noise of each other;
* checkpointing's network bill strictly dominates rebirth's at every
  checkpoint interval;
* the tax scales with checkpoint frequency.
"""

import pytest

from conftest import run_once
from repro.core import FrogWildConfig
from repro.engine import build_cluster, traffic_breakdown
from repro.faults import (
    CheckpointConfig,
    CheckpointedFrogWildRunner,
    FaultSchedule,
    MachineCrash,
    run_frogwild_with_faults,
)
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CACHE = {}
_MACHINES = 8
_CONFIG = FrogWildConfig(num_frogs=16_000, iterations=4, seed=0)
_SCHEDULE = FaultSchedule(
    crashes=(MachineCrash(step=2, machine=0, rebirth=True),)
)


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


def _checkpointed(graph, interval):
    state = build_cluster(graph, _MACHINES, seed=0)
    runner = CheckpointedFrogWildRunner(
        state, _CONFIG, _SCHEDULE, CheckpointConfig(interval=interval)
    )
    return runner, runner.run()


def test_rebirth_matches_checkpoint_accuracy(benchmark, graph, truth):
    """Same crash: rebirth's accuracy within noise of checkpointing's —
    the restored identities carried no information worth storing."""

    def run_both():
        reborn, _ = run_frogwild_with_faults(
            graph, _SCHEDULE, _CONFIG, num_machines=_MACHINES
        )
        _, checkpointed = _checkpointed(graph, interval=1)
        return reborn, checkpointed

    reborn, checkpointed = run_once(benchmark, run_both)
    mass_reborn = normalized_mass_captured(
        reborn.estimate.vector(), truth, 100
    )
    mass_checkpoint = normalized_mass_captured(
        checkpointed.estimate.vector(), truth, 100
    )
    assert mass_reborn > mass_checkpoint - 0.03
    assert mass_reborn > 0.9


def test_checkpoint_traffic_tax(benchmark, graph):
    """Checkpointing strictly inflates the network bill; rebirth is free."""

    def run_both():
        reborn, _ = run_frogwild_with_faults(
            graph, _SCHEDULE, _CONFIG, num_machines=_MACHINES
        )
        _, checkpointed = _checkpointed(graph, interval=1)
        return reborn, checkpointed

    reborn, checkpointed = run_once(benchmark, run_both)
    assert checkpointed.report.network_bytes > reborn.report.network_bytes
    tax = traffic_breakdown(checkpointed.state).bytes_by_kind["checkpoint"]
    assert tax > 0


def test_tax_scales_with_frequency(benchmark, graph):
    """Every-step checkpoints cost more than every-4-steps checkpoints."""

    def run_both():
        _, frequent = _checkpointed(graph, interval=1)
        _, sparse = _checkpointed(graph, interval=4)
        return frequent, sparse

    frequent, sparse = run_once(benchmark, run_both)
    tax_frequent = traffic_breakdown(frequent.state).bytes_by_kind[
        "checkpoint"
    ]
    tax_sparse = traffic_breakdown(sparse.state).bytes_by_kind["checkpoint"]
    assert tax_frequent > tax_sparse
