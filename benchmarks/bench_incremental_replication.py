"""Incremental replication-table maintenance benchmark.

Two claims gate here, both landing machine-readable records in
``BENCH_serving.json`` for the CI perf-gate lane:

* **table patch is O(churn), not O(graph)** — per refresh, the number
  of vertices whose replica/master/grouping structures are rebuilt is
  bounded by the endpoints of the changed edge keys (asserted exactly:
  ``vertices_patched <= 2 * edges_changed``), and the patched table is
  structurally equal to a from-scratch build; the patch-vs-rebuild
  wall-clock ratio is recorded as the honest headline;
* **background refresh keeps the swap off the query path** — the
  publish step a query can ever contend on is the atomic epoch swap,
  orders of magnitude below the build it double-buffers; the p50
  publish latency and mean build time are recorded, and every submitted
  delta is covered by a published epoch even when builds coalesce.

Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke mode: a tiny graph,
assertions only, same records.

Run directly: ``python -m pytest benchmarks/bench_incremental_replication.py -q``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.cluster import ReplicationTable
from repro.core import FrogWildConfig
from repro.dynamic import ChurnGenerator, DynamicDiGraph
from repro.experiments import record_perf
from repro.graph import rmat
from repro.live import (
    IncrementalIngress,
    IncrementalReplication,
    LiveRankingService,
)

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
SCALE = 9 if SMOKE else 13
MACHINES = 8
TICKS = 3 if SMOKE else 4
# Low-churn point first: that is where the patch-vs-rebuild wall-clock
# claim is asserted (heavier churn touches the hubs, which own most of
# a power-law edge set — the adaptive gate exists for exactly that).
RATES = (0.0005, 0.01) if not SMOKE else (0.01,)


def _patch_vs_rebuild(rate: float) -> dict[str, float]:
    from repro.core import RefreshPolicy
    from repro.core.frogwild import prime_ingress_caches

    graph = rmat(scale=SCALE, edge_factor=12, seed=11)
    dynamic = DynamicDiGraph.from_digraph(graph)
    ingress = IncrementalIngress(dynamic, MACHINES, seed=0)
    # Pin the patch path: the wall-clock comparison below is exactly
    # the decision the adaptive gate makes adaptively in production.
    replicator = IncrementalReplication(
        ingress,
        dynamic.snapshot(),
        seed=0,
        policy=RefreshPolicy(full_rebuild_fraction=1.0),
    )
    churn = ChurnGenerator(add_rate=rate, remove_rate=rate, seed=3)

    patch_times, rebuild_times, touched_ratios = [], [], []
    for _ in range(TICKS):
        ingress.apply(churn.step(dynamic))
        snapshot = dynamic.snapshot()

        start = time.perf_counter()
        patch = replicator.refresh(snapshot)
        patch_times.append(time.perf_counter() - start)

        # The from-scratch path the patch replaces, including the
        # kernel-table warm-up both paths hand the next epoch.
        start = time.perf_counter()
        scratch = ReplicationTable(snapshot, ingress.partition_for(snapshot), seed=0)
        prime_ingress_caches(scratch, snapshot)
        rebuild_times.append(time.perf_counter() - start)

        # The acceptance invariants: equivalence after every delta, and
        # structure rebuilds bounded by the churned vertices (the
        # endpoints of the changed edge keys) and their incident edges.
        assert replicator.table.structurally_equal(scratch)
        assert not patch.full_rebuild
        assert patch.vertices_patched <= 2 * patch.edges_changed
        assert patch.vertices_patched < snapshot.num_vertices
        touched_ratios.append(
            patch.vertices_patched / max(2 * patch.edges_changed, 1),
        )

    ratio = float(np.mean(patch_times) / np.mean(rebuild_times))
    mean_patched = float(np.mean([p.vertices_patched for p in replicator.history]))
    regroup_fraction = float(
        np.mean([p.edges_regrouped for p in replicator.history])
        / (2 * dynamic.num_edges)
    )
    print(
        f"churn {rate:.2%}/tick: patch {np.mean(patch_times) * 1e3:.1f} ms "
        f"vs rebuild {np.mean(rebuild_times) * 1e3:.1f} ms "
        f"(ratio {ratio:.2f}); {mean_patched:.0f} of "
        f"{dynamic.num_vertices} vertices patched, "
        f"{regroup_fraction:.1%} of regroup work touched"
    )
    return {
        "ratio": ratio,
        "mean_patch_s": float(np.mean(patch_times)),
        "mean_rebuild_s": float(np.mean(rebuild_times)),
        "touched_per_churned_bound": float(np.max(touched_ratios)),
        "mean_vertices_patched": mean_patched,
        "regroup_fraction": regroup_fraction,
    }


def test_table_patch_is_proportional_to_churn():
    print()
    sweep = {rate: _patch_vs_rebuild(rate) for rate in RATES}
    low = sweep[RATES[0]]
    if not SMOKE:
        # At the low-churn operating point the patch must beat the
        # from-scratch rebuild outright (observed ~0.8).
        assert low["ratio"] < 1.0, f"patch/rebuild ratio {low['ratio']:.2f}"
    record = {
        "patch_vs_rebuild_ratio": low["ratio"],
        "churn_rate": RATES[0],
        "ticks": TICKS,
        "scale": SCALE,
        "smoke": SMOKE,
    }
    for rate, row in sweep.items():
        for key, value in row.items():
            record[f"{key}@{rate:g}"] = value
    record_perf("incremental-replication", record)


def test_adaptive_gate_prefers_the_cheaper_path():
    """Under hub-heavy churn the default policy must fall back to the
    from-scratch build the measurements above show is cheaper there."""
    graph = rmat(scale=SCALE, edge_factor=12, seed=19)
    dynamic = DynamicDiGraph.from_digraph(graph)
    ingress = IncrementalIngress(dynamic, MACHINES, seed=0)
    replicator = IncrementalReplication(ingress, dynamic.snapshot(), seed=0)
    heavy = ChurnGenerator(add_rate=0.05, remove_rate=0.05, seed=2)
    ingress.apply(heavy.step(dynamic))
    patch = replicator.refresh(dynamic.snapshot())
    assert patch.full_rebuild
    assert replicator.full_rebuilds == 1


def test_background_refresh_publish_stays_off_the_query_path():
    graph = rmat(scale=SCALE, edge_factor=12, seed=7)
    dynamic = DynamicDiGraph.from_digraph(graph)
    service = LiveRankingService(
        dynamic,
        config=FrogWildConfig(num_frogs=500 if SMOKE else 2_000, iterations=3, seed=0),
        num_machines=MACHINES,
        seed=0,
    )
    churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=5)
    service.start_refresher()
    try:
        tickets = service.attach(churn, ticks=TICKS, background=True)
        updates = [ticket.result(timeout=120) for ticket in tickets]
    finally:
        service.stop()

    stats = service.refresher.stats
    assert stats.builds >= 1
    assert stats.deltas_submitted == TICKS
    # Coalescing accounting: every submitted delta is covered exactly
    # once across the distinct published updates.
    distinct = {id(u): u for u in updates}.values()
    assert sum(u.coalesced_deltas for u in distinct) == TICKS
    publish_p50 = stats.publish_p50_s()
    mean_build = stats.mean_build_s()
    print(
        f"\n{stats.builds} background builds covered {TICKS} deltas "
        f"(max coalesce {stats.max_coalesced}); publish p50 "
        f"{publish_p50 * 1e6:.1f} us vs mean build "
        f"{mean_build * 1e3:.1f} ms"
    )
    if not SMOKE:
        # The swap is the only query-path exposure; it must be far
        # below the build it double-buffers (observed ~1000x below).
        assert publish_p50 < 0.1 * mean_build
    record_perf(
        "background-refresh",
        {
            "publish_p50_s": publish_p50,
            "mean_build_s": mean_build,
            "builds": stats.builds,
            "deltas_submitted": stats.deltas_submitted,
            "deltas_coalesced": stats.deltas_coalesced,
            "max_coalesced": stats.max_coalesced,
            "publish_to_build_ratio": (
                publish_p50 / mean_build if mean_build else 0.0
            ),
            "smoke": SMOKE,
        },
    )
