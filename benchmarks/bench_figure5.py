"""Figure 5: FrogWild vs uniform sparsification (Twitter, 12 nodes).

Paper: GraphLab PR (2 iterations) on a graph whose edges were deleted
independently with probability r = 1 - q achieves comparable accuracy
but significantly worse running time than FrogWild.
"""

from conftest import run_once, write_figure_text
from repro.experiments import figure5

_CACHE = {}


def _result(workload):
    if "fig5" not in _CACHE:
        _CACHE["fig5"] = figure5(workload, seed=0)
    return _CACHE["fig5"]


def test_fig5_sparsified_baseline(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    write_figure_text(result)
    sparse = result.series("Sparsified")
    frog = result.series("FrogWild")
    assert len(sparse) == 3 and len(frog) == 3

    # Accuracy comparable: both families capture > 0.9 at k=100.
    for row in sparse + frog:
        assert row.mass_captured[100] > 0.9

    # FrogWild wins on running time against every sparsified setting.
    slowest_frog = max(r.total_time_s for r in frog)
    fastest_sparse = min(r.total_time_s for r in sparse)
    assert slowest_frog < fastest_sparse, (
        f"FrogWild {slowest_frog:.3f}s vs sparsified {fastest_sparse:.3f}s"
    )


def test_fig5_sparsification_accuracy_monotone(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    sparse = sorted(result.series("Sparsified"), key=lambda r: r.params["q"])
    # Keeping more edges cannot hurt accuracy (weakly monotone).
    masses = [r.mass_captured[100] for r in sparse]
    assert masses[-1] >= masses[0] - 0.01
    # And deleting edges reduces traffic.
    nbytes = [r.network_bytes for r in sparse]
    assert nbytes[0] < nbytes[-1]
