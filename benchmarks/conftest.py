"""Shared fixtures and helpers for the figure benchmarks.

Every ``bench_figure*.py`` module reproduces one figure of the paper at
the calibrated workload scale, asserts the figure's *shape criteria*
(documented in DESIGN.md), and writes the numeric series to
``benchmarks/results/figure<N>.txt`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import (
    FigureResult,
    livejournal_workload,
    twitter_workload,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tw_workload():
    """Full-scale Twitter-like workload (50k vertices, 24k frogs)."""
    return twitter_workload()


@pytest.fixture(scope="session")
def lj_workload():
    """Full-scale LiveJournal-like workload (20k vertices, 24k frogs)."""
    return livejournal_workload()


def run_once(benchmark, fn):
    """Benchmark a figure reproduction exactly once (they are minutes of
    work at paper-shape scale; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def write_figure_text(result: FigureResult) -> Path:
    """Persist a figure's series for the experiment log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"figure{result.figure_id}.txt"
    path.write_text(result.to_text() + "\n", encoding="utf-8")
    return path


def by_algorithm(result: FigureResult, label: str, machines: int | None = None):
    """First row matching an exact algorithm label (and cluster size)."""
    for row in result.rows:
        if row.algorithm == label and (
            machines is None or row.num_machines == machines
        ):
            return row
    raise AssertionError(f"no row {label!r} (machines={machines})")
