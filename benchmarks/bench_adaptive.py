"""Adaptive frog-budget benchmark (Remark 6 as a stopping rule).

Remark 6 gives the order of the required budget, N = O(k / mu_k^2),
but its constant is unknowable a priori.  The adaptive runner finds it
online; this bench checks the schedule's economics:

* the adaptive answer matches a generously-provisioned fixed run;
* total adaptive spend (all rounds, pilot included) stays within a
  small multiple of the final round — the geometric schedule's classic
  2x-ish overhead;
* the stopping rule actually engages: fewer total frogs than always
  running the worst-case budget.
"""

import pytest

from conftest import run_once
from repro.core import (
    AdaptiveConfig,
    FrogWildConfig,
    run_adaptive_frogwild,
    run_frogwild,
)
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CACHE = {}
_MACHINES = 16
_K = 100
_MAX_FROGS = 128_000


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


@pytest.fixture(scope="module")
def outcome(graph):
    if "outcome" not in _CACHE:
        _CACHE["outcome"] = run_adaptive_frogwild(
            graph,
            AdaptiveConfig(
                k=_K,
                pilot_frogs=2_000,
                max_frogs=_MAX_FROGS,
                stability_threshold=0.9,
                min_separation_z=1.0,
            ),
            num_machines=_MACHINES,
            seed=0,
        )
    return _CACHE["outcome"]


def test_adaptive_matches_fixed_oracle(benchmark, graph, truth, outcome):
    """The adaptive answer is as accurate as a fixed run provisioned at
    the budget cap (the oracle a user would overpay for)."""

    def run_fixed():
        return run_frogwild(
            graph,
            FrogWildConfig(num_frogs=_MAX_FROGS, iterations=4, seed=0),
            num_machines=_MACHINES,
        )

    oracle = run_once(benchmark, run_fixed)
    mass_adaptive = normalized_mass_captured(
        outcome.estimate.vector(), truth, _K
    )
    mass_oracle = normalized_mass_captured(
        oracle.estimate.vector(), truth, _K
    )
    assert mass_adaptive > mass_oracle - 0.02
    assert mass_adaptive > 0.95


def test_geometric_overhead_is_bounded(benchmark, outcome):
    """Total frogs across all rounds stay within 3x the final round —
    the standard geometric-doubling guarantee."""

    def collect():
        return outcome

    result = run_once(benchmark, collect)
    final_round_frogs = result.rounds[-1].num_frogs
    assert result.total_frogs() <= 3 * final_round_frogs


def test_stops_before_the_cap_when_stable(benchmark, graph):
    """On an easy target (small k) the rule converges well below the
    budget cap."""

    def run_easy():
        return run_adaptive_frogwild(
            graph,
            AdaptiveConfig(
                k=10,
                pilot_frogs=2_000,
                max_frogs=_MAX_FROGS,
                stability_threshold=0.8,
                min_separation_z=0.5,
            ),
            num_machines=_MACHINES,
            seed=0,
        )

    easy = run_once(benchmark, run_easy)
    assert easy.converged
    assert easy.rounds[-1].num_frogs < _MAX_FROGS


def test_self_estimate_tracks_truth(benchmark, truth, outcome):
    """The pilot's self-estimated mu_k lands within 2x of the true
    mu_k(pi) — close enough for an order-targeting budget rule."""

    def collect():
        return outcome

    result = run_once(benchmark, collect)
    import numpy as np

    true_mu = float(np.sort(truth)[::-1][:_K].sum())
    last_estimate = result.rounds[-1].mu_k_self_estimate
    assert 0.5 * true_mu < last_estimate < 2.0 * true_mu
