"""Figure 1 (a-d): PageRank performance vs cluster size (Twitter).

Paper (Section 3.4): per-iteration time below one second for FrogWild
against ~7.5 s for GraphLab PR exact (>7x), total-time and CPU gaps of
the same order, and network traffic ~1000x below exact / >10x below the
1-2 iteration variants (for small ps).

Shape criteria asserted at simulator scale:

* 1a — FrogWild per-iteration time >= 4x below GraphLab PR exact, and
  non-increasing in ps;
* 1b — total time: FrogWild < GL PR 2 iters < GL PR exact;
* 1c — network: FrogWild ps=1 well below exact; ps=0.1 >= 5x below
  GL PR 1 iter;
* 1d — CPU: FrogWild below every GraphLab PR variant.
"""


from conftest import by_algorithm, run_once, write_figure_text
from repro.experiments import figure1

MACHINES = (12, 16, 20, 24)
_CACHE = {}


def _result(workload):
    if "fig1" not in _CACHE:
        _CACHE["fig1"] = figure1(workload, machine_counts=MACHINES, seed=0)
    return _CACHE["fig1"]


def test_fig1a_time_per_iteration(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    write_figure_text(result)
    for machines in MACHINES:
        exact = by_algorithm(result, "GraphLab PR exact", machines)
        fw_by_ps = {
            ps: by_algorithm(result, f"FrogWild ps={ps:g}", machines)
            for ps in (1.0, 0.7, 0.4, 0.1)
        }
        for row in fw_by_ps.values():
            ratio = exact.time_per_iteration_s / row.time_per_iteration_s
            assert ratio > 3.5, (
                f"{machines} nodes: per-iteration speedup only {ratio:.1f}x"
            )
        # Per-iteration time decreases (weakly) as ps decreases.
        times = [fw_by_ps[ps].time_per_iteration_s for ps in (1.0, 0.4, 0.1)]
        assert times[0] >= times[1] >= times[2] * 0.95


def test_fig1b_total_time(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    for machines in MACHINES:
        exact = by_algorithm(result, "GraphLab PR exact", machines)
        two = by_algorithm(result, "GraphLab PR 2 iters", machines)
        fw = by_algorithm(result, "FrogWild ps=1", machines)
        fw_low = by_algorithm(result, "FrogWild ps=0.1", machines)
        assert fw.total_time_s < two.total_time_s < exact.total_time_s
        assert fw_low.total_time_s <= fw.total_time_s


def test_fig1c_network_bytes(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    for machines in MACHINES:
        exact = by_algorithm(result, "GraphLab PR exact", machines)
        one = by_algorithm(result, "GraphLab PR 1 iters", machines)
        fw = by_algorithm(result, "FrogWild ps=1", machines)
        fw_low = by_algorithm(result, "FrogWild ps=0.1", machines)
        assert fw.network_bytes * 10 < exact.network_bytes
        assert fw_low.network_bytes * 5 < one.network_bytes
        assert fw_low.network_bytes < fw.network_bytes


def test_fig1d_cpu_usage(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    for machines in MACHINES:
        fw = by_algorithm(result, "FrogWild ps=1", machines)
        for label in (
            "GraphLab PR exact",
            "GraphLab PR 2 iters",
            "GraphLab PR 1 iters",
        ):
            gl = by_algorithm(result, label, machines)
            assert fw.cpu_seconds < gl.cpu_seconds * 1.5
        exact = by_algorithm(result, "GraphLab PR exact", machines)
        assert fw.cpu_seconds * 4 < exact.cpu_seconds
