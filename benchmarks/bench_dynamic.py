"""Dynamic-graph tracking benchmark (the paper's OSN motivation).

Section 1 of the paper argues that on highly dynamic activity graphs
the top-k PageRank list must be recalculated constantly, making "a fast
approximation for the top-PageRank nodes a desirable alternative to the
exact solution".  This bench quantifies that claim on the simulator:

* per-churn-tick refresh cost of FrogWild tracking vs re-running the
  GraphLab PR baseline to convergence on each snapshot,
* list stability under light churn (the answer shouldn't thrash),
* responsiveness: a synthetic hub takeover must enter the list in one
  refresh,
* incremental ingress: per-tick placement work is proportional to the
  churn batch, not the graph.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.core import FrogWildConfig
from repro.dynamic import (
    ChurnGenerator,
    DynamicDiGraph,
    GraphDelta,
    PageRankTracker,
    stable_hash_partition,
)
from repro.engine import build_cluster
from repro.graph import twitter_like
from repro.pagerank import graphlab_pagerank

_CACHE = {}
_MACHINES = 8
_TICKS = 5


@pytest.fixture(scope="module")
def base_graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=10_000, seed=13)
    return _CACHE["graph"]


def _fresh_tracker(base_graph, validate=False):
    dynamic = DynamicDiGraph.from_digraph(base_graph)
    tracker = PageRankTracker(
        dynamic,
        k=50,
        config=FrogWildConfig(num_frogs=10_000, iterations=4, seed=0),
        num_machines=_MACHINES,
        seed=0,
        validate=validate,
    )
    return dynamic, tracker


def test_tracking_beats_exact_recompute(benchmark, base_graph):
    """Per-tick refresh: FrogWild orders of magnitude below exact PR."""

    def run_both():
        dynamic, tracker = _fresh_tracker(base_graph)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=1)
        exact_bytes = []
        for _ in range(_TICKS):
            tracker.update(churn.step(dynamic))
            snapshot = dynamic.snapshot()
            state = build_cluster(
                snapshot,
                _MACHINES,
                seed=0,
                partition=stable_hash_partition(snapshot, _MACHINES),
            )
            exact = graphlab_pagerank(
                snapshot, tolerance=1e-6, state=state, max_supersteps=200
            )
            exact_bytes.append(exact.report.network_bytes)
        return tracker, exact_bytes

    tracker, exact_bytes = run_once(benchmark, run_both)
    frog_ticks = tracker.history[1:]  # skip the initial build
    mean_frog = np.mean([u.network_bytes for u in frog_ticks])
    mean_exact = np.mean(exact_bytes)
    assert mean_frog * 10 < mean_exact, (
        f"FrogWild tick {mean_frog:.2e}B vs exact {mean_exact:.2e}B"
    )


def test_tracking_quality_under_churn(benchmark, base_graph):
    """Each refreshed list must stay accurate against the snapshot's
    exact PageRank while the graph churns."""

    def run_tracked():
        dynamic, tracker = _fresh_tracker(base_graph, validate=True)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=2)
        for _ in range(3):
            tracker.update(churn.step(dynamic))
        return tracker

    tracker = run_once(benchmark, run_tracked)
    masses = [u.mass_vs_exact for u in tracker.history]
    assert all(m is not None and m > 0.85 for m in masses), masses


def test_list_stability_under_light_churn(benchmark, base_graph):
    """1% churn per tick must not thrash the reported top-50."""

    def run_tracked():
        dynamic, tracker = _fresh_tracker(base_graph)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=3)
        for _ in range(_TICKS):
            tracker.update(churn.step(dynamic))
        return tracker

    tracker = run_once(benchmark, run_tracked)
    assert tracker.churn_stability() > 0.75


def test_hub_takeover_detected_in_one_refresh(benchmark, base_graph):
    """Responsiveness: a vertex gaining thousands of in-links enters the
    top-k at the very next refresh."""

    def run_takeover():
        dynamic, tracker = _fresh_tracker(base_graph)
        newcomer = base_graph.num_vertices - 1
        sources = np.arange(3_000)
        delta = GraphDelta(
            added=np.column_stack(
                [sources, np.full(sources.size, newcomer)]
            )
        )
        return newcomer, tracker.update(delta)

    newcomer, update = run_once(benchmark, run_takeover)
    assert newcomer in set(update.top_k.tolist())


def test_incremental_ingress_is_proportional_to_churn(benchmark, base_graph):
    """Per-tick placements track the churn batch size, not graph size."""

    def run_tracked():
        dynamic, tracker = _fresh_tracker(base_graph)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=4)
        deltas = []
        for _ in range(3):
            delta = churn.step(dynamic)
            deltas.append(delta)
            tracker.update(delta)
        return tracker, deltas

    tracker, deltas = run_once(benchmark, run_tracked)
    initial = tracker.history[0].new_edge_placements
    for update, delta in zip(tracker.history[1:], deltas):
        batch = delta.num_added + delta.num_removed
        assert update.new_edge_placements <= batch
        assert update.new_edge_placements < initial * 0.1
