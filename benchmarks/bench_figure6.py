"""Figure 6 (a-d): walker and iteration sweeps (LiveJournal, 20 nodes).

Paper: accuracy improves with the number of initial walkers (6a) and
with iterations, saturating around 4 (6b); total time grows mildly with
both (6c/6d); 800K walkers with 4 iterations is the sweet spot; GL PR 1
iter is below the well-provisioned FrogWild settings while GL PR exact
is far slower than everything.
"""

import numpy as np

from conftest import by_algorithm, run_once, write_figure_text
from repro.experiments import figure6

_CACHE = {}


def _result(workload):
    if "fig6" not in _CACHE:
        _CACHE["fig6"] = figure6(workload, seed=0)
    return _CACHE["fig6"]


def _frog_sweep(result, ps):
    """Rows of the 6a/6c sweep: iterations=4, one row per frog count.

    The iteration sweep re-runs the default frog count at 4 iterations,
    so duplicates (identical params, same seed) are collapsed.
    """
    rows = {}
    for r in result.rows:
        if (
            r.algorithm == f"FrogWild ps={ps:g}"
            and r.params["iterations"] == 4
        ):
            rows.setdefault(r.params["num_frogs"], r)
    return [rows[f] for f in sorted(rows)]


def _iter_sweep(result, ps, default_frogs):
    """Rows of the 6b/6d sweep: default frogs, one row per iteration."""
    rows = {}
    for r in result.rows:
        if (
            r.algorithm == f"FrogWild ps={ps:g}"
            and r.params["num_frogs"] == default_frogs
        ):
            rows.setdefault(r.params["iterations"], r)
    return [rows[i] for i in sorted(rows)]


def test_fig6a_accuracy_vs_walkers(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    write_figure_text(result)
    for ps in (1.0, 0.4):
        sweep = _frog_sweep(result, ps)
        assert len(sweep) == 6
        masses = [r.mass_captured[100] for r in sweep]
        # More walkers help: best-provisioned beats least-provisioned.
        assert masses[-1] > masses[0] - 0.01
        assert max(masses) == max(
            masses[i] for i in range(2, 6)
        ), "accuracy peak should not sit at the lowest walker counts"


def test_fig6b_accuracy_vs_iterations(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    frogs = lj_workload.default_frogs
    for ps in (1.0, 0.7):
        sweep = _iter_sweep(result, ps, frogs)
        assert len(sweep) == 5  # iterations 2..6
        masses = [r.mass_captured[100] for r in sweep]
        # 2 iterations is clearly undermixed; 4+ saturates.
        assert masses[0] < max(masses[2:]) + 1e-9
        assert max(masses[2:]) > 0.9


def test_fig6c_time_vs_walkers(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    sweep = _frog_sweep(result, 1.0)
    times = [r.total_time_s for r in sweep]
    # Time grows with walkers, but sublinearly (messages combine).
    assert times[-1] > times[0]
    frogs = [r.params["num_frogs"] for r in sweep]
    assert times[-1] / times[0] < frogs[-1] / frogs[0]


def test_fig6d_time_vs_iterations(benchmark, lj_workload):
    result = run_once(benchmark, lambda: _result(lj_workload))
    exact = by_algorithm(result, "GraphLab PR exact")
    sweep = _iter_sweep(result, 1.0, lj_workload.default_frogs)
    times = [r.total_time_s for r in sweep]
    assert np.all(np.diff(times) > 0), "each iteration adds time"
    # Even 6 FrogWild iterations stay far below GraphLab PR exact.
    assert times[-1] * 4 < exact.total_time_s
