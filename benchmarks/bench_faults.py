"""Fault-tolerance ablations.

The paper never evaluates failures, but its design choices (anonymous
walkers, uniform births, local deaths) buy graceful degradation almost
for free — these benches quantify that, plus the straggler argument for
partial synchronization:

* accuracy vs crash count (with rebirth recovery),
* accuracy vs in-flight drop rate,
* a straggling machine inflates BSP supersteps; lowering ``ps`` hands
  the straggler less sync work and claws back wall-clock time.
"""

import pytest

from conftest import run_once
from repro.core import FrogWildConfig, run_frogwild
from repro.faults import (
    FaultSchedule,
    MachineCrash,
    MessageDrop,
    StragglerCostModel,
    run_frogwild_with_faults,
)
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CACHE = {}
_MACHINES = 8
_CONFIG = FrogWildConfig(num_frogs=16_000, iterations=4, seed=0)


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


def test_accuracy_vs_crash_count(benchmark, graph, truth):
    """Killing 0/1/2 of 8 machines mid-run degrades accuracy gently."""

    def sweep():
        masses = {}
        for crashes in (0, 1, 2):
            schedule = FaultSchedule(
                crashes=tuple(
                    MachineCrash(step=1, machine=m, rebirth=True)
                    for m in range(crashes)
                )
            )
            result, _ = run_frogwild_with_faults(
                graph, schedule, _CONFIG, num_machines=_MACHINES
            )
            masses[crashes] = normalized_mass_captured(
                result.estimate.vector(), truth, 100
            )
        return masses

    masses = run_once(benchmark, sweep)
    assert masses[0] > 0.9
    # Two crashed machines still leave a usable answer.
    assert masses[2] > masses[0] - 0.15


def test_accuracy_vs_drop_rate(benchmark, graph, truth):
    """In-flight loss up to 20% shaves mass roughly linearly, not
    catastrophically: lost walkers are a random subsample."""

    def sweep():
        out = {}
        for p in (0.0, 0.05, 0.2):
            schedule = FaultSchedule(message_drop=MessageDrop(p))
            result, log = run_frogwild_with_faults(
                graph, schedule, _CONFIG, num_machines=_MACHINES
            )
            out[p] = (
                normalized_mass_captured(
                    result.estimate.vector(), truth, 100
                ),
                log.frogs_dropped_in_flight,
            )
        return out

    out = run_once(benchmark, sweep)
    assert out[0.0][1] == 0
    assert out[0.05][1] < out[0.2][1]
    assert out[0.2][0] > out[0.0][0] - 0.2
    assert out[0.05][0] > out[0.0][0] - 0.08


def test_rebirth_beats_plain_loss(benchmark, graph, truth):
    """The uniform-rebirth recovery recovers mass a plain loss forfeits."""

    def run_both():
        out = {}
        for rebirth in (True, False):
            schedule = FaultSchedule(
                crashes=(MachineCrash(step=1, machine=0, rebirth=rebirth),)
            )
            result, _ = run_frogwild_with_faults(
                graph, schedule, _CONFIG, num_machines=_MACHINES
            )
            out[rebirth] = result.estimate.total_stopped
        return out

    stopped = run_once(benchmark, run_both)
    assert stopped[True] == _CONFIG.num_frogs
    assert stopped[False] < _CONFIG.num_frogs


def test_partial_sync_mitigates_straggler(benchmark, graph):
    """With one 8x-slow machine, ps=0.2 recovers a large share of the
    wall-clock lost to the straggler at ps=1 — the partial-sync patch
    hands the slow machine proportionally less sync traffic."""

    def sweep():
        times = {}
        slowdowns = tuple(
            8.0 if m == 0 else 1.0 for m in range(_MACHINES)
        )
        for label, cost_model in (
            ("healthy", StragglerCostModel(slowdowns=(1.0,) * _MACHINES)),
            ("straggler", StragglerCostModel(slowdowns=slowdowns)),
        ):
            for ps in (1.0, 0.2):
                result = run_frogwild(
                    graph,
                    _CONFIG.with_updates(ps=ps),
                    num_machines=_MACHINES,
                    cost_model=cost_model,
                )
                times[label, ps] = result.report.total_time_s
        return times

    times = run_once(benchmark, sweep)
    # The straggler hurts at full sync.
    assert times["straggler", 1.0] > times["healthy", 1.0]
    # Partial sync claws back a large share of the straggler penalty.
    straggler_penalty_full = times["straggler", 1.0] - times["healthy", 1.0]
    straggler_penalty_partial = times["straggler", 0.2] - times["healthy", 0.2]
    assert straggler_penalty_partial < straggler_penalty_full
    assert times["straggler", 0.2] < times["straggler", 1.0]
