"""Traffic benchmark: a flash crowd with and without admission control.

The claim under test is the serving conclusion of the paper's
accuracy-for-cost knob: when an open-loop burst pushes the offered load
past capacity (rho > 1), an unprotected service's pending queue grows
without bound and tail latency follows it, while the admission
controller keeps the queue at its configured depth by walking queries
down the degradation ladder (fewer frogs, earlier stop — each degraded
answer stamped with its Theorem-1 error bound) and shedding the rest
with a typed, fail-fast :class:`~repro.errors.OverloadError`.

The whole scenario replays on a virtual clock against a calibrated
single-server queue model, so it is deterministic and takes well under
a second regardless of wall-clock noise; the headline numbers land in
``BENCH_serving.json`` via :func:`repro.experiments.record_perf`
(override the path with ``REPRO_PERF_PATH``).

Run directly: ``python -m pytest benchmarks/bench_traffic.py -q``.
``REPRO_BENCH_SMOKE=1`` shrinks the graph and burst for the CI lane;
the asserted invariants are identical at both scales.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.experiments import record_perf
from repro.graph import twitter_like
from repro.serving import RankingService, VirtualClock
from repro.traffic import (
    AdmissionController,
    BurstArrivals,
    TrafficHarness,
    TrafficWorkload,
    UserPopulation,
)

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))
N = 200 if SMOKE else 400
USERS = 200 if SMOKE else 400
FROGS = 800 if SMOKE else 2_000
ITERATIONS = 3 if SMOKE else 4
MACHINES = 4 if SMOKE else 8
MAX_PENDING = 12 if SMOKE else 16
DURATION_S = 4.0 if SMOKE else 6.0
SCALE = 40.0 if SMOKE else 25.0
BURST = (
    dict(base_qps=3.0, burst_qps=150.0, burst_start_s=1.0,
         burst_duration_s=1.0, seed=2)
    if SMOKE
    else dict(base_qps=3.0, burst_qps=300.0, burst_start_s=2.0,
              burst_duration_s=1.5, seed=2)
)

_CACHE: dict[str, object] = {}


def _build_service(graph, admission=None):
    return RankingService(
        graph,
        FrogWildConfig(num_frogs=FROGS, iterations=ITERATIONS, seed=0),
        num_machines=MACHINES,
        max_batch_size=4,
        max_delay_s=0.05,
        cache_ttl_s=0.5,
        cache_capacity=max(256, 2 * USERS),
        clock=VirtualClock(),
        admission=admission,
    )


@pytest.fixture(scope="module")
def runs():
    if "runs" not in _CACHE:
        graph = twitter_like(n=N, seed=7)
        population = UserPopulation(
            num_users=USERS,
            num_vertices=graph.num_vertices,
            seeds_per_user=2,
            seed=1,
        )
        workload = TrafficWorkload(
            population, BurstArrivals(**BURST), seed=3
        )

        open_loop = TrafficHarness(
            _build_service(graph), workload, service_time_scale=SCALE
        ).run_virtual(DURATION_S)

        service = _build_service(
            graph, admission=AdmissionController(max_pending=MAX_PENDING)
        )
        admitted = TrafficHarness(
            service, workload, service_time_scale=SCALE
        ).run_virtual(DURATION_S)
        _CACHE["runs"] = (open_loop, admitted)
    return _CACHE["runs"]


def test_overload_queue_grows_without_admission(runs):
    open_loop, _ = runs
    assert open_loop.report.queue_depth_max > 2 * MAX_PENDING
    # Monotone growth through the burst: each quarter's peak depth
    # exceeds the previous quarter's — the open-loop signature.
    start, quarter = BURST["burst_start_s"], BURST["burst_duration_s"] / 4
    peaks = [
        max(
            d
            for t, d in open_loop.depth_samples
            if start + i * quarter <= t < start + (i + 1) * quarter
        )
        for i in range(4)
    ]
    assert peaks == sorted(peaks)
    assert peaks[-1] > peaks[0]


def test_admission_bounds_queue_and_tames_tail(runs):
    open_loop, admitted = runs
    assert admitted.report.queue_depth_max <= MAX_PENDING
    p99 = admitted.report.traffic["latency_p99"]
    assert np.isfinite(p99) and p99 > 0
    assert p99 < 0.75 * open_loop.report.traffic["latency_p99"]
    summary = admitted.report.traffic
    assert summary["shed"] > 0
    assert 0.0 < summary["shed_rate"] < 1.0
    assert summary["degraded"] > 0
    assert summary["degraded_with_bound"] == summary["degraded"]
    assert summary["max_error_bound"] > 0


def test_record_headline_numbers(runs):
    open_loop, admitted = runs
    summary = admitted.report.traffic
    print(
        f"\nopen-loop depth {open_loop.report.queue_depth_max} "
        f"p99 {open_loop.report.traffic['latency_p99']:.3f}s | "
        f"admitted depth {admitted.report.queue_depth_max} "
        f"p99 {summary['latency_p99']:.3f}s "
        f"shed {summary['shed']:.0f} degraded {summary['degraded']:.0f}"
    )
    record_perf(
        "traffic-overload",
        {
            "smoke": int(SMOKE),
            "arrivals": float(admitted.report.arrivals),
            "offered_rate_qps": admitted.report.offered_rate_qps,
            "max_pending": float(MAX_PENDING),
            "no_admission_queue_depth_max": float(
                open_loop.report.queue_depth_max
            ),
            "no_admission_latency_p99_s": open_loop.report.traffic[
                "latency_p99"
            ],
            "queue_depth_max": float(admitted.report.queue_depth_max),
            "latency_p50_s": summary["latency_p50"],
            "latency_p99_s": summary["latency_p99"],
            "shed": summary["shed"],
            "shed_rate": summary["shed_rate"],
            "degraded": summary["degraded"],
            "degraded_with_bound": summary["degraded_with_bound"],
            "max_error_bound": summary["max_error_bound"],
            "cache_hit_rate": summary["cache_hit_rate"],
        },
    )
