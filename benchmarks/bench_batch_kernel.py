"""Batch-kernel microbenchmark: fused lane-major vs lane-loop superstep.

Two claims of the fused kernel rewrite are measured and asserted:

* **throughput** — advancing B populations through one concatenated
  ``(lane, vertex)`` frontier beats the pre-fusion per-lane loop
  (``kernel="lane-loop"``, kept as the seed reference implementation)
  on wall-clock, with **bit-identical results**.  The regime is the
  sharded-serving shape — many lanes with modest per-lane budgets, the
  frontier mix a shard sees when per-query budgets are split — where
  the lane loop's B redundant passes (union-view re-slicing, per-lane
  allocations, numpy dispatch) dominate.  Acceptance: fused wall-clock
  < 0.6x lane-loop at B=16.
* **compiled tier** — ``kernel="compiled"`` (Numba single-pass loops,
  int32 tables, buffer arena) returns bit-identical lanes and, where
  Numba is importable on a multi-core host, matches or beats the fused
  wall-clock at the largest B.  The ``batch-kernel-compiled`` record is
  honest about degraded hosts (``numba``/``fallback``/``cpu_count``
  fields) and carries the arena's peak-vs-demand allocation bytes.
* **shared sync** — ``sync_mode="shared"`` emits one sync record per
  (vertex, mirror) per barrier regardless of B.  On an
  identical-frontier batch (every lane walks the same frontier, so the
  union *is* each lane's frontier) the physical sync-record cut versus
  per-lane mode is therefore >= (B-1)/B at ps=0.7 — asserted exactly.
  The measured cut on a distinct-lane batch (union larger than any one
  lane's frontier) is recorded alongside as the realistic figure.

Headline numbers (per-B wall times, frog-step throughput, record cuts)
are persisted via :func:`repro.experiments.record_perf` into
``BENCH_serving.json``.

Run directly: ``python -m pytest benchmarks/bench_batch_kernel.py -q``.
Set ``REPRO_BENCH_SMOKE=1`` for the CI smoke mode: a tiny graph, every
correctness/record assertion intact, and the wall-clock bound relaxed
(tiny-graph timings on shared CI runners are noise-dominated; the 0.6x
acceptance bar is asserted in the full-size run).
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from repro.cluster import ReplicationTable, make_partitioner
from repro.core import BatchQuery, FrogWildConfig, run_frogwild_batch
from repro.core.batched import BatchedFrogWildRunner
from repro.core.kernels import HAVE_NUMBA, resolve_kernel
from repro.engine import build_cluster
from repro.experiments import record_perf
from repro.graph import rmat

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

SCALE = 10 if SMOKE else 13
EDGE_FACTOR = 8 if SMOKE else 16
MACHINES = 8 if SMOKE else 16
FROGS_PER_LANE = 100
ITERATIONS = 4 if SMOKE else 6
PS = 0.7
BATCH_SIZES = (1, 4, 16) if SMOKE else (1, 4, 16, 64)
# Full-size acceptance bar; smoke keeps a sanity bound only.
RATIO_BOUND_B16 = 0.9 if SMOKE else 0.6

_CACHE: dict[str, object] = {}


@pytest.fixture(scope="module")
def cluster():
    if "cluster" not in _CACHE:
        graph = rmat(scale=SCALE, edge_factor=EDGE_FACTOR, seed=7)
        partition = make_partitioner("random", 0).partition(graph, MACHINES)
        replication = ReplicationTable(graph, partition, seed=0)
        _CACHE["cluster"] = (graph, replication)
    return _CACHE["cluster"]


def _state(graph, replication):
    return build_cluster(graph, MACHINES, seed=0, replication=replication)


def _timed(fn, repeats):
    """Best-of-``repeats``: the noise-robust wall-clock estimator."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def test_fused_kernel_beats_lane_loop(cluster):
    """Superstep throughput at B in {1, 4, 16, 64}: the fused kernel
    must return bit-identical lanes and, at B=16, run in < 0.6x the
    lane-loop wall-clock (the seed implementation this PR replaced)."""
    graph, replication = cluster
    config = FrogWildConfig(
        num_frogs=FROGS_PER_LANE, iterations=ITERATIONS, ps=PS, seed=0
    )
    metrics: dict[str, float] = {
        "frogs_per_lane": FROGS_PER_LANE,
        "iterations": ITERATIONS,
        "machines": MACHINES,
        "rmat_scale": SCALE,
        "smoke": float(SMOKE),
    }
    ratios: dict[int, float] = {}
    for batch_size in BATCH_SIZES:
        queries = [BatchQuery(seed=s) for s in range(batch_size)]

        def run(kernel):
            return run_frogwild_batch(
                graph,
                queries,
                config,
                state=_state(graph, replication),
                kernel=kernel,
            )

        run("fused"), run("lane-loop")  # warm both paths
        fused, fused_s = _timed(lambda: run("fused"), repeats=3)
        golden, lane_s = _timed(lambda: run("lane-loop"), repeats=3)
        for lane_fused, lane_golden in zip(fused.results, golden.results):
            np.testing.assert_array_equal(
                lane_fused.estimate.counts, lane_golden.estimate.counts
            )
        assert fused.report.network_bytes == golden.report.network_bytes
        frog_steps = sum(
            lane.report.extra["num_frogs"] * lane.report.supersteps
            for lane in fused.results
        )
        ratios[batch_size] = fused_s / lane_s
        metrics[f"fused_s_b{batch_size}"] = fused_s
        metrics[f"lane_loop_s_b{batch_size}"] = lane_s
        metrics[f"wall_clock_ratio_b{batch_size}"] = ratios[batch_size]
        metrics[f"frog_steps_per_s_b{batch_size}"] = frog_steps / fused_s
        print(
            f"\nB={batch_size:3d}  fused {fused_s * 1e3:7.2f} ms  "
            f"lane-loop {lane_s * 1e3:7.2f} ms  "
            f"ratio {ratios[batch_size]:.3f}  "
            f"({frog_steps / fused_s / 1e6:.2f}M frog-steps/s fused)"
        )
    record_perf("batch-kernel-throughput", metrics)
    assert ratios[16] < RATIO_BOUND_B16, (
        f"fused kernel took {ratios[16]:.3f}x of the lane-loop at B=16; "
        f"the fusion contract is < {RATIO_BOUND_B16}x"
    )


def test_compiled_kernel_tier(cluster):
    """Compiled tier vs the pinned fused kernel, honestly recorded.

    Always asserts bit-identity (under the Numba-less fallback that is
    trivially fused-vs-fused, and the record says so: ``numba=0``,
    ``fallback=1``) and always persists a ``batch-kernel-compiled``
    record with the host's true ``cpu_count`` plus the arena's
    allocation accounting — ``arena_scratch_peak_bytes`` (the reused
    high-water mark) against ``arena_alloc_demand_bytes`` (what
    per-pass ``np.empty`` calls would have allocated before the arena).
    The speed bar (compiled wall-clock <= fused at the largest B) is
    enforced only where it is meaningful: Numba importable, multi-core
    host, full-size run."""
    graph, replication = cluster
    config = FrogWildConfig(
        num_frogs=FROGS_PER_LANE, iterations=ITERATIONS, ps=PS, seed=0
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        resolved = resolve_kernel("compiled")
    cpu_count = os.cpu_count() or 1
    metrics: dict[str, float] = {
        "frogs_per_lane": FROGS_PER_LANE,
        "iterations": ITERATIONS,
        "machines": MACHINES,
        "rmat_scale": SCALE,
        "numba": float(HAVE_NUMBA),
        "fallback": float(resolved != "compiled"),
        "cpu_count": float(cpu_count),
        "smoke": float(SMOKE),
    }
    compiled_sizes = (4, 16) if SMOKE else (16, 64)
    speedups: dict[int, float] = {}
    for batch_size in compiled_sizes:
        queries = [BatchQuery(seed=s) for s in range(batch_size)]

        def run(kernel):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                return run_frogwild_batch(
                    graph,
                    queries,
                    config,
                    state=_state(graph, replication),
                    kernel=kernel,
                )

        run("compiled"), run("fused")  # warm both paths (and the jit)
        compiled, compiled_s = _timed(lambda: run("compiled"), repeats=3)
        fused, fused_s = _timed(lambda: run("fused"), repeats=3)
        for lane_c, lane_f in zip(compiled.results, fused.results):
            np.testing.assert_array_equal(
                lane_c.estimate.counts, lane_f.estimate.counts
            )
        assert compiled.report.network_bytes == fused.report.network_bytes
        frog_steps = sum(
            lane.report.extra["num_frogs"] * lane.report.supersteps
            for lane in fused.results
        )
        speedups[batch_size] = fused_s / compiled_s
        metrics[f"compiled_s_b{batch_size}"] = compiled_s
        metrics[f"fused_s_b{batch_size}"] = fused_s
        metrics[f"speedup_b{batch_size}"] = speedups[batch_size]
        metrics[f"frog_steps_per_s_b{batch_size}"] = frog_steps / compiled_s
        print(
            f"\nB={batch_size:3d}  compiled {compiled_s * 1e3:7.2f} ms  "
            f"fused {fused_s * 1e3:7.2f} ms  "
            f"speedup {speedups[batch_size]:.3f}x  "
            f"({frog_steps / compiled_s / 1e6:.2f}M frog-steps/s compiled)"
        )
    # Arena accounting at the largest B.  The byte tallies are
    # deterministic and jit-independent, so a Numba-less host still
    # records them by running the compiled passes in pure Python
    # (timings above stay on the honest fallback path).
    force_token = os.environ.get("REPRO_COMPILED_FORCE")
    os.environ["REPRO_COMPILED_FORCE"] = "python"
    try:
        queries = [BatchQuery(seed=s) for s in range(compiled_sizes[-1])]
        runner = BatchedFrogWildRunner(
            _state(graph, replication), config, queries, kernel="compiled"
        )
        runner.run()
        arena_stats = runner._passes.arena.stats()
    finally:
        if force_token is None:
            del os.environ["REPRO_COMPILED_FORCE"]
        else:
            os.environ["REPRO_COMPILED_FORCE"] = force_token
    for key in ("capacity_bytes", "scratch_peak_bytes",
                "alloc_demand_bytes"):
        metrics[f"arena_{key}"] = float(arena_stats[key])
    record_perf("batch-kernel-compiled", metrics)
    if HAVE_NUMBA and resolved == "compiled" and cpu_count >= 2 and not SMOKE:
        top = compiled_sizes[-1]
        assert speedups[top] >= 1.0, (
            f"compiled kernel took {1 / speedups[top]:.3f}x of the fused "
            f"wall-clock at B={top}; the compiled tier must not lose to "
            "the numpy kernel where Numba is available"
        )


def test_shared_sync_cuts_physical_records(cluster):
    """Shared sync at ps=0.7: one record per (vertex, mirror) per
    barrier, independent of B.

    The cut is measured coin-exactly: the batch report carries both the
    physical sync records and the *demand* — what per-lane accounting
    of the very same coin outcomes would have billed — so the
    comparison has no cross-stream sampling noise.  On an
    identical-frontier batch (every lane walks the same frontier) the
    demand is exactly B x physical, so the cut is >= (B-1)/B; a
    distinct-lane batch (union frontier larger than any single lane's)
    is recorded as the realistic figure.  B-independence is also pinned
    exactly: an identical-frontier batch of 16 emits the same record
    total as the batch of 1."""
    graph, replication = cluster
    batch_size = 16
    # Saturating budget: the frontier covers (nearly) every vertex, so
    # identical-seed lanes make the union equal each lane's frontier.
    config = FrogWildConfig(
        num_frogs=4 * graph.num_vertices,
        iterations=3,
        ps=PS,
        seed=0,
        sync_mode="shared",
    )

    def run(queries):
        return run_frogwild_batch(
            graph, queries, config, state=_state(graph, replication)
        ).report.extra

    def cut_of(extra):
        return 1.0 - extra["sync_records"] / extra["sync_demand_records"]

    identical = run([BatchQuery(seed=7) for _ in range(batch_size)])
    solo = run([BatchQuery(seed=7)])
    distinct = run([BatchQuery(seed=100 + s) for s in range(batch_size)])
    identical_cut = cut_of(identical)
    distinct_cut = cut_of(distinct)

    print(
        f"\nidentical-frontier cut {identical_cut:.5f} "
        f"(bound {(batch_size - 1) / batch_size:.5f}); "
        f"distinct-lane cut {distinct_cut:.5f}; "
        f"records B=16 {identical['sync_records']:.0f} "
        f"== B=1 {solo['sync_records']:.0f}"
    )
    record_perf(
        "batch-kernel-shared-sync",
        {
            "batch_size": batch_size,
            "ps": PS,
            "shared_sync_records": identical["sync_records"],
            "per_lane_demand_records": identical["sync_demand_records"],
            "identical_frontier_cut": identical_cut,
            "distinct_lane_cut": distinct_cut,
            "smoke": float(SMOKE),
        },
    )
    # One record per (vertex, mirror) per barrier, independent of B:
    # the identical-frontier batch bills exactly the B=1 totals.
    assert identical["sync_records"] == solo["sync_records"]
    assert identical["repair_records"] == solo["repair_records"]
    assert identical_cut >= (batch_size - 1) / batch_size, (
        f"shared sync cut only {identical_cut:.5f} of the per-lane sync "
        f"billing on an identical-frontier batch of {batch_size}; the "
        "one-record-per-(vertex, mirror) contract guarantees "
        f">= {(batch_size - 1) / batch_size:.5f}"
    )
    # Distinct lanes overlap heavily on a saturating budget too: the
    # cut must stay deep even when the union exceeds single frontiers.
    assert distinct_cut >= 0.5


def test_wire_dedupe_cuts_frog_records(cluster):
    """Wire dedupe is free accuracy-wise (bit-identical estimates) and
    collapses cross-lane duplicate (host, destination) records; the
    per-lane attribution always sums back to the physical count."""
    graph, replication = cluster
    config = FrogWildConfig(
        num_frogs=4 * graph.num_vertices, iterations=3, ps=PS, seed=0
    )
    queries = [BatchQuery(seed=100 + s) for s in range(8)]

    def run(**updates):
        return run_frogwild_batch(
            graph,
            queries,
            config.with_updates(**updates),
            state=_state(graph, replication),
        )

    plain = run()
    deduped = run(wire_dedupe=True)
    for lane_plain, lane_deduped in zip(plain.results, deduped.results):
        np.testing.assert_array_equal(
            lane_plain.estimate.counts, lane_deduped.estimate.counts
        )
    attributed = sum(
        lane.ledger.network_records for lane in deduped.results
    )
    physical = sum(deduped.report.extra[key] for key in (
        "sync_records", "repair_records", "frog_records"
    ))
    assert attributed == physical
    dedupe_ratio = (
        deduped.report.extra["frog_records"]
        / plain.report.extra["frog_records"]
    )
    print(f"\nfrog-record dedupe ratio {dedupe_ratio:.4f}")
    record_perf(
        "batch-kernel-wire-dedupe",
        {
            "batch_size": len(queries),
            "plain_frog_records": plain.report.extra["frog_records"],
            "deduped_frog_records": deduped.report.extra["frog_records"],
            "dedupe_ratio": dedupe_ratio,
            "smoke": float(SMOKE),
        },
    )
    # A saturating workload overlaps lanes heavily; dedupe must bite.
    assert dedupe_ratio < 0.75
