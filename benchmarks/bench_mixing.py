"""Mixing-theory validation: why 3-5 supersteps are enough.

The paper truncates every walk at t = 3-5 supersteps and leans on
Lemma 14 (geometric chi-squared contraction at rate 1 - p_T) to bound
the damage.  This bench checks the spectral story end to end on the
calibrated workloads:

* |lambda_2(Q)| <= 1 - p_T (the Haveliwala-Kamvar fact behind Lemma 14),
* the empirical chi2 curve sits below the Lemma 14 envelope at every t,
* the empirical TV mixing time at the paper's operating accuracy lands
  inside the paper's 3-5 iteration range,
* the Lemma 17 mixing-loss bound is *conservative*: actual mass lost to
  truncation is far below the analytic ceiling.
"""

import pytest

from conftest import run_once
from repro.core import FrogWildConfig, run_frogwild
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank
from repro.theory import (
    chi2_mixing_bound,
    chi2_mixing_curve,
    empirical_mixing_time,
    mixing_loss_bound,
    second_eigenvalue,
    tv_mixing_curve,
)

_CACHE = {}


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        # Small enough for dense eigendecomposition, same generator
        # family as the figure workloads.
        _CACHE["graph"] = twitter_like(n=1_500, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


def test_spectral_gap_bound(benchmark, graph):
    """|lambda_2(Q)| <= 1 - p_T, with real slack on power-law graphs."""

    def compute():
        return second_eigenvalue(graph, p_teleport=0.15)

    lam2 = run_once(benchmark, compute)
    assert lam2 <= 0.85 + 1e-9
    assert lam2 > 0.0


def test_chi2_curve_below_lemma14(benchmark, graph):
    """Empirical chi2(pi_t; pi) under the analytic envelope for all t."""

    def compute():
        return chi2_mixing_curve(graph, 10)

    curve = run_once(benchmark, compute)
    for t, value in enumerate(curve):
        assert value <= chi2_mixing_bound(0.15, t) + 1e-9


def test_mixing_time_in_paper_range(benchmark, graph):
    """TV(pi_t, pi) <= 5% within the paper's 3-5 supersteps."""

    def compute():
        return empirical_mixing_time(graph, epsilon=0.05)

    t_mix = run_once(benchmark, compute)
    assert t_mix <= 5


def test_lemma17_is_conservative(benchmark, graph, truth):
    """Actual truncation loss at t=4 is far below the Lemma 17 bound
    (the bound must hold, and its slack explains why tiny t works)."""

    def run():
        result = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=60_000, iterations=4, seed=0),
            num_machines=8,
        )
        return normalized_mass_captured(
            result.estimate.vector(), truth, 100
        )

    captured = run_once(benchmark, run)
    bound = mixing_loss_bound(0.15, 4)
    actual_loss = 1.0 - captured
    assert actual_loss <= bound
    assert actual_loss < bound / 2


def test_tv_curve_geometric_tail(benchmark, graph):
    """Past the first step the TV curve contracts at least at the
    spectral rate (1 - p_T) per step."""

    def compute():
        return tv_mixing_curve(graph, 8)

    curve = run_once(benchmark, compute)
    for earlier, later in zip(curve[1:], curve[2:]):
        if earlier > 1e-12:
            assert later <= earlier * 0.85 + 1e-12
