"""Process-pool backend benchmark: true multi-core scale-out.

The claim under test is the tentpole behind
:class:`~repro.serving.ProcessPoolBackend`: with the graph's CSR
arrays and every shard's replication table in shared memory, one OS
process per shard executes the same sharded batch the in-process
:class:`~repro.serving.ShardedBackend` simulates — **bitwise
identically** — while actually occupying multiple cores.  On a
machine with >= 4 cores, 4 worker processes must answer the batch in
at most half the wall-clock of the single-process
:class:`~repro.serving.LocalBackend` (>= 2x speedup); the golden
top-k must be unchanged and the measured transport bytes must
reconcile with the simulated :class:`~repro.cluster.MessageSizeModel`
pricing.

Wall-clock honesty: the speedup is *recorded* unconditionally (with
the host's ``cpu_count`` alongside, so a 1-core CI container's
number is interpretable) but *asserted* only where it is physically
achievable — a real-run host with >= 4 cores.  Smoke mode
(``REPRO_BENCH_SMOKE=1``) shrinks the workload and asserts the
scale-out contract instead: every worker participates, results are
bitwise equal to the sharded reference, and the transport reconciles.

Run directly: ``python -m pytest benchmarks/bench_process_backend.py -q``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.experiments import record_perf
from repro.graph import rmat
from repro.serving import (
    LocalBackend,
    ProcessPoolBackend,
    RankingQuery,
    ShardedBackend,
)

SMOKE = bool(int(os.environ.get("REPRO_BENCH_SMOKE", "0")))

WORKERS = 4
MACHINES = 8
SCALE = 10 if SMOKE else 13
CONFIG = FrogWildConfig(
    num_frogs=4_000 if SMOKE else 60_000,
    iterations=3 if SMOKE else 6,
    ps=0.8,
    seed=0,
)
BATCH = 4 if SMOKE else 8

_CACHE: dict[str, object] = {}


@pytest.fixture(scope="module")
def workload():
    if "workload" not in _CACHE:
        graph = rmat(scale=SCALE, edge_factor=16, seed=7)
        rng = np.random.default_rng(123)
        queries = [
            RankingQuery(
                seeds=tuple(
                    np.sort(
                        rng.choice(graph.num_vertices, size=3, replace=False)
                    ).tolist()
                ),
                k=10,
            )
            for _ in range(BATCH)
        ]
        _CACHE["workload"] = (graph, queries)
    return _CACHE["workload"]


def _overlap(a: np.ndarray, b: np.ndarray) -> float:
    return len(set(a.tolist()) & set(b.tolist())) / len(a)


def test_process_backend_scaleout(workload):
    graph, queries = workload
    cpu_count = os.cpu_count() or 1

    local = LocalBackend(graph, num_machines=MACHINES, seed=0)
    sharded = ShardedBackend(
        graph, num_shards=WORKERS, num_machines=MACHINES, seed=0
    )
    sharded_outcome = sharded.run_batch(CONFIG, queries)

    start = time.perf_counter()
    local_outcome = local.run_batch(CONFIG, queries)
    local_s = time.perf_counter() - start

    with ProcessPoolBackend(
        graph, num_shards=WORKERS, num_machines=MACHINES, seed=0
    ) as backend:
        backend.run_batch(  # warm-up: first batch pays worker spin-up
            FrogWildConfig(num_frogs=WORKERS, iterations=1, seed=0),
            queries[:1],
        )
        start = time.perf_counter()
        process_outcome = backend.run_batch(CONFIG, queries)
        process_s = time.perf_counter() - start
        transport = backend.transport_summary()

    # Scale-out contract: every worker ran a share of every batch.
    assert len(process_outcome.shards) == WORKERS

    # Golden top-k unchanged: the process pool is bitwise the sharded
    # backend (same tables, shares, per-shard seeds), and its top-k
    # overlaps the single-process baseline at golden tolerance.
    overlaps = []
    for process_lane, sharded_lane, local_lane in zip(
        process_outcome.lanes, sharded_outcome.lanes, local_outcome.lanes
    ):
        np.testing.assert_array_equal(
            process_lane.estimate.counts, sharded_lane.estimate.counts
        )
        overlaps.append(
            _overlap(
                process_lane.estimate.top_k(10),
                local_lane.estimate.top_k(10),
            )
        )
    topk_overlap = float(np.mean(overlaps))
    assert topk_overlap >= 0.6

    # Measured transport bytes reconcile with the simulated pricing.
    assert transport["reconciles"] == 1.0
    assert transport["sent_measured_bytes"] > 0

    speedup = local_s / process_s if process_s > 0 else float("inf")
    print(
        f"\nlocal {local_s:.3f}s  process({WORKERS} workers) "
        f"{process_s:.3f}s  speedup {speedup:.2f}x  "
        f"(host cpu_count={cpu_count})  topk overlap {topk_overlap:.2f}"
    )
    record_perf(
        "process-backend-scaleout",
        {
            "local_s": local_s,
            "process_s": process_s,
            "speedup": speedup,
            "workers": WORKERS,
            "cpu_count": cpu_count,
            "batch_size": BATCH,
            "num_frogs": CONFIG.num_frogs,
            "golden_topk_bitwise_vs_sharded": 1.0,
            "topk_overlap_vs_local": topk_overlap,
            "transport_reconciles": transport["reconciles"],
            "transport_measured_bytes": transport["sent_measured_bytes"],
            "smoke": float(SMOKE),
        },
    )

    # The >= 2x bar needs >= 4 real cores and the full workload; on a
    # smaller host the honest number is recorded above, not asserted.
    if not SMOKE and cpu_count >= WORKERS:
        assert speedup >= 2.0, (
            f"{WORKERS} workers achieved only {speedup:.2f}x over "
            f"LocalBackend ({process_s:.3f}s vs {local_s:.3f}s) on a "
            f"{cpu_count}-core host; the scale-out contract is >= 2x"
        )
