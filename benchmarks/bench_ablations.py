"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three implementation decisions in the FrogWild stack have paper-mandated
alternatives; each ablation runs both sides on the calibrated Twitter
workload and checks the documented trade-off:

* **Scatter mode** — frog-conserving multinomial (the paper's actual
  implementation, Section 2.2 note) vs the pseudocode's per-edge
  binomial (conserves frogs only in expectation).
* **Erasure model** — "At Least One Out-Edge Per Node" (Example 10,
  used in the paper's experiments) vs "Independent Erasures"
  (Example 9, which strands walkers at low ps).
* **Ingress** — random vertex-cut vs PowerGraph's oblivious greedy
  (lower replication factor → less sync traffic).
"""

import pytest

from conftest import run_once
from repro.cluster import ObliviousVertexCut, RandomVertexCut, ReplicationTable
from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CACHE = {}


@pytest.fixture(scope="module")
def graph():
    if "graph" not in _CACHE:
        _CACHE["graph"] = twitter_like(n=20_000, seed=5)
    return _CACHE["graph"]


@pytest.fixture(scope="module")
def truth(graph):
    if "truth" not in _CACHE:
        _CACHE["truth"] = exact_pagerank(graph)
    return _CACHE["truth"]


def _run(graph, **overrides):
    defaults = dict(num_frogs=12_000, iterations=4, ps=0.5, seed=0)
    defaults.update(overrides)
    return run_frogwild(
        graph, FrogWildConfig(**defaults), num_machines=16
    )


def test_ablation_scatter_mode(benchmark, graph, truth):
    """Binomial scatter loses/creates frogs; multinomial conserves.

    Both must land comparable accuracy — the marginal hop law is the
    same — but only multinomial keeps the estimator denominator exact.
    """

    def run_both():
        return (
            _run(graph, scatter_mode="multinomial"),
            _run(graph, scatter_mode="binomial"),
        )

    multi, bino = run_once(benchmark, run_both)
    assert multi.estimate.total_stopped == 12_000
    assert bino.estimate.total_stopped != 12_000  # a.s. for this scale
    assert 0.5 * 12_000 < bino.estimate.total_stopped < 2.0 * 12_000

    mass_multi = normalized_mass_captured(
        multi.estimate.distribution(), truth, 100
    )
    mass_bino = normalized_mass_captured(
        bino.estimate.distribution(), truth, 100
    )
    assert mass_multi > 0.9
    assert abs(mass_multi - mass_bino) < 0.1


def test_ablation_erasure_model(benchmark, graph, truth):
    """At low ps, Independent Erasures strand walkers each step, slowing
    mixing; the At-Least-One repair keeps every walker moving at a tiny
    extra sync cost."""

    def run_both():
        return (
            _run(graph, ps=0.05, erasure_model="at-least-one"),
            _run(graph, ps=0.05, erasure_model="independent"),
        )

    repaired, independent = run_once(benchmark, run_both)
    # The repair pays extra forced syncs: strictly more network.
    assert repaired.report.network_bytes > independent.report.network_bytes
    # Both conserve frogs (stranded walkers idle, not vanish).
    assert repaired.estimate.total_stopped == 12_000
    assert independent.estimate.total_stopped == 12_000
    mass_rep = normalized_mass_captured(
        repaired.estimate.vector(), truth, 100
    )
    mass_ind = normalized_mass_captured(
        independent.estimate.vector(), truth, 100
    )
    # Repair cannot hurt accuracy materially at equal step count.
    assert mass_rep > mass_ind - 0.03


def test_ablation_partitioner_replication(benchmark, graph):
    """Oblivious ingress lowers replication factor, hence sync traffic."""

    def build_tables():
        random_part = RandomVertexCut(seed=0).partition(graph, 16)
        greedy_part = ObliviousVertexCut(seed=0).partition(graph, 16)
        return (
            ReplicationTable(graph, random_part),
            ReplicationTable(graph, greedy_part),
        )

    random_table, greedy_table = run_once(benchmark, build_tables)
    rf_random = random_table.replication_factor()
    rf_greedy = greedy_table.replication_factor()
    assert rf_greedy < rf_random * 0.8, (
        f"greedy {rf_greedy:.2f} vs random {rf_random:.2f}"
    )


def test_ablation_partitioner_traffic(benchmark, graph):
    """Lower replication translates into less FrogWild sync traffic."""

    def run_both():
        results = {}
        for name in ("random", "oblivious"):
            state = build_cluster(graph, 16, partitioner=name, seed=0)
            results[name] = run_frogwild(
                graph,
                FrogWildConfig(num_frogs=12_000, iterations=4, seed=0),
                state=state,
            )
        return results

    results = run_once(benchmark, run_both)
    assert (
        results["oblivious"].report.network_bytes
        < results["random"].report.network_bytes
    )


def test_ablation_teleport_probability(benchmark, graph, truth):
    """p_T controls mixing-vs-horizon: the paper's 0.15 beats extremes
    at a fixed 4-iteration budget or at least is never dominated."""

    def run_sweep():
        return {
            pt: normalized_mass_captured(
                _run(graph, ps=1.0, p_teleport=pt).estimate.vector(),
                truth,
                100,
            )
            for pt in (0.05, 0.15, 0.5)
        }

    masses = run_once(benchmark, run_sweep)
    # Huge p_T kills the walk before it can concentrate on hubs.
    assert masses[0.15] > masses[0.5]
    # All settings stay in a sane band.
    assert all(m > 0.7 for m in masses.values())
