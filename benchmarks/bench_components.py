"""Micro-benchmarks of the library's hot components.

These use pytest-benchmark's statistical repetition (unlike the figure
reproductions, which run once): they track the throughput of the pieces
a user pays for repeatedly — graph construction, ingress, one FrogWild
superstep cycle, one engine PageRank iteration, and the exact solver.
"""

import pytest

from repro.cluster import ObliviousVertexCut, RandomVertexCut
from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster
from repro.graph import twitter_like
from repro.pagerank import exact_pagerank, graphlab_pagerank


@pytest.fixture(scope="module")
def graph():
    return twitter_like(n=10_000, seed=3)


def test_graph_generation(benchmark):
    result = benchmark(lambda: twitter_like(n=5_000, seed=1))
    assert result.num_vertices == 5_000


def test_random_vertex_cut(benchmark, graph):
    cutter = RandomVertexCut(seed=0)
    partition = benchmark(lambda: cutter.partition(graph, 16))
    assert partition.edge_machine.size == graph.num_edges


def test_oblivious_vertex_cut(benchmark, graph):
    cutter = ObliviousVertexCut(seed=0)
    partition = benchmark.pedantic(
        lambda: cutter.partition(graph, 16), rounds=1, iterations=1
    )
    assert partition.edge_machine.size == graph.num_edges


def test_cluster_build(benchmark, graph):
    state = benchmark(lambda: build_cluster(graph, num_machines=16, seed=0))
    assert state.num_machines == 16


def test_exact_pagerank(benchmark, graph):
    pi = benchmark(lambda: exact_pagerank(graph))
    assert abs(pi.sum() - 1.0) < 1e-9


def test_frogwild_run(benchmark, graph):
    config = FrogWildConfig(num_frogs=8_000, iterations=4, ps=0.7, seed=0)
    result = benchmark(
        lambda: run_frogwild(graph, config, num_machines=16)
    )
    assert result.estimate.total_stopped == 8_000


def test_graphlab_pr_two_iterations(benchmark, graph):
    result = benchmark(
        lambda: graphlab_pagerank(graph, num_machines=16, iterations=2)
    )
    assert result.report.supersteps == 2
