"""Theory validation benchmarks (Theorems 1-2 at workload scale).

Not a paper figure, but the analytical half of the paper's contribution:
these verify, on the calibrated workloads, that the Theorem 2 bound on
the intersection probability holds and that the Theorem 1 guarantee is
met by the running system.
"""

from conftest import run_once
from repro.core import FrogWildConfig, run_frogwild
from repro.metrics import normalized_mass_captured, optimal_mass
from repro.theory import (
    empirical_intersection_probability,
    intersection_probability_bound,
    theorem1_epsilon,
)

_CACHE = {}


def test_theorem2_bound_at_scale(benchmark, tw_workload):
    graph = tw_workload.graph
    truth = tw_workload.truth
    t = 4

    def measure():
        return empirical_intersection_probability(
            graph, t, trials=4000, seed=0
        )

    observed = run_once(benchmark, measure)
    bound = intersection_probability_bound(
        graph.num_vertices, t, float(truth.max())
    )
    assert observed <= bound + 0.01, f"p_meet {observed:.4f} > bound {bound:.4f}"


def test_theorem1_guarantee_at_scale(benchmark, tw_workload):
    graph = tw_workload.graph
    truth = tw_workload.truth
    k, t, frogs, ps = 100, 4, tw_workload.default_frogs, 0.7

    def run():
        return run_frogwild(
            graph,
            FrogWildConfig(num_frogs=frogs, iterations=t, ps=ps, seed=0),
            num_machines=16,
        )

    result = run_once(benchmark, run)
    mu_opt = optimal_mass(truth, k)
    captured = mu_opt * normalized_mass_captured(
        result.estimate.vector(), truth, k
    )
    p_meet = intersection_probability_bound(
        graph.num_vertices, t, float(truth.max())
    )
    eps = theorem1_epsilon(k, 0.1, frogs, ps, t, p_meet)
    assert captured >= mu_opt - eps, (
        f"captured {captured:.4f} < mu_k - eps = {mu_opt - eps:.4f}"
    )
