"""Serving-layer benchmark: batched execution vs sequential queries.

The claim under test is the architectural one behind ``repro/serving``:
B personalized top-k queries coalesced into one
:class:`~repro.core.batched.BatchedFrogWildRunner` traversal answer in
well under half the wall-clock of B sequential
:func:`~repro.core.run_personalized_frogwild` calls — while returning
**bit-identical** per-query estimates, so the speedup is pure
amortization, not approximation.

Two baselines are measured on a Graph500-style RMAT workload:

* the repo's repeated-run idiom (cf. ``repro.core.adaptive``): the
  ingress *partition* is shared, per-run replication tables are rebuilt
  — this is what B independent ``run_personalized_frogwild`` calls cost
  today, and the < 0.5x acceptance bar is asserted against it;
* a stricter baseline that also shares the replication tables (the
  serving layer's own trick applied to the sequential path), against
  which the batched runner must still win.

Run directly: ``python -m pytest benchmarks/bench_serving.py -q``.

The headline numbers (wall times, amortization ratio) are persisted as
machine-readable records via :func:`repro.experiments.record_perf`
(``BENCH_serving.json``; override with ``REPRO_PERF_PATH``) so future
changes have a trajectory to compare against, not just a green check.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import (
    FrogWildConfig,
    run_personalized_frogwild,
    run_personalized_frogwild_batch,
)
from repro.cluster import ReplicationTable, make_partitioner
from repro.engine import build_cluster
from repro.experiments import record_perf
from repro.graph import rmat
from repro.serving import RankingQuery, RankingService, VirtualClock

MACHINES = 16
BATCH = 16
CONFIG = FrogWildConfig(num_frogs=3_000, iterations=5, ps=0.8, seed=0)

_CACHE: dict[str, object] = {}


@pytest.fixture(scope="module")
def workload():
    if "workload" not in _CACHE:
        graph = rmat(scale=13, edge_factor=16, seed=7)
        partition = make_partitioner("random", 0).partition(graph, MACHINES)
        replication = ReplicationTable(graph, partition, seed=0)
        rng = np.random.default_rng(123)
        seed_sets = [
            np.sort(rng.choice(graph.num_vertices, size=3, replace=False))
            for _ in range(BATCH)
        ]
        _CACHE["workload"] = (graph, partition, replication, seed_sets)
    return _CACHE["workload"]


def _timed(fn, repeats: int = 1):
    """Best-of-``repeats`` wall-clock: the minimum is the standard
    noise-robust estimator, so a single noisy-neighbor stall on a
    shared CI runner cannot flip a ratio assertion."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def _run_sequential(graph, seed_sets, state_factory):
    results = []
    for seeds in seed_sets:
        results.append(
            run_personalized_frogwild(
                graph, seeds, CONFIG, state=state_factory()
            )
        )
    return results


def test_batched_beats_sequential_wall_clock(workload):
    """B=16 batched < 0.5x the wall-clock of 16 sequential calls, with
    bit-identical per-query estimates."""
    graph, partition, replication, seed_sets = workload

    # Warm both paths (allocator, caches) before timing.
    run_personalized_frogwild_batch(
        graph,
        seed_sets[:2],
        CONFIG,
        state=build_cluster(
            graph, MACHINES, seed=0, replication=replication
        ),
    )

    sequential, sequential_s = _timed(
        lambda: _run_sequential(
            graph,
            seed_sets,
            lambda: build_cluster(graph, MACHINES, seed=0, partition=partition),
        ),
        repeats=2,
    )
    batched, batched_s = _timed(
        lambda: run_personalized_frogwild_batch(
            graph,
            seed_sets,
            CONFIG,
            state=build_cluster(
                graph, MACHINES, seed=0, replication=replication
            ),
        ),
        repeats=3,
    )

    for single, lane in zip(sequential, batched.results):
        np.testing.assert_array_equal(
            single.estimate.counts, lane.estimate.counts
        )

    ratio = batched_s / sequential_s
    print(
        f"\nsequential {sequential_s:.3f}s  batched {batched_s:.3f}s  "
        f"ratio {ratio:.3f}"
    )
    record_perf(
        "serving-batched-vs-sequential",
        {
            "sequential_s": sequential_s,
            "batched_s": batched_s,
            "wall_clock_ratio": ratio,
            "batch_size": BATCH,
        },
    )
    assert ratio < 0.5, (
        f"batched execution took {ratio:.2f}x of sequential "
        f"({batched_s:.3f}s vs {sequential_s:.3f}s); the amortization "
        "contract is < 0.5x"
    )


def test_batched_beats_fully_shared_sequential(workload):
    """Even when the sequential path also reuses the replication tables
    (the serving layer's own ingress trick), one shared traversal still
    wins on wall-clock."""
    graph, _, replication, seed_sets = workload

    sequential, sequential_s = _timed(
        lambda: _run_sequential(
            graph,
            seed_sets,
            lambda: build_cluster(
                graph, MACHINES, seed=0, replication=replication
            ),
        ),
        repeats=2,
    )
    batched, batched_s = _timed(
        lambda: run_personalized_frogwild_batch(
            graph,
            seed_sets,
            CONFIG,
            state=build_cluster(
                graph, MACHINES, seed=0, replication=replication
            ),
        ),
        repeats=3,
    )
    for single, lane in zip(sequential, batched.results):
        np.testing.assert_array_equal(
            single.estimate.counts, lane.estimate.counts
        )
    ratio = batched_s / sequential_s
    print(
        f"\nfully-shared sequential {sequential_s:.3f}s  "
        f"batched {batched_s:.3f}s  ratio {ratio:.3f}"
    )
    assert ratio < 0.85


def test_batch_amortizes_simulated_network(workload):
    """The simulated-cluster accounting agrees with the wall-clock
    story: the batch moves fewer wire bytes than its populations priced
    standalone, because sync and frog records share per-pair messages."""
    graph, _, replication, seed_sets = workload
    batched = run_personalized_frogwild_batch(
        graph,
        seed_sets,
        CONFIG,
        state=build_cluster(graph, MACHINES, seed=0, replication=replication),
    )
    attributed = batched.attributed_network_bytes()
    assert batched.report.network_bytes < attributed
    print(
        f"\nshared {batched.report.network_bytes:,} bytes vs "
        f"attributed {attributed:,} bytes "
        f"(amortization {batched.amortization_ratio():.3f})"
    )
    record_perf(
        "serving-network-amortization",
        {
            "shared_network_bytes": batched.report.network_bytes,
            "attributed_network_bytes": attributed,
            "amortization_ratio": batched.amortization_ratio(),
        },
    )


def test_trickle_workload_still_batches_under_deadline(workload):
    """A trickle workload — one query per 1 ms tick — still forms
    batches of >= 4 under a 5 ms deadline scheduler, driven entirely by
    a virtual clock (no sleeps, no background thread)."""
    graph, _, _, _ = workload
    clock = VirtualClock()
    service = RankingService(
        graph,
        CONFIG,
        num_machines=MACHINES,
        max_batch_size=BATCH,
        max_delay_s=0.005,
        clock=clock,
    )
    rng = np.random.default_rng(77)
    futures = []
    for _ in range(12):
        seeds = rng.choice(graph.num_vertices, size=3, replace=False)
        futures.append(service.submit(np.sort(seeds).tolist(), k=10))
        clock.advance(0.001)
        service.pump()
    clock.advance(0.005)
    service.pump()
    service.flush()
    assert all(future.done() for future in futures)
    sizes = service.stats.batch_sizes
    print(f"\ntrickle batch sizes {sizes} "
          f"({service.scheduler.stats.deadline_dispatches} deadline "
          f"dispatches)")
    assert service.scheduler.stats.deadline_dispatches >= 1
    # The deadline scheduler must beat one-query-per-arrival batching.
    assert max(sizes) >= 4, (
        f"trickle traffic executed in batches of {sizes}; the deadline "
        "scheduler should accumulate >= 4 queries per traversal"
    )
    assert service.stats.amortization_ratio() < 1.0


def test_service_cache_makes_repeat_traffic_free(workload):
    """End-to-end service path: a repeated burst of queries is served
    entirely from cache, orders of magnitude faster than execution."""
    graph, _, _, seed_sets = workload
    service = RankingService(
        graph,
        CONFIG,
        num_machines=MACHINES,
        max_batch_size=BATCH,
    )
    queries = [
        RankingQuery(seeds=tuple(seeds.tolist()), k=10) for seeds in seed_sets
    ]
    cold, cold_s = _timed(lambda: service.query_batch(queries))
    warm, warm_s = _timed(lambda: service.query_batch(queries), repeats=3)
    assert not any(answer.cached for answer in cold)
    assert all(answer.cached for answer in warm)
    for first, second in zip(cold, warm):
        np.testing.assert_array_equal(first.vertices, second.vertices)
    assert warm_s < cold_s / 10
    print(f"\ncold {cold_s:.3f}s  warm {warm_s:.4f}s")
