"""Figures 3 (a/b) and 4: accuracy vs cost trade-off (Twitter, 24 nodes).

Paper: at comparable accuracy FrogWild needs much less running time and
network than GraphLab PR; the FrogWild point cloud Pareto-dominates the
reduced-iteration baselines.  Figure 4 is the same data with bubble
area encoding network bytes.
"""

from conftest import by_algorithm, run_once, write_figure_text
from repro.experiments import figure3, figure4, pareto_front

_CACHE = {}


def _result(workload):
    if "fig3" not in _CACHE:
        _CACHE["fig3"] = figure3(workload, seed=0)
    return _CACHE["fig3"]


def test_fig3a_accuracy_vs_time(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    write_figure_text(result)
    exact = by_algorithm(result, "GraphLab PR exact")
    one = by_algorithm(result, "GraphLab PR 1 iters")
    frows = [r for r in result.rows if r.algorithm.startswith("FrogWild")]

    # Some FrogWild configuration matches GL PR 1 iter accuracy at lower
    # time (the paper's headline trade-off claim).
    dominators = [
        r
        for r in frows
        if r.mass_captured[100] >= one.mass_captured[100]
        and r.total_time_s < one.total_time_s
    ]
    assert dominators, "no FrogWild point dominates GraphLab PR 1 iter"

    # Every FrogWild run is far faster than exact while capturing > 0.9.
    for row in frows:
        assert row.total_time_s * 5 < exact.total_time_s
        assert row.mass_captured[100] > 0.9


def test_fig3b_accuracy_vs_network(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    one = by_algorithm(result, "GraphLab PR 1 iters")
    frows = [r for r in result.rows if r.algorithm.startswith("FrogWild")]
    dominators = [
        r
        for r in frows
        if r.mass_captured[100] >= one.mass_captured[100]
        and r.network_bytes < one.network_bytes
    ]
    assert dominators, "no FrogWild point dominates GL PR 1 iter on network"

    # The (network, accuracy) Pareto front contains FrogWild points.
    front = pareto_front(result.rows, cost_attr="network_bytes", k=100)
    assert any(r.algorithm.startswith("FrogWild") for r in front)


def test_fig4_bubble_data(benchmark, tw_workload):
    result = run_once(benchmark, lambda: figure4(tw_workload, seed=0))
    write_figure_text(result)
    # Bubble sizes (network bytes) must be positive and span the
    # FrogWild-vs-GraphLab gap the paper's circles visualize.
    sizes = [r.network_bytes for r in result.rows]
    assert min(sizes) > 0
    assert max(sizes) > 10 * min(sizes)
