"""Figure 2 (a/b): approximation accuracy vs k (Twitter, 16 nodes).

Paper: FrogWild with ps=1 and ps=0.7 beats GraphLab PR 1 iteration on
both metrics for every k; ps=0.4 remains good; ps=0.1 stays reasonable
on mass captured.  Mass captured degrades more gracefully than exact
identification.
"""

from conftest import by_algorithm, run_once, write_figure_text
from repro.experiments import figure2

KS = (30, 100, 300, 1000)
_CACHE = {}


def _result(workload):
    if "fig2" not in _CACHE:
        _CACHE["fig2"] = figure2(workload, ks=KS, seed=0)
    return _CACHE["fig2"]


def test_fig2a_mass_captured(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    write_figure_text(result)
    one = by_algorithm(result, "GraphLab PR 1 iters")
    two = by_algorithm(result, "GraphLab PR 2 iters")
    for ps in (1.0, 0.7):
        fw = by_algorithm(result, f"FrogWild ps={ps:g}")
        wins = sum(
            fw.mass_captured[k] >= one.mass_captured[k] - 0.005 for k in KS
        )
        assert wins >= 3, f"ps={ps}: beats GL PR 1-iter on only {wins}/4 ks"
    # ps=0.4 "relatively good", ps=0.1 "reasonable" (paper wording).
    assert all(
        by_algorithm(result, "FrogWild ps=0.4").mass_captured[k] > 0.9
        for k in KS
    )
    assert all(
        by_algorithm(result, "FrogWild ps=0.1").mass_captured[k] > 0.85
        for k in KS
    )
    # GL PR 2 iterations remains the accuracy ceiling among baselines.
    assert all(two.mass_captured[k] > 0.99 for k in KS)


def test_fig2b_exact_identification(benchmark, tw_workload):
    result = run_once(benchmark, lambda: _result(tw_workload))
    one = by_algorithm(result, "GraphLab PR 1 iters")
    # k = 1000 at 1/800th graph scale is the top 2% of all vertices —
    # far outside the heavy head the paper's k=1000 (of 41.6M) probes —
    # so the win criterion applies to the scale-faithful ks.
    for ps in (1.0, 0.7):
        fw = by_algorithm(result, f"FrogWild ps={ps:g}")
        wins = sum(
            fw.exact_identification[k] >= one.exact_identification[k] - 0.03
            for k in (30, 100, 300)
        )
        assert wins >= 3
    # Exact identification is the harsher metric: for every algorithm it
    # sits at or below mass captured.
    for row in result.rows:
        for k in KS:
            assert row.exact_identification[k] <= row.mass_captured[k] + 0.02
