"""Keyword extraction with approximate TextRank (paper Section 1).

Builds a word co-occurrence graph from a document and ranks keywords
with FrogWild, comparing against exact TextRank — the paper's
time-sensitive text-analytics use case.

Usage::

    python examples/keyword_extraction.py [path/to/text.txt]
"""

import sys
import time

from repro.apps import extract_keywords

# An abridged public-domain passage (Darwin, "On the Origin of Species")
# used when no file is supplied.
DEFAULT_TEXT = """
When we look to the individuals of the same variety or sub-variety of
our older cultivated plants and animals, one of the first points which
strikes us, is, that they generally differ much more from each other,
than do the individuals of any one species or variety in a state of
nature. When we reflect on the vast diversity of the plants and animals
which have been cultivated, and which have varied during all ages under
the most different climates and treatment, I think we are driven to
conclude that this greater variability is simply due to our domestic
productions having been raised under conditions of life not so uniform
as, and somewhat different from, those to which the parent-species have
been exposed under nature. There is, also, I think, some probability in
the view propounded by Andrew Knight, that this variability may be
partly connected with excess of food. It seems pretty clear that organic
beings must be exposed during several generations to the new conditions
of life to cause any appreciable amount of variation; and that when the
organisation has once begun to vary, it generally continues to vary for
many generations. No case is on record of a variable being ceasing to be
variable under cultivation. Our oldest cultivated plants, such as wheat,
still often yield new varieties: our oldest domesticated animals are
still capable of rapid improvement or modification.
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], encoding="utf-8") as handle:
            text = handle.read()
        source = sys.argv[1]
    else:
        text = DEFAULT_TEXT
        source = "built-in Darwin passage"

    print(f"Extracting keywords from: {source}")

    start = time.perf_counter()
    exact = extract_keywords(text, k=10, method="exact")
    exact_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    approx = extract_keywords(text, k=10, method="frogwild")
    approx_elapsed = time.perf_counter() - start

    print(f"\n{'exact TextRank':<28}{'FrogWild TextRank':<28}")
    print("-" * 56)
    for kw_exact, kw_approx in zip(exact, approx):
        left = f"{kw_exact.word} ({kw_exact.score:.4f})"
        right = f"{kw_approx.word} ({kw_approx.score:.4f})"
        print(f"{left:<28}{right:<28}")

    overlap = len({k.word for k in exact} & {k.word for k in approx})
    print(f"\noverlap in top-10: {overlap}/10")
    print(f"exact    : {exact_elapsed * 1e3:.1f} ms")
    print(f"frogwild : {approx_elapsed * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
