"""Serving personalized top-k rankings to many users at once.

A recommendation backend receives a burst of "who matters to *me*?"
queries — one per logged-in user.  Answering each with its own FrogWild
run works, but every run re-traverses the same partitioned graph.  The
:class:`~repro.serving.RankingService` instead coalesces the burst into
one batched traversal (every user is just a frog population with a
personalized birth law, per Lemma 16), caches the finished estimates,
and attributes the shared execution's cost back to individual queries
for honest per-user metering.

This example serves a burst of 12 users on a Twitter-like graph,
compares wall-clock against the one-run-per-user baseline, then replays
the burst to show the cache absorbing repeat traffic.

Usage::

    python examples/ranking_service.py
"""

import time

import numpy as np

from repro import FrogWildConfig, run_personalized_frogwild, twitter_like
from repro.serving import RankingQuery, RankingService


def main() -> None:
    print("Generating a Twitter-like graph (10,000 users)...")
    graph = twitter_like(n=10_000, seed=33)
    config = FrogWildConfig(num_frogs=8_000, iterations=6, ps=0.8, seed=0)

    rng = np.random.default_rng(5)
    users = rng.choice(graph.num_vertices, size=12, replace=False)
    queries = [RankingQuery(seeds=(int(user),), k=5) for user in users]

    print("Starting the ranking service (ingress paid once)...")
    service = RankingService(
        graph, config, num_machines=16, max_batch_size=16, cache_ttl_s=600.0
    )

    start = time.perf_counter()
    answers = service.query_batch(queries)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    for user in users:
        run_personalized_frogwild(
            graph, np.array([user]), config, num_machines=16
        )
    sequential_s = time.perf_counter() - start

    print(f"\nbatched burst of {len(users)} users : {batched_s:.3f} s")
    print(f"one run per user           : {sequential_s:.3f} s "
          f"({sequential_s / batched_s:.1f}x slower)")
    stats = service.stats
    print(f"batches run                : {stats.batches_run} "
          f"(sizes {stats.batch_sizes})")
    print(f"network amortization       : {stats.amortization_ratio():.3f} "
          "(shared wire bytes / standalone-priced bytes)")

    print("\nsample recommendations (user -> top-5 by personalized rank):")
    for answer in answers[:4]:
        user = answer.query.seeds[0]
        print(f"  user {user:>5} -> {answer.vertices.tolist()}  "
              f"[{answer.network_bytes:,} bytes attributed]")

    start = time.perf_counter()
    replay = service.query_batch(queries)
    replay_s = time.perf_counter() - start
    assert all(answer.cached for answer in replay)
    print(f"\nreplaying the burst        : {replay_s * 1000:.1f} ms "
          f"(all {len(replay)} answers from cache, "
          f"hit rate {service.cache_stats()['hit_rate']:.0%})")


if __name__ == "__main__":
    main()
