"""OSN key-user prediction (paper Section 1, third application).

Following Heidemann et al. (the paper's reference [19]): rank users by
PageRank on a *mixture* of the friendship (connectivity) graph and the
recent-interaction (activity) graph, and use the top-k as a prediction
of who stays active.  Because the activity graph churns, the ranking
must be recomputed frequently — the setting where FrogWild's speed
matters most.

Usage::

    python examples/churn_prediction.py
"""

import numpy as np

from repro.apps import (
    generate_social_network,
    prediction_precision,
    rank_key_users,
)


def main() -> None:
    print("Synthesizing a social network (4,000 users)...")
    network = generate_social_network(
        num_users=4_000, interactions=60_000, seed=7
    )
    print(f"  connectivity: {network.connectivity.num_edges:,} friendships")
    print(f"  activity    : {network.activity.num_edges:,} interaction pairs")

    k = 400
    actual = network.future_active_users(fraction=0.1, seed=99)
    print(f"\nGround truth: {actual.size} users stay highly active "
          f"(base rate {actual.size / network.num_users:.1%}).")

    print(f"\nPrecision of top-{k} key-user predictions:")
    for weight in (0.0, 0.3, 0.7, 1.0):
        predicted = rank_key_users(
            network, k=k, activity_weight=weight, seed=0
        )
        precision = prediction_precision(predicted, actual)
        print(f"  activity weight {weight:.1f} : {precision:6.1%}")

    # Degree baseline for context.
    in_degree = np.asarray(network.connectivity.in_degree())
    by_degree = np.argsort(-in_degree)[:k]
    print(f"  in-degree baseline  : "
          f"{prediction_precision(by_degree, actual):6.1%}")
    print("\nMixing activity into the ranking graph improves churn "
          "prediction, as reported by the paper's reference [19].")


if __name__ == "__main__":
    main()
