"""FrogWild under machine crashes, lossy transport and stragglers.

Anonymous, uniformly-born walkers make FrogWild naturally robust: a
crash wipes a random subsample of frogs, which barely moves the top-k
estimate — and the lost walkers can be reborn uniformly without biasing
the answer.  This example injects each failure mode and reports the
accuracy and time impact.

Usage::

    python examples/fault_tolerant_ranking.py
"""

from repro import (
    FrogWildConfig,
    exact_pagerank,
    normalized_mass_captured,
    run_frogwild,
    twitter_like,
)
from repro.faults import (
    FaultSchedule,
    MachineCrash,
    MessageDrop,
    StragglerCostModel,
    run_frogwild_with_faults,
)

MACHINES = 8
CONFIG = FrogWildConfig(num_frogs=16_000, iterations=4, seed=0)


def main() -> None:
    k = 50
    print("Generating a Twitter-like graph (15,000 vertices)...")
    graph = twitter_like(n=15_000, seed=5)
    truth = exact_pagerank(graph)

    def accuracy(result):
        return normalized_mass_captured(result.estimate.vector(), truth, k)

    print(f"\n--- baseline ({MACHINES} machines, no faults) ---")
    healthy = run_frogwild(graph, CONFIG, num_machines=MACHINES)
    print(f"mass captured (k={k}): {accuracy(healthy):.4f}")

    print("\n--- one machine crashes at superstep 1 (frogs reborn) ---")
    schedule = FaultSchedule(
        crashes=(MachineCrash(step=1, machine=0, rebirth=True),)
    )
    crashed, log = run_frogwild_with_faults(
        graph, schedule, CONFIG, num_machines=MACHINES
    )
    print(f"frogs lost/reborn     : {log.frogs_lost_to_crashes:,}")
    print(f"mass captured (k={k}): {accuracy(crashed):.4f}")

    print("\n--- 10% of in-flight frog messages dropped ---")
    schedule = FaultSchedule(message_drop=MessageDrop(0.1))
    lossy, log = run_frogwild_with_faults(
        graph, schedule, CONFIG, num_machines=MACHINES
    )
    print(f"frogs dropped in-flight: {log.frogs_dropped_in_flight:,}")
    print(f"frogs still counted    : {lossy.estimate.total_stopped:,}"
          f" / {CONFIG.num_frogs:,}")
    print(f"mass captured (k={k}) : {accuracy(lossy):.4f}")

    print("\n--- one 8x straggler: partial sync claws back time ---")
    slowdowns = tuple(8.0 if m == 0 else 1.0 for m in range(MACHINES))
    for ps in (1.0, 0.2):
        result = run_frogwild(
            graph,
            CONFIG.with_updates(ps=ps),
            num_machines=MACHINES,
            cost_model=StragglerCostModel(slowdowns=slowdowns),
        )
        print(
            f"ps={ps:<4} : {result.report.total_time_s:.3f} simulated s, "
            f"mass {accuracy(result):.4f}"
        )
    print("\nLower ps hands the straggler less sync work: wall-clock "
          "recovers while accuracy stays usable.")


if __name__ == "__main__":
    main()
