"""Serve FrogWild rankings from a pool of real worker processes.

Every other execution path in this repo *simulates* a cluster inside
one Python process.  :class:`~repro.serving.ProcessPoolBackend` is the
step beyond the simulation: one OS process per shard, the graph's CSR
arrays and every shard's replication table mapped into
``multiprocessing.shared_memory`` (zero pickling of graph state), and
per-lane counters streamed back over a measured record transport whose
byte count must reconcile exactly with the simulated
:class:`~repro.cluster.MessageSizeModel` pricing.

Because the pool inherits its shard layout and per-shard seeding from
:class:`~repro.serving.ShardedBackend`, its answers are **bitwise
identical** to the in-process sharded backend — the processes buy
wall-clock parallelism, never a different ranking.

This example builds a ranking service on each backend, answers the
same queries, verifies the scores agree, and prints the transport
reconciliation — then refreshes the pool onto a second graph snapshot
to show the epoch-remap handshake.

Usage::

    python examples/process_backend.py
"""

import numpy as np

from repro import FrogWildConfig
from repro.graph import twitter_like
from repro.serving import (
    ProcessPoolBackend,
    RankingQuery,
    RankingService,
    ShardedBackend,
)

NUM_VERTICES = 2_000
WORKERS = 4
MACHINES = 8
CONFIG = FrogWildConfig(num_frogs=8_000, iterations=5, ps=0.8, seed=1)


def main() -> None:
    graph = twitter_like(n=NUM_VERTICES, seed=11)
    rng = np.random.default_rng(7)
    seed_sets = [
        sorted(rng.choice(NUM_VERTICES, size=2, replace=False).tolist())
        for _ in range(3)
    ]

    # One service per backend kind; "process" spins up WORKERS real
    # OS processes attached to shared-memory graph state.
    answers = {}
    for kind in ("sharded", "process"):
        service = RankingService(
            graph,
            config=CONFIG,
            num_machines=MACHINES,
            num_shards=WORKERS,
            backend=kind,
        )
        try:
            answers[kind] = [
                service.query(seeds, k=10) for seeds in seed_sets
            ]
            if kind == "process":
                summary = service.backend.transport_summary()
                print(
                    f"transport: {summary['sent_measured_bytes']:,.0f} "
                    f"measured bytes over {summary['sent_messages']:.0f} "
                    "frames, reconciles="
                    + ("yes" if summary["reconciles"] else "no")
                )
        finally:
            service.close()

    for seeds, sharded, process in zip(
        seed_sets, answers["sharded"], answers["process"]
    ):
        assert list(sharded.vertices) == list(process.vertices)
        top3 = [int(v) for v in process.vertices[:3]]
        print(f"seeds {seeds}: top-3 {top3} (bitwise equal across backends)")

    # Epoch remap: refresh the pool onto a new snapshot in place —
    # workers re-attach new shared segments, old ones are unlinked.
    snapshot = twitter_like(n=NUM_VERTICES, seed=12)
    tables = ShardedBackend(
        snapshot, num_shards=WORKERS, num_machines=MACHINES, seed=0
    ).replications
    with ProcessPoolBackend(
        graph, num_shards=WORKERS, num_machines=MACHINES, seed=0
    ) as pool:
        pool.refresh(snapshot, tables)
        outcome = pool.run_batch(
            CONFIG, [RankingQuery(seeds=tuple(seed_sets[0]), k=5)]
        )
        top = outcome.lanes[0].estimate.top_k(5)
        print(f"after refresh onto new snapshot: top-5 {top.tolist()}")


if __name__ == "__main__":
    main()
