"""Personalized PageRank with FrogWild (the paper's Section 2.4 pointer).

Global PageRank answers "who matters overall"; Personalized PageRank
(PPR) answers "who matters *to these seeds*" — the basis of
who-to-follow recommendation.  FrogWild extends to PPR by birthing the
frogs on the seed set instead of uniformly (Lemma 16: the walk restarts
at its birth law).  This example picks a random user, computes their
PPR with both the exact solver and FrogWild, and contrasts the
personalized ranking with the global one.

Usage::

    python examples/personalized_search.py
"""

import numpy as np

from repro import (
    FrogWildConfig,
    exact_pagerank,
    run_personalized_frogwild,
    seed_distribution,
    twitter_like,
)
from repro.metrics import normalized_mass_captured


def main() -> None:
    print("Generating a Twitter-like graph (8,000 users)...")
    graph = twitter_like(n=8_000, seed=21)

    user = 4321
    seeds = np.array([user])
    print(f"Personalizing for user {user} "
          f"(follows {graph.out_degree(user)} accounts).")

    personalization = seed_distribution(graph.num_vertices, seeds)
    ppr_truth = exact_pagerank(graph, personalization=personalization)
    global_truth = exact_pagerank(graph)

    result = run_personalized_frogwild(
        graph,
        seeds,
        FrogWildConfig(num_frogs=30_000, iterations=8, ps=0.7, seed=0),
        num_machines=16,
    )

    k = 15
    recommended = result.estimate.top_k(k)
    mass = normalized_mass_captured(result.estimate.vector(), ppr_truth, k)
    print(f"\nFrogWild PPR captured {mass:.1%} of the optimal top-{k} mass.")
    print(f"simulated time: {result.report.total_time_s:.3f} s, "
          f"network: {result.report.network_bytes:,} bytes")

    global_rank = np.empty(graph.num_vertices, dtype=np.int64)
    global_rank[np.argsort(-global_truth)] = np.arange(graph.num_vertices)

    print(f"\ntop-{k} personalized recommendations "
          "(vs. their global PageRank rank):")
    for position, vertex in enumerate(recommended, start=1):
        marker = " <- the seed" if vertex == user else ""
        print(f"  #{position:>2}  user {vertex:>5}  "
              f"(global rank {global_rank[vertex] + 1:>5}){marker}")

    locals_found = int(
        (global_rank[recommended] >= k).sum()
    )
    print(f"\n{locals_found}/{k} recommendations are NOT in the global "
          f"top-{k}: personalization surfaces the seed's neighbourhood, "
          "not just celebrities.")


if __name__ == "__main__":
    main()
