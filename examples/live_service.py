"""Serving a live graph: churn in, fresh epochs out, queries flowing.

The paper's OSN pitch is that the graph changes constantly and the
top-k must follow.  PR 2's service invalidated its *cache* on churn but
kept serving the snapshot it was built on; the live layer
(:mod:`repro.live`) closes the loop:

* an ``IncrementalIngress`` keeps the per-machine edge placement
  current delta by delta — stable-hash placement means surviving edges
  never move, so each refresh pays ingress only for churned edges;
* an ``EpochManager`` swaps the execution backend atomically — a batch
  pins its epoch at dispatch, so refreshes never tear or drop queries;
* the epoch id doubles as the cache generation, so cached rankings
  invalidate exactly when (and only when) a refresh publishes.

This example trickles queries through a ``LiveRankingService`` while a
``ChurnGenerator`` rewires the graph, refreshing between bursts, and
prints the reuse/epoch/cache story per tick.

Usage::

    python examples/live_service.py
"""

import numpy as np

from repro import FrogWildConfig, twitter_like
from repro.dynamic import ChurnGenerator, DynamicDiGraph
from repro.live import LiveRankingService
from repro.serving import RankingQuery


def main() -> None:
    print("Generating a Twitter-like graph (5,000 users)...")
    dynamic = DynamicDiGraph.from_digraph(twitter_like(n=5_000, seed=17))
    service = LiveRankingService(
        dynamic,
        config=FrogWildConfig(num_frogs=6_000, iterations=5, ps=0.8, seed=0),
        num_machines=8,
        seed=0,
    )
    churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=1)
    rng = np.random.default_rng(7)
    queries = [
        RankingQuery(
            seeds=tuple(np.sort(
                rng.choice(dynamic.num_vertices, size=2, replace=False)
            ).tolist()),
            k=5,
        )
        for _ in range(4)
    ]

    for tick in range(4):
        epoch = service.current_epoch
        answers = service.query_batch(queries)
        replays = service.query_batch(queries)
        print(
            f"\nepoch {epoch.epoch_id} ({epoch.num_edges:,} edges): "
            f"top-5 for seeds {answers[0].query.seeds} -> "
            f"{answers[0].vertices.tolist()}"
        )
        print(f"  replay served from cache : "
              f"{all(a.cached for a in replays)}")
        update = service.refresh(churn.step(dynamic))
        print(
            f"  refresh -> epoch {update.epoch}: "
            f"+{update.edges_added}/-{update.edges_removed} edges, "
            f"placed {update.new_placements} "
            f"(reused {update.reuse_ratio:.1%})"
        )

    stats = service.live_stats()
    print(f"\nepochs published        : {int(stats['epochs_published'])}")
    print(f"lifetime placement reuse: {stats['lifetime_reuse_ratio']:.2%}")
    print(f"amortization ratio      : "
          f"{service.stats.amortization_ratio():.3f}")
    print(f"queries served/executed : {service.stats.queries_served}/"
          f"{service.stats.queries_executed}")


if __name__ == "__main__":
    main()
