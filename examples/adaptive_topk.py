"""Let the system pick the frog budget (Remark 6 made practical).

How many frogs does a top-100 query need?  The paper's Remark 6 says
``N = O(k / mu_k^2)`` — but ``mu_k`` is unknown before running.  This
example runs the adaptive schedule: a cheap pilot estimates ``mu_k``,
then the budget doubles until the reported list stabilizes, and the
final answer is checked against exact PageRank.

Usage::

    python examples/adaptive_topk.py
"""

from repro import (
    AdaptiveConfig,
    exact_pagerank,
    normalized_mass_captured,
    run_adaptive_frogwild,
    twitter_like,
)


def main() -> None:
    k = 100
    print("Generating a Twitter-like graph (15,000 vertices)...")
    graph = twitter_like(n=15_000, seed=3)
    print(f"  {graph.num_vertices:,} vertices, {graph.num_edges:,} edges")

    print(f"\nAdaptive top-{k} run (pilot 2,000 frogs, doubling)...")
    outcome = run_adaptive_frogwild(
        graph,
        AdaptiveConfig(
            k=k,
            pilot_frogs=2_000,
            max_frogs=256_000,
            stability_threshold=0.9,
            min_separation_z=1.0,
        ),
        num_machines=16,
        seed=0,
    )

    print(f"\n{'round':>5} {'frogs':>8} {'mu_k(self)':>10} "
          f"{'sep z':>7} {'jaccard':>8}")
    for r in outcome.rounds:
        print(
            f"{r.round_index:>5} {r.num_frogs:>8,} "
            f"{r.mu_k_self_estimate:>10.4f} {r.separation_z:>7.2f} "
            f"{r.jaccard_with_previous:>8.3f}"
        )

    print(f"\nconverged             : {outcome.converged}")
    print(f"Remark 6 target frogs : {outcome.recommended_frogs:,}")
    print(f"Remark 6 target iters : {outcome.recommended_iterations}")
    print(f"total frogs launched  : {outcome.total_frogs():,}")
    print(f"total network         : {outcome.total_network_bytes():,} bytes")

    truth = exact_pagerank(graph)
    mass = normalized_mass_captured(outcome.estimate.vector(), truth, k)
    print(f"\nfinal mass captured (k={k}) vs exact PageRank: {mass:.4f}")


if __name__ == "__main__":
    main()
