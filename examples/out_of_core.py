"""Serve a graph from disk: the out-of-core storage tier end to end.

Every graph in this repo so far lived in RAM as CSR arrays.  The
:class:`~repro.store.SegmentStore` moves the base edge set onto disk —
sorted ``source * n + target`` key runs in mmap'd segment files, keyed
by (machine, key-interval) so a shard's ingress scan opens only the
segments whose intervals intersect its window — while churn
accumulates in a small in-RAM delta layer until a compaction folds it
back into fresh segment files.  Behind the
:class:`~repro.store.GraphStore` protocol, the store is
interchangeable with :class:`~repro.graph.DiGraph` and
:class:`~repro.dynamic.DynamicDiGraph`: same ``edge_keys``/``scan``/
``snapshot``/``apply`` surface, same version counter, bit-for-bit.

This example walks the full lifecycle:

1. bulk-load a store from a synthetic graph and read it through
   window-pruned scans;
2. serve top-k rankings from the store and verify they are bitwise
   equal to the in-RAM service (the spilled serving tables are
   memory-mapped by construction, so a fresh process would pay RAM
   proportional to what it touches, not to the graph);
3. churn the store live — deltas, compaction, segment hygiene —
   through :class:`~repro.live.LiveRankingService`.

Usage::

    python examples/out_of_core.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import FrogWildConfig
from repro.dynamic import ChurnGenerator
from repro.graph import twitter_like
from repro.live import LiveRankingService
from repro.serving import RankingService, ServiceConfig
from repro.store import SegmentStore, Window, scan_keys

NUM_VERTICES = 2_000
MACHINES = 4
CONFIG = FrogWildConfig(num_frogs=6_000, iterations=4, ps=1.0, seed=1)


def main() -> None:
    graph = twitter_like(n=NUM_VERTICES, seed=11)
    workdir = Path(tempfile.mkdtemp(prefix="repro-out-of-core-"))

    # -- 1. bulk load + window-pruned scans ---------------------------
    store = SegmentStore.create(
        workdir / "segments",
        source=graph,
        num_machines=MACHINES,  # align placement with the cluster
        segment_edges=4_096,
    )
    print(f"store: {store.num_edges:,} edges in "
          f"{len(store.segment_files())} segment files "
          f"({store.nbytes_on_disk() / 1e6:.1f} MB on disk)")

    window = Window(
        0, NUM_VERTICES // 4, machine=2, num_machines=MACHINES, salt=0
    )
    keys = store.scan(window)
    reference = scan_keys(graph.edge_keys(), NUM_VERTICES, window)
    stats = store.scan_stats
    print(f"shard scan: {keys.size:,} keys for machine 2's quarter "
          f"window, {stats.segments_scanned}/{stats.segments_considered} "
          f"segments opened ({stats.pruned_fraction():.0%} pruned), "
          f"matches reference: {np.array_equal(keys, reference)}")

    # -- 2. bitwise parity with the RAM serving tier ------------------
    seeds = (17, 400, 1_200)
    ram_service = RankingService(
        graph, CONFIG, num_machines=MACHINES, seed=3
    )
    ram_answer = ram_service.query(seeds=seeds, k=10)
    ram_service.close()

    mapped_service = RankingService.from_config(
        config=ServiceConfig(
            config=CONFIG, num_machines=MACHINES, seed=3, store=store
        ),
    )
    mapped_answer = mapped_service.query(seeds=seeds, k=10)
    mapped_service.close()
    print(f"top-10 for seeds {seeds}: "
          f"{mapped_answer.vertices.tolist()}")
    print("bitwise equal to RAM tier  :",
          mapped_answer.vertices.tolist() == ram_answer.vertices.tolist()
          and mapped_answer.scores.tolist() == ram_answer.scores.tolist())

    # -- 3. live churn: delta layer, compaction, hygiene --------------
    live = LiveRankingService(
        config=CONFIG,
        num_machines=MACHINES,
        seed=3,
        store=store,
        compact_threshold=64,  # tiny, to show compactions happening
    )
    churn = ChurnGenerator(add_rate=0.02, remove_rate=0.01, seed=5)
    for tick in range(3):
        update = live.refresh(churn.step(live.source))
        print(f"tick {tick}: +{update.edges_added} -{update.edges_removed} "
              f"edges, epoch {update.epoch}, "
              f"delta layer {store.pending_delta} keys")
    stats = live.live_stats()
    print(f"compactions on the refresh path: "
          f"{int(stats['store_compactions'])}")
    print(f"orphaned segment files         : {len(store.sweep_orphans())}")
    live.stop()


if __name__ == "__main__":
    main()
