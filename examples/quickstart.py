"""Quickstart: approximate the top-k PageRank of a social graph.

Runs FrogWild on a synthetic Twitter-like graph, compares the answer
and the cost against exact PageRank and the GraphLab PR baseline, and
prints the paper's two accuracy metrics.

Usage::

    python examples/quickstart.py
"""

from repro import (
    FrogWildConfig,
    exact_identification,
    exact_pagerank,
    graphlab_pagerank,
    normalized_mass_captured,
    run_frogwild,
    twitter_like,
)


def main() -> None:
    print("Generating a Twitter-like graph (10,000 vertices)...")
    graph = twitter_like(n=10_000, seed=7)
    print(f"  {graph.num_vertices:,} vertices, {graph.num_edges:,} edges")

    print("\nComputing exact PageRank (ground truth)...")
    truth = exact_pagerank(graph)

    print("Running FrogWild (8,000 frogs, 4 iterations, ps=0.7)...")
    config = FrogWildConfig(num_frogs=8_000, iterations=4, ps=0.7, seed=0)
    result = run_frogwild(graph, config, num_machines=16)

    k = 20
    top = result.estimate.top_k(k)
    print(f"\nEstimated top-{k} vertices: {top.tolist()}")

    estimate = result.estimate.vector()
    print(f"mass captured (k={k})     : "
          f"{normalized_mass_captured(estimate, truth, k):.4f}")
    print(f"exact identification     : "
          f"{exact_identification(estimate, truth, k):.4f}")

    print("\n--- cost on the simulated 16-machine cluster ---")
    report = result.report
    print(f"FrogWild    : {report.total_time_s:.3f} simulated s, "
          f"{report.network_bytes:,} bytes on the network")

    baseline = graphlab_pagerank(graph, num_machines=16, tolerance=1e-9)
    print(f"GraphLab PR : {baseline.report.total_time_s:.3f} simulated s, "
          f"{baseline.report.network_bytes:,} bytes on the network")

    speedup = baseline.report.total_time_s / report.total_time_s
    savings = baseline.report.network_bytes / max(report.network_bytes, 1)
    print(f"\nFrogWild is {speedup:.1f}x faster and sends "
          f"{savings:.0f}x fewer bytes at ~99% top-{k} accuracy.")


if __name__ == "__main__":
    main()
