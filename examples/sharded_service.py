"""Sharded ranking with a deadline scheduler: the scale-out service.

A single :class:`~repro.serving.RankingService` can outgrow one
simulated cluster in two directions at once:

* **sharding** — ``num_shards=4`` splits the machine fleet into four
  sub-clusters, each holding its own partitioned ingress of the graph.
  Frogs are independent walkers, so each query's frog budget splits
  across the shards and the per-shard counters merge back by exact
  summation before top-k; per-query cost attribution sums exactly
  across shards, so metering stays honest.
* **deadline scheduling** — production traffic trickles instead of
  arriving in bursts.  With ``max_delay_s`` set, a partial batch
  dispatches when its oldest query has waited that long (or instantly
  when it fills), so trickling queries still amortize one traversal.

This example serves a trickle of users — one query per simulated
millisecond, driven by a virtual clock so the run is deterministic —
through a 4-shard service under a 5 ms batching deadline, then shows
the per-shard cost partition and replays a query from cache.

Usage::

    python examples/sharded_service.py
"""

import numpy as np

from repro import FrogWildConfig, twitter_like
from repro.serving import RankingService, VirtualClock


def main() -> None:
    print("Generating a Twitter-like graph (8,000 users)...")
    graph = twitter_like(n=8_000, seed=33)
    config = FrogWildConfig(num_frogs=8_000, iterations=6, ps=0.8, seed=0)

    clock = VirtualClock()
    service = RankingService(
        graph,
        config,
        num_machines=16,     # fleet of 16 machines...
        num_shards=4,        # ...split into 4 sub-clusters of 4
        max_batch_size=16,
        max_delay_s=0.005,   # dispatch partial batches after 5 ms
        clock=clock,
    )
    print("Service started: 4 shards x "
          f"{service.backend.machines_per_shard} machines, "
          "5 ms batching deadline.\n")

    rng = np.random.default_rng(5)
    users = rng.choice(graph.num_vertices, size=12, replace=False)

    print("Trickling 12 queries in, one per millisecond...")
    futures = []
    for user in users:
        futures.append(service.submit([int(user)], k=5))
        clock.advance(0.001)   # 1 ms between arrivals
        service.pump()         # deadline check (a thread does this live)
    clock.advance(0.005)
    service.pump()             # the tail batch's deadline expires
    assert all(future.done() for future in futures)

    stats = service.stats
    sched = service.scheduler.stats
    print(f"batches formed             : {stats.batch_sizes} "
          f"({sched.deadline_dispatches} by deadline, "
          f"{sched.fill_dispatches} by fill)")
    print(f"network amortization       : {stats.amortization_ratio():.3f} "
          "(shared wire bytes / standalone-priced bytes)")

    print("\nper-shard cost partition (attribution sums exactly):")
    for shard, costs in stats.shard_breakdown().items():
        print(f"  shard {shard}: "
              f"{int(costs['shared_network_bytes']):>9,} shared bytes, "
              f"{int(costs['attributed_network_bytes']):>9,} attributed")
    total = sum(
        costs["attributed_network_bytes"]
        for costs in stats.shard_breakdown().values()
    )
    assert int(total) == stats.attributed_network_bytes

    print("\nsample recommendations (user -> top-5 by personalized rank):")
    for future in futures[:4]:
        answer = future.result()
        user = answer.query.seeds[0]
        print(f"  user {user:>5} -> {answer.vertices.tolist()}  "
              f"[{answer.network_bytes:,} bytes attributed, "
              f"batch of {answer.batch_size}]")

    replay = service.query([int(users[0])], k=5)
    assert replay.cached
    print(f"\nreplaying user {users[0]}      : served from cache "
          f"(hit rate {service.cache_stats()['hit_rate']:.0%})")


if __name__ == "__main__":
    main()
