"""Track the top-k of a live social graph under churn.

The paper's OSN motivation (Section 1): activity graphs change
constantly, key users are few, so the top-k PageRank list should be
recalculated constantly with a *fast approximation*.  This example
keeps a FrogWild top-20 fresh over ten churn ticks, shows the
per-tick cost against an exact recompute, and demonstrates that a
sudden "viral" user enters the list within one refresh.

Usage::

    python examples/dynamic_rank_tracking.py
"""

import numpy as np

from repro import FrogWildConfig, graphlab_pagerank, twitter_like
from repro.dynamic import (
    ChurnGenerator,
    DynamicDiGraph,
    GraphDelta,
    PageRankTracker,
    stable_hash_partition,
)
from repro.engine import build_cluster


def main() -> None:
    print("Generating a Twitter-like activity graph (8,000 users)...")
    base = twitter_like(n=8_000, seed=21)
    dynamic = DynamicDiGraph.from_digraph(base)
    print(f"  {dynamic.num_vertices:,} users, {dynamic.num_edges:,} edges")

    tracker = PageRankTracker(
        dynamic,
        k=20,
        config=FrogWildConfig(num_frogs=10_000, iterations=4, seed=0),
        num_machines=8,
        seed=0,
    )
    churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=0)

    print("\nTracking the top-20 over 10 churn ticks (1% churn each)...")
    print(f"{'tick':>4} {'edges':>8} {'jaccard':>8} "
          f"{'ingress':>8} {'net bytes':>11}")
    for _ in range(10):
        update = tracker.update(churn.step(dynamic))
        print(
            f"{update.step:>4} {update.num_edges:>8,} "
            f"{update.jaccard_vs_previous:>8.3f} "
            f"{update.new_edge_placements:>8,} "
            f"{update.network_bytes:>11,}"
        )
    print(f"\nlist stability over the run: {tracker.churn_stability():.3f}")

    # What would an exact recompute per tick have cost?
    snapshot = dynamic.snapshot()
    state = build_cluster(
        snapshot, 8, seed=0, partition=stable_hash_partition(snapshot, 8)
    )
    exact = graphlab_pagerank(
        snapshot, tolerance=1e-6, state=state, max_supersteps=200
    )
    tick_cost = np.mean([u.network_bytes for u in tracker.history[1:]])
    print("\n--- per-tick refresh cost ---")
    print(f"FrogWild refresh : {tick_cost:,.0f} bytes")
    print(f"exact GraphLab PR: {exact.report.network_bytes:,} bytes "
          f"({exact.report.network_bytes / tick_cost:.0f}x more)")

    # A user suddenly goes viral: thousands of new in-links in one tick.
    viral = dynamic.num_vertices - 1
    print(f"\nUser {viral} goes viral (2,000 new followers)...")
    followers = np.arange(2_000)
    update = tracker.update(
        GraphDelta(
            added=np.column_stack([followers, np.full(2_000, viral)])
        )
    )
    position = (
        update.top_k.tolist().index(viral) + 1
        if viral in update.top_k
        else None
    )
    if position:
        print(f"  detected in ONE refresh: now rank #{position}")
    else:
        print("  not yet in the top-20")


if __name__ == "__main__":
    main()
