"""Telecom influencer analysis (paper Section 1, first application).

A telecom wants to spend a limited retention budget on its most
influential customers.  This example synthesizes a call-detail-record
graph, identifies the top-k influencers with FrogWild, and shows that a
loyalty campaign seeded at those customers reaches far more of the
network than random or highest-degree seeding.

Usage::

    python examples/influencer_analysis.py
"""

import numpy as np

from repro.apps import campaign_reach, find_influencers, generate_call_graph


def main() -> None:
    print("Synthesizing a call graph (8,000 customers, 120,000 calls)...")
    graph = generate_call_graph(
        num_customers=8_000, num_calls=120_000, seed=42
    )
    print(f"  {graph.num_vertices:,} customers, "
          f"{graph.num_edges:,} distinct call relationships")

    budget = 50  # customers the campaign can afford
    print(f"\nIdentifying the top-{budget} influencers with FrogWild...")
    report = find_influencers(graph, k=budget)
    print(f"  simulated time   : {report.total_time_s:.3f} s")
    print(f"  network traffic  : {report.network_bytes:,} bytes")
    print("  top-10 customers :")
    for customer, score in report.top(10):
        print(f"    customer {customer:>5}  influence {score:.4f}")

    # Compare three seeding strategies on 2-hop campaign reach.
    rng = np.random.default_rng(0)
    random_seeds = rng.choice(graph.num_vertices, size=budget, replace=False)
    out_degree = np.asarray(graph.out_degree())
    loudest = np.argsort(-out_degree)[:budget]  # most outgoing calls

    strategies = {
        "FrogWild top-PageRank": report.influencers,
        "highest out-degree": loudest,
        "random customers": random_seeds,
    }
    for hops in (1, 2):
        print(f"\n{hops}-hop campaign reach by seeding strategy "
              f"(budget {budget}):")
        for name, seeds in strategies.items():
            reach = campaign_reach(graph, seeds, hops=hops)
            print(f"  {name:<24}: {reach:6.1%} of the customer base")


if __name__ == "__main__":
    main()
