"""Rank users on a *sliding window* of interactions.

The OSN reference behind the paper's third application ([19]) ranks
users on an *activity graph*: an edge lives while the interaction it
represents is recent.  This example replays a day of synthetic direct
messages through an :class:`~repro.dynamic.ActivityWindow`, keeps a
FrogWild top-10 fresh every hour, and shows the ranking following the
activity as it migrates between user communities.

Usage::

    python examples/activity_stream.py
"""

import numpy as np

from repro import FrogWildConfig
from repro.dynamic import ActivityWindow, DynamicDiGraph, PageRankTracker

NUM_USERS = 2_000
HORIZON_HOURS = 6.0
MESSAGES_PER_HOUR = 4_000


def message_batch(rng, hour: int) -> np.ndarray:
    """Synthetic DM traffic: most messages target a 'hot' community
    that drifts over the day (morning crowd -> evening crowd)."""
    hot_base = (hour * 83) % NUM_USERS  # drifting hot community
    hot = (hot_base + rng.integers(0, 50, size=MESSAGES_PER_HOUR)) % NUM_USERS
    background = rng.integers(0, NUM_USERS, size=MESSAGES_PER_HOUR)
    targets = np.where(rng.random(MESSAGES_PER_HOUR) < 0.6, hot, background)
    sources = rng.integers(0, NUM_USERS, size=MESSAGES_PER_HOUR)
    batch = np.column_stack([sources, targets])
    return batch[batch[:, 0] != batch[:, 1]]


def main() -> None:
    rng = np.random.default_rng(0)
    window = ActivityWindow(NUM_USERS, horizon=HORIZON_HOURS)
    live = DynamicDiGraph(NUM_USERS)

    # Warm the window up with the first hour before tracking starts.
    live.apply(window.observe(message_batch(rng, 0), timestamp=0.0))
    tracker = PageRankTracker(
        live,
        k=10,
        config=FrogWildConfig(num_frogs=6_000, iterations=4, seed=0),
        num_machines=8,
        seed=0,
    )

    print(f"{NUM_USERS:,} users, {HORIZON_HOURS:.0f}h window, "
          f"{MESSAGES_PER_HOUR:,} messages/hour\n")
    print(f"{'hour':>4} {'live edges':>10} {'jaccard':>8}  top-10 movers")
    previous = set(tracker.current_top_k.tolist())
    for hour in range(1, 13):
        delta = window.observe(message_batch(rng, hour), timestamp=float(hour))
        update = tracker.update(delta)
        current = set(update.top_k.tolist())
        entered = sorted(current - previous)
        previous = current
        movers = f"+{entered}" if entered else "(unchanged)"
        print(
            f"{hour:>4} {update.num_edges:>10,} "
            f"{update.jaccard_vs_previous:>8.3f}  {movers}"
        )

    print(f"\nlist stability over the half day : "
          f"{tracker.churn_stability():.3f}")
    print(f"total refresh network            : "
          f"{tracker.total_network_bytes():,} bytes")
    print("\nThe hot community drifts every hour, the 6h window forgets "
          "old traffic,\nand the hourly FrogWild refresh keeps the "
          "ranking pointed at whoever is\nactually receiving attention "
          "right now — the [19] scenario end to end.")


if __name__ == "__main__":
    main()
